#!/usr/bin/env python3
"""Factory to first token: the full model-provisioning story.

The paper assumes the wrapped model key is on flash (§6); this example
shows how it gets there and what stops a jailbroken device:

  factory  — the manufacturer enrolls the device's attestation key;
  boot     — the measured chain (BL2 → TEE OS) establishes integrity;
  field    — the provider challenges the device, verifies the quote, and
             releases its model key wrapped to that device only;
  runtime  — the key unwraps inside the TEE and inference runs under
             full TrustZone protection.

A second device with a modified TEE OS walks the same protocol and is
refused at the quote check.

Run:  python examples/provisioning_flow.py
"""

from repro import TINYLLAMA, TZLLM
from repro.crypto import derive_key
from repro.errors import SecurityViolation
from repro.tee.attestation import (
    AttestationService,
    DeviceAttestor,
    ModelProvider,
    device_unwrap_provisioned_key,
)
from repro.tee.boot import BootChain, BootImage

MODEL_KEY = derive_key(b"model-provider-secret", TINYLLAMA.model_id)


def boot_device(seed: bytes, tee_os_code: bytes):
    from repro.crypto import HardwareKeyStore

    keystore = HardwareKeyStore(seed)
    stages = BootChain.sign_chain(
        [BootImage("bl2", b"bl2-v1.0"), BootImage("tee-os", tee_os_code)]
    )
    chain = BootChain(rom_digest=stages[0].digest)
    chain.boot(stages)
    return keystore, chain


def main() -> None:
    service = AttestationService()

    print("== factory ==")
    good_keystore, good_chain = boot_device(b"device-good", b"tee-os-v1.0")
    service.enroll_device("device-good", good_keystore)
    evil_keystore, evil_chain = boot_device(b"device-evil", b"tee-os-JAILBROKEN")
    service.enroll_device("device-evil", evil_keystore)
    print("enrolled: device-good, device-evil")

    provider = ModelProvider(service, good_chain.measurements, TINYLLAMA.model_id, MODEL_KEY)

    print("\n== field: honest device ==")
    attestor = DeviceAttestor("device-good", good_keystore, good_chain)
    quote = attestor.quote(provider.challenge())
    wrapped = provider.provision(quote)
    key = device_unwrap_provisioned_key(good_keystore, wrapped, TINYLLAMA.model_id)
    assert key == MODEL_KEY
    print("quote verified; model key provisioned and unwrapped in the TEE")

    print("\n== field: jailbroken device ==")
    evil_attestor = DeviceAttestor("device-evil", evil_keystore, evil_chain)
    try:
        provider.provision(evil_attestor.quote(provider.challenge()))
        raise SystemExit("BUG: jailbroken device got the key!")
    except SecurityViolation as exc:
        print("provider refused: %s" % exc)

    print("\n== runtime: first inference on the provisioned device ==")
    system = TZLLM(TINYLLAMA)
    system.run_infer(8, 0)
    record = system.run_infer(48, 12)
    reply = system.ta.tokenizer.decode(record.decode.token_ids)
    print("TTFT %.2f s, %d tokens decoded at %.1f tok/s" % (
        record.ttft, len(record.decode.token_ids), record.decode_tokens_per_second))
    print("first words: %s ..." % " ".join(reply.split()[:6]))
    print("\nprovisioned devices: %s; rejections: %d" % (
        sorted(provider.provisioned), provider.rejections))


if __name__ == "__main__":
    main()
