#!/usr/bin/env python3
"""A day in the life: adaptive parameter caching under shifting pressure.

The deployed mechanism of §4.1: after each inference the TA keeps as many
parameters cached as the REE's memory pressure allows
(:class:`PressureCachePolicy`), releasing in reverse topological order.
This example replays a request trace while background apps open and close
(pressure phases); watch the cache grow when memory is free (fast TTFT)
and shrink when apps need the RAM (slower TTFT, but the phone stays
usable).

Run:  python examples/daily_assistant.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.config import GiB
from repro.core.caching import PressureCachePolicy
from repro.workloads import MemoryStress
from repro.workloads.traces import generate_pressure_phases, generate_trace

HORIZON = 1800.0  # half an hour, simulated


def main() -> None:
    system = TZLLM(TINYLLAMA)
    system.ta.cache_policy = PressureCachePolicy(headroom_bytes=4 * GiB)
    system.run_infer(8, 0)  # cold start

    trace = generate_trace(HORIZON, rate_per_hour=40, seed=3)
    phases = generate_pressure_phases(
        HORIZON, low_bytes=2 * GiB, high_bytes=10 * GiB, period=400.0, seed=3
    )
    print("Trace: %d requests, %d pressure phases over %.0f simulated minutes"
          % (len(trace), len(phases), HORIZON / 60))

    sim = system.sim
    rows = []

    def driver():
        stress = None
        phase_index = 0
        for event in trace:
            # Advance background pressure phases up to this arrival.
            while phase_index < len(phases) and phases[phase_index].start <= event.at:
                if stress is not None:
                    stress.stop()
                stress = MemoryStress(system.stack.kernel, phases[phase_index].pressure_bytes)
                stress.start()
                phase = phases[phase_index]
                phase_index += 1
            if sim.now < event.at:
                yield sim.timeout(event.at - sim.now)
            cached_before = system.ta.params_region.protected
            record = yield from system.infer(event.prompt_tokens, min(event.output_tokens, 16))
            rows.append(
                [
                    "%5.0fs" % event.at,
                    event.kind,
                    event.prompt_tokens,
                    "%.2f" % record.ttft,
                    "%.0f MB" % (cached_before / 1e6),
                    "%.0f MB" % (system.ta.params_region.protected / 1e6),
                    "%.1f GB" % ((system.stack.kernel.used_bytes) / 1e9),
                ]
            )
        if stress is not None:
            stress.stop()

    proc = sim.process(driver())
    sim.run_until(proc)

    print()
    print(render_table(
        ["arrival", "workload", "prompt", "TTFT (s)",
         "cache before", "cache after", "RAM in use"],
        rows[:18] + ([["...", "", "", "", "", "", ""]] if len(rows) > 18 else []),
        title="Adaptive caching under shifting memory pressure",
    ))

    cached_sizes = [float(r[5].split()[0]) for r in rows]
    print()
    print("Cache size ranged %.0f–%.0f MB as pressure phases alternated;"
          % (min(cached_sizes), max(cached_sizes)))
    print("warm-cache TTFTs: best %.2fs, cold-equivalent worst %.2fs."
          % (min(float(r[3]) for r in rows), max(float(r[3]) for r in rows)))


if __name__ == "__main__":
    main()
