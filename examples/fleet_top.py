#!/usr/bin/env python3
"""Operator's-eye view of a fleet under load: the telemetry pipeline.

The same eight-device fleet as ``fleet_cluster.py`` serves a
multi-tenant evening trace, this time with the full telemetry pipeline
attached — a virtual-time collector scraping every fleet series into
the multi-resolution time-series store, the per-tenant usage
accountant metering tokens and secure-memory residency, and the
tail-based trace sampler keeping every anomalous ticket's Chrome
trace.  A seeded crash and a gray slowdown give the pipeline something
worth watching: hedges fire, a device reboots and re-attests, and the
``fleet top`` snapshot at the end shows all of it.

Outputs land in ``--out`` (default ``out/``, gitignored):

* ``fleet_top.txt``         — the rendered "fleet top" operator table
* ``fleet_snapshot.json``   — the structured snapshot behind it
* ``fleet_timeseries.json`` — the multi-resolution time-series dump
* ``fleet_telemetry.prom``  — per-tenant usage in Prometheus text
* ``fleet_traces.json``     — tail-sampled Chrome trace (chrome://tracing)

Run:  python examples/fleet_top.py [--out DIR] [--policy NAME]
"""

import argparse
import json
import os

from dataclasses import replace

from repro import TINYLLAMA
from repro.analysis import render_table
from repro.config import RK3588
from repro.faults import FaultPlan
from repro.fleet import (
    Fleet,
    FleetLoadGenerator,
    POLICIES,
    ResilienceConfig,
    scale_platform,
)
from repro.obs import TelemetryConfig
from repro.workloads import (
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
)

HORIZON = 2 * 3600.0  # two simulated hours of session starts

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("hub-1", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("phone-2", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

TENANTS = [
    FleetTenantSpec("chat", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=600.0, mean_turns=5.0, mean_think_time=30.0,
                    stickiness=1.0, prefix_tokens=96, prefix_pool=4,
                    output_tokens=(4, 12)),
    FleetTenantSpec("copilot", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=450.0, mean_turns=4.0, mean_think_time=15.0,
                    stickiness=0.8, prefix_tokens=160, prefix_pool=8,
                    output_tokens=(2, 8)),
    FleetTenantSpec("mail", SUMMARIZER.model_id, "batch",
                    sessions_per_hour=250.0, workload="personachat",
                    mean_turns=2.0, mean_think_time=60.0, stickiness=0.5,
                    prefix_tokens=64, prefix_pool=2, output_tokens=(16, 32)),
    FleetTenantSpec("indexer", SUMMARIZER.model_id, "background",
                    sessions_per_hour=180.0, workload="droidtask",
                    mean_turns=1.5, mean_think_time=45.0, stickiness=0.0,
                    output_tokens=(24, 48)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out", help="output directory (default: out/)")
    parser.add_argument("--policy", default="cache-aware", choices=sorted(POLICIES),
                        help="placement policy (default: cache-aware)")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    trace = generate_fleet_trace(HORIZON, TENANTS, seed=42)
    print("Trace: %d requests (%d tenants) over %.0f simulated hours on %d devices"
          % (len(trace), len(TENANTS), HORIZON / 3600, len(PLATFORMS)))

    fleet = Fleet(PLATFORMS, [ASSISTANT, SUMMARIZER],
                  policy=args.policy, warm=True,
                  resilience=ResilienceConfig())
    fleet.start_telemetry(
        until=HORIZON + 1800.0,
        config=TelemetryConfig(scrape_interval=5.0, ring_capacity=720),
    )
    plan = FaultPlan(
        42,
        generate_fault_schedule(
            HORIZON, list(fleet.devices), seed=42, crashes=1, grays=1
        ),
    )
    fleet.start_resilience(until=HORIZON + 1800.0, plan=plan)
    gen = FleetLoadGenerator(fleet.router, trace).run_blocking()
    summary = gen.summary()
    telemetry = fleet.telemetry

    top = telemetry.render_top()
    print()
    print(top)

    # Windowed queries the store answers after the fact: last-hour
    # request/hedge rates and the p99 TTFT seen fleet-wide.
    now = fleet.sim.now
    rates = telemetry.fleet_rates(3600.0)
    print()
    print(render_table(
        ["window", "req/s", "served/s", "shed/s", "hedge/s", "fail/s"],
        [["last 1h",
          "%.3f" % rates["request_rate"], "%.3f" % rates["served_rate"],
          "%.4f" % rates["shed_rate"], "%.4f" % rates["hedge_rate"],
          "%.4f" % rates["failed_rate"]]],
        title="Windowed rates @ t=%.0fs" % now))

    sampler = telemetry.sampler
    print()
    print("Tail sampler: kept %d traces (%s); fast-path keep ratio %.3f"
          % (sampler.kept_total,
             ", ".join("%s=%d" % (k, v) for k, v in sorted(sampler.kept.items())),
             sampler.keep_ratio_fast()))
    print("Scorecard: %d done / %d shed, SLO %.4f"
          % (summary["completed"], summary["shed"], summary["slo_attainment"]))

    outputs = {
        "fleet_top.txt": top + "\n",
        "fleet_snapshot.json": json.dumps(
            telemetry.snapshot(), indent=2, sort_keys=True) + "\n",
        "fleet_timeseries.json": json.dumps(
            telemetry.store.to_dict(), indent=2, sort_keys=True) + "\n",
        "fleet_telemetry.prom": telemetry.accountant.render_prometheus(),
        # Already a JSON document (Chrome trace-event format).
        "fleet_traces.json": sampler.to_chrome_trace() + "\n",
    }
    for name, payload in sorted(outputs.items()):
        path = os.path.join(args.out, name)
        with open(path, "w") as fh:
            fh.write(payload)
    print()
    print("Wrote %s" % ", ".join(
        os.path.join(args.out, name) for name in sorted(outputs)))


if __name__ == "__main__":
    main()
