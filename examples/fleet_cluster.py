#!/usr/bin/env python3
"""An evening of traffic on a simulated eight-device fleet.

Eight heterogeneous devices — two hub-class boxes, a tablet, three
phones and two budget handsets, all scaled from the RK3588 reference —
sit behind one routing tier serving a multi-tenant session trace:
sticky interactive chat, shared-prefix copilot turns, batch mail
summarization and background indexing.  The cache-aware placement
policy routes each turn toward the device that already holds its
session's KV (or its tenant's shared prefix), spilling to the next
ranked device when admission refuses, and the run ends with the fleet
health rollup, the routing scorecard, and the device-labeled metrics
export.

Outputs land in ``--out`` (default ``out/``, gitignored):

* ``fleet_summary.json``  — the routing scorecard + health rollup
* ``fleet_metrics.prom``  — fleet-wide Prometheus export (per-device
  series carry ``device=<id>`` labels)

Run:  python examples/fleet_cluster.py [--out DIR] [--policy NAME]
"""

import argparse
import json
import os

from dataclasses import replace

from repro import TINYLLAMA
from repro.analysis import render_table
from repro.config import RK3588
from repro.fleet import Fleet, FleetLoadGenerator, POLICIES, scale_platform
from repro.workloads import FleetTenantSpec, generate_fleet_trace

HORIZON = 2 * 3600.0  # two simulated hours of session starts

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("hub-1", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("phone-2", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

TENANTS = [
    FleetTenantSpec("chat", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=600.0, mean_turns=5.0, mean_think_time=30.0,
                    stickiness=1.0, prefix_tokens=96, prefix_pool=4,
                    output_tokens=(4, 12)),
    FleetTenantSpec("copilot", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=450.0, mean_turns=4.0, mean_think_time=15.0,
                    stickiness=0.8, prefix_tokens=160, prefix_pool=8,
                    output_tokens=(2, 8)),
    FleetTenantSpec("mail", SUMMARIZER.model_id, "batch",
                    sessions_per_hour=250.0, workload="personachat",
                    mean_turns=2.0, mean_think_time=60.0, stickiness=0.5,
                    prefix_tokens=64, prefix_pool=2, output_tokens=(16, 32)),
    FleetTenantSpec("indexer", SUMMARIZER.model_id, "background",
                    sessions_per_hour=180.0, workload="droidtask",
                    mean_turns=1.5, mean_think_time=45.0, stickiness=0.0,
                    output_tokens=(24, 48)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out", help="output directory (default: out/)")
    parser.add_argument("--policy", default="cache-aware", choices=sorted(POLICIES),
                        help="placement policy (default: cache-aware)")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    trace = generate_fleet_trace(HORIZON, TENANTS, seed=42)
    print("Trace: %d requests (%d tenants) over %.0f simulated hours on %d devices"
          % (len(trace), len(TENANTS), HORIZON / 3600, len(PLATFORMS)))

    fleet = Fleet(PLATFORMS, [ASSISTANT, SUMMARIZER],
                  policy=args.policy, warm=True)
    fleet.start_alerts(until=HORIZON + 1800.0)
    summary = FleetLoadGenerator(fleet.router, trace).run_blocking().summary()

    print()
    print(render_table(
        ["policy", "done", "shed", "spill", "rps",
         "TTFT p50", "p99", "SLO", "rebalanced"],
        [[args.policy, summary["completed"], summary["shed"],
          summary["spillover"], "%.3f" % summary["throughput_rps"],
          "%.3f" % summary["ttft_p50"], "%.3f" % summary["ttft_p99"],
          "%.4f" % summary["slo_attainment"], summary["rebalanced_sessions"]]],
        title="Routing scorecard (%s)" % args.policy))

    health = fleet.health()
    rows = []
    for device_id, info in health["devices"].items():
        rows.append([
            device_id, info["platform"],
            "yes" if info["healthy"] else "NO",
            summary["per_device"].get(device_id, 0),
            info["completed"], info["sessions_resident"],
            info["prefixes_resident"],
        ])
    print()
    print(render_table(
        ["device", "platform", "healthy", "routed", "served",
         "sessions", "prefixes"],
        rows, title="Fleet health rollup (healthy=%s, alerts=%s)"
        % (health["healthy"], health["alerts_firing"] or "none")))

    summary_out = os.path.join(args.out, "fleet_summary.json")
    with open(summary_out, "w") as fh:
        json.dump({"policy": args.policy, "summary": summary, "health": health},
                  fh, indent=2, sort_keys=True, default=str)
    metrics_out = os.path.join(args.out, "fleet_metrics.prom")
    with open(metrics_out, "w") as fh:
        fh.write(fleet.render_metrics())
    print()
    print("Wrote %s and %s" % (summary_out, metrics_out))


if __name__ == "__main__":
    main()
