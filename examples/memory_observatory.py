#!/usr/bin/env python3
"""Where do the secure bytes go?  The memory observatory, end to end.

Part 1 — one device, full fidelity.  A batching TZ-LLM stack serves a
multi-tenant burst with a :class:`~repro.obs.MemoryTimeline` attached:
every TZASC reprogram and every KV block alloc/release lands in the
event ring with tenant attribution, the ``mem_*`` series derive into a
time-series store on a virtual-time scrape loop, and the end-of-run
export shows the stranded-capacity integral — configured secure bytes
that held no live content, i.e. what the paper's static partitioning
wastes and an elastic mechanism would hand back to the REE.

Part 2 — a small fleet, surrogate tier.  The same accounting rolled up
per device from routing state (:meth:`Fleet.start_memory_view`),
rendered as the ``mem top`` operator table, plus the offline
prefix-sharing opportunity analyzer replaying the fleet trace: how much
prefill could shared-prefix KV reuse have skipped?

Outputs land in ``--out`` (default ``out/``, gitignored):

* ``memory_timeline.json`` — the event-sourced timeline artifact
* ``memory_counters.json`` — Chrome trace ``memory`` counter lane
* ``memtop.txt``           — the fleet ``mem top`` table
* ``prefix_share.json``    — the prefix-sharing opportunity report

Run:  python examples/memory_observatory.py [--out DIR]
"""

import argparse
import json
import os

from dataclasses import replace

from repro import TINYLLAMA
from repro.analysis import analyze_prefix_sharing
from repro.config import RK3588
from repro.core import BatchConfig, TZLLM
from repro.fleet import Fleet, FleetLoadGenerator, scale_platform
from repro.llm import PromptSpec
from repro.obs import (
    MemoryTimeline,
    TelemetryConfig,
    instrument,
    memory_pressure_rules,
)
from repro.obs.telemetry import TelemetryCollector, TimeSeriesStore
from repro.serve import GatewayConfig, ServeGateway
from repro.workloads import FleetTenantSpec, generate_fleet_trace

FLEET_HORIZON = 1800.0  # half an hour of fleet session starts

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

TENANTS = [
    FleetTenantSpec("chat", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=360.0, mean_turns=5.0, mean_think_time=30.0,
                    stickiness=1.0, prefix_tokens=96, prefix_pool=4,
                    output_tokens=(4, 12)),
    FleetTenantSpec("copilot", ASSISTANT.model_id, "interactive",
                    sessions_per_hour=240.0, mean_turns=4.0, mean_think_time=15.0,
                    stickiness=0.8, prefix_tokens=160, prefix_pool=8,
                    output_tokens=(2, 8)),
    FleetTenantSpec("indexer", ASSISTANT.model_id, "background",
                    sessions_per_hour=120.0, workload="droidtask",
                    mean_turns=1.5, mean_think_time=45.0, stickiness=0.0,
                    output_tokens=(24, 48)),
]


def run_single_stack():
    """One batching device under a three-tenant burst, timeline attached.

    Prefix sharing is on: the voice/mail tenants resubmit the same system
    prefix (and one session continuation), so the timeline also carries
    the shared-block events — ``ref`` (block taken by reference),
    ``cache``/``uncache`` (prefix-tree residency) and the
    ``mem_shared_bytes`` counter lane.
    """
    system = TZLLM(
        TINYLLAMA,
        batch_config=BatchConfig(
            max_batch_size=4, block_tokens=16, prefix_sharing=True
        ),
    )
    obs = instrument(system)
    timeline = MemoryTimeline(system.sim).attach(system)
    store = TimeSeriesStore(TelemetryConfig(scrape_interval=0.5))
    collector = TelemetryCollector(
        system.sim, obs.registry, store, TelemetryConfig(scrape_interval=0.5)
    )
    timeline.install(collector)
    gateway = ServeGateway(
        system, GatewayConfig(batching=True, shedding=False, preemption=True)
    )

    sim = system.sim
    done = []

    def offered():
        # (at, tenant, priority, spec-or-prompt-tokens, output_tokens):
        # the later voice/mail turns repeat earlier prefixes (and one
        # session continuation), published by then — those are the
        # shared-block ref events; the indexer stays on the legacy
        # no-spec path to show the two coexisting.
        voice = dict(prefix_id="voice/sys", prefix_tokens=32)
        mail = dict(prefix_id="mail/sys", prefix_tokens=48)
        plan = [
            (0.0, "voice", "interactive",
             PromptSpec(session_id="voice/s1", new_tokens=8, **voice), 8),
            (0.1, "mail", "batch",
             PromptSpec(session_id="mail/s1", new_tokens=16, **mail), 24),
            (0.4, "indexer", "background", 96, 48),
            (5.0, "indexer", "background", 80, 40),
            (8.0, "voice", "interactive",
             PromptSpec(session_id="voice/s2", new_tokens=8, **voice), 6),
            (10.0, "mail", "batch",
             PromptSpec(session_id="mail/s2", new_tokens=16, **mail), 24),
            (12.0, "voice", "interactive",
             PromptSpec(session_id="voice/s1", context_tokens=8,
                        new_tokens=16, **voice), 8),
        ]
        last = 0.0
        for at, tenant, priority, spec, out in plan:
            yield sim.timeout(at - last)
            last = at
            if isinstance(spec, PromptSpec):
                done.append(gateway.submit(
                    spec.prompt_tokens, out, priority=priority, tenant=tenant,
                    prompt_spec=spec,
                ))
            else:
                done.append(
                    gateway.submit(spec, out, priority=priority, tenant=tenant)
                )

    def scraper():
        while True:
            yield sim.timeout(0.5)
            collector.scrape()

    sim.process(offered())
    sim.process(scraper(), name="scrape")
    sim.run(until=60.0)

    export = timeline.to_dict()
    totals = export["totals"]
    print("Part 1 — single stack (%d timeline events, %d dropped)"
          % (export["recorded"], export["dropped"]))
    print("  stranded integral: %.1f MiB*s; per tenant byte-seconds: %s"
          % (totals["stranded_byte_seconds"] / 2**20,
             ", ".join("%s=%.1f MiB*s" % (t, v / 2**20)
                       for t, v in export["tenants"].items())))
    print("  pressure rules armed: %s"
          % ", ".join(r.name for r in memory_pressure_rules()))
    print("  served %d/%d requests; pool stats: %s"
          % (sum(1 for r in done if r.done), len(done),
             {name: "%(allocs)d allocs / %(parks)d parks / "
                    "%(refs_taken)d refs / %(caches)d caches" % p
              for name, p in export["pools"].items()}))
    print("  shared-prefix hits: %s" % {
        name: "%d blocks resident, %d shared-saved"
              % (p["cached_blocks"], p["shared_saved_blocks"])
        for name, p in export["pools"].items()})
    return export, timeline.to_chrome_trace()


def run_fleet():
    """A four-device fleet with the rollup view and the analyzer."""
    trace = generate_fleet_trace(FLEET_HORIZON, TENANTS, seed=42)
    fleet = Fleet(PLATFORMS, [ASSISTANT], policy="cache-aware", warm=True,
                  session_capacity=8)
    fleet.start_telemetry(
        until=FLEET_HORIZON + 300.0,
        config=TelemetryConfig(scrape_interval=5.0, ring_capacity=720),
    )
    fleet.start_memory_view()
    FleetLoadGenerator(fleet.router, trace).run_blocking()

    top = fleet.memory.render_memtop()
    print()
    print("Part 2 — fleet rollup (%d requests routed)" % len(trace))
    print(top)

    report = analyze_prefix_sharing(trace, [ASSISTANT], RK3588)
    print()
    print(report.render())
    return top, report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out", help="output directory (default: out/)")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    timeline_export, chrome_trace = run_single_stack()
    memtop, report = run_fleet()

    outputs = {
        "memory_timeline.json": json.dumps(
            timeline_export, indent=2, sort_keys=True) + "\n",
        # Already a JSON document (Chrome trace-event format).
        "memory_counters.json": chrome_trace + "\n",
        "memtop.txt": memtop + "\n",
        "prefix_share.json": json.dumps(
            report.to_dict(), indent=2, sort_keys=True) + "\n",
    }
    for name, payload in sorted(outputs.items()):
        with open(os.path.join(args.out, name), "w") as fh:
            fh.write(payload)
    print()
    print("Wrote %s" % ", ".join(
        os.path.join(args.out, name) for name in sorted(outputs)))


if __name__ == "__main__":
    main()
