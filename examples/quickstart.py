#!/usr/bin/env python3
"""Quickstart: protect an on-device LLM with the simulated TrustZone stack.

Builds the full TZ-LLM system for TinyLlama-1.1B, runs a first request
(cold start: framework init + checkpoint save), then a steady-state
request, and prints where the time went.

Run:  python examples/quickstart.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table


def main() -> None:
    print("Building TZ-LLM for %s ..." % TINYLLAMA.display_name)
    system = TZLLM(TINYLLAMA, cache_fraction=0.2)

    print("First request (cold start: init 2.3s + checkpoint save) ...")
    cold = system.run_infer(prompt_tokens=32, output_tokens=8)

    print("Steady-state request (checkpoint restore + pipelined restore) ...")
    warm = system.run_infer(prompt_tokens=128, output_tokens=16)

    rows = []
    for label, record in (("cold", cold), ("steady", warm)):
        pipe = record.pipeline
        rows.append(
            [
                label,
                record.prompt_tokens,
                "%.3f" % record.ttft,
                "%.3f" % record.init_time,
                "%.3f" % pipe.io_time,
                "%.3f" % (pipe.alloc_time + pipe.decrypt_time),
                "%.3f" % pipe.computation_path,
                "%.2f" % record.decode_tokens_per_second,
            ]
        )
    print()
    print(
        render_table(
            ["request", "prompt", "TTFT(s)", "init", "flash-io", "alloc+decrypt", "compute", "decode tok/s"],
            rows,
            title="TZ-LLM inference breakdown (simulated seconds)",
        )
    )
    print()
    print(
        "Partial cache after release: %d/%d groups (%.0f MB secure memory kept)"
        % (
            system.ta.cached_groups,
            len(system.ta.plan.groups),
            system.ta.params_region.protected / 1e6,
        )
    )
    print("SMC world switches during steady request: %d" % warm.smc_count)


if __name__ == "__main__":
    main()
