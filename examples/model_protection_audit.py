#!/usr/bin/env python3
"""Security audit: run the paper's §6 attack catalogue against TZ-LLM.

Each attack is executed for real against the simulated platform:
direct memory access, flash theft, DMA from a rogue device, Iago attacks
on the CMA and model-loading interfaces, NPU job replay, and a malicious
TA.  The audit reports, for every attack, what the attacker actually
observed.

Run:  python examples/model_protection_audit.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.errors import (
    AccessDenied,
    DMAViolation,
    IagoViolation,
    SecurityViolation,
)
from repro.hw import World
from repro.llm import container_path, tensor_plaintext
from repro.tee import TrustedApplication

N = World.NONSECURE


def main() -> None:
    model = TINYLLAMA
    system = TZLLM(model, cache_fraction=1.0)
    system.run_infer(8, 0)
    system.run_infer(32, 0)  # parameters now cached in secure memory
    region = system.ta.params_region
    results = []

    def attempt(name, attack):
        try:
            observed = attack()
            results.append([name, "LEAKED", observed])
        except (AccessDenied, DMAViolation, IagoViolation, SecurityViolation) as exc:
            results.append([name, "blocked", type(exc).__name__])

    attempt(
        "REE reads cached weights",
        lambda: system.stack.board.memory.cpu_read(region.base_addr, 32, N)[:8].hex(),
    )
    attempt(
        "rogue device DMA",
        lambda: system.stack.board.memory.dma_read(region.base_addr, 32, "rogue-nic")[:8].hex(),
    )
    attempt(
        "NPU DMA outside secure job",
        lambda: system.stack.board.memory.dma_read(region.base_addr, 32, "npu")[:8].hex(),
    )

    def flash_theft():
        tensor = system.container.tensor("blk.0.attn")
        blob = system.stack.board.flash.peek(
            "fs:" + container_path(model.model_id),
            system.container.file_offset(tensor),
            tensor.payload_bytes,
        )
        if blob == tensor_plaintext(model.model_id, tensor):
            return "plaintext weights"
        raise SecurityViolation("ciphertext only (model key is TEE-bound)")

    attempt("offline flash dump", flash_theft)

    def rogue_ta():
        ta = TrustedApplication("rogue")
        system.stack.tee_os.install_ta(ta)
        return system.stack.tee_os.ta_read(ta, region.base_addr, 32)[:8].hex()

    attempt("malicious TA reads LLM memory", rogue_ta)
    attempt(
        "rogue TA unwraps model key",
        lambda: system.stack.tee_os.unwrap_key_for(
            system.stack.tee_os.ta("rogue"), system.container.wrapped_key, model.model_id
        ).hex(),
    )

    def cma_iago():
        fresh = TZLLM(model)
        fresh.run_infer(8, 0)
        fresh.stack.tz_driver.alloc_result_hook = (
            lambda addr: addr + fresh.stack.kernel.db.granule
        )
        fresh.run_infer(32, 0)
        return "secure memory built on attacker-chosen pages"

    attempt("CMA returns forged address", cma_iago)

    def load_iago():
        fresh = TZLLM(model)
        fresh.run_infer(8, 0)
        fresh.stack.kernel.fs.tamper_hook = (
            lambda path, offset, data: bytes(len(data))
        )
        fresh.run_infer(32, 0)
        return "forged parameters accepted"

    attempt("REE forges model-file reads", load_iago)

    print(render_table(["attack", "outcome", "attacker observed"], results,
                       title="TZ-LLM security audit (every attack executed)"))
    blocked = sum(1 for row in results if row[1] == "blocked")
    print("\n%d/%d attacks blocked." % (blocked, len(results)))
    if blocked != len(results):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
