#!/usr/bin/env python3
"""Visualize the restoration pipeline: export a Fig. 5-style timeline.

Runs one TZ-LLM inference with tracing and metrics enabled and writes
``tzllm_trace.json`` — open it in chrome://tracing or https://ui.perfetto.dev
to see the CPU row (allocation, decryption, CPU compute), the I/O engine
row (parameter loads) and the NPU row (secure matmul jobs) overlapping,
exactly like the paper's pipelined-restoration timelines.  Alongside the
trace it prints a Prometheus-format metrics excerpt and the flight
recorder's tail, and writes the full registry snapshot to
``tzllm_metrics.json``.

Run:  python examples/pipeline_trace.py
"""

import json

from repro import TINYLLAMA, TZLLM
from repro.analysis import critical_path, render_table
from repro.obs import instrument

OUT = "tzllm_trace.json"
METRICS_OUT = "tzllm_metrics.json"


def main() -> None:
    system = TZLLM(TINYLLAMA, trace=True)
    obs = instrument(system)
    system.run_infer(8, 0)  # cold start (traced too)
    record = system.run_infer(256, 0)
    tracer = system.tracer

    rows = []
    for category in ("alloc", "load", "decrypt", "compute"):
        spans = [s for s in tracer.spans if s.category == category]
        rows.append(
            [category, len(spans), "%.3f s" % tracer.total_time(category)]
        )
    print(render_table(
        ["pipeline row", "spans", "busy time"],
        rows,
        title="Pipelined restoration, %s, 256-token prompt (TTFT %.2f s)"
        % (TINYLLAMA.display_name, record.ttft),
    ))

    # Where the wall-clock went: merged busy time and bubbles per lane.
    print()
    print(critical_path(tracer).render())

    # The unified registry covers every layer the request crossed.
    print("\n--- metrics (Prometheus text, excerpt) ---")
    text = obs.registry.render()
    shown = 0
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        print(line)
        shown += 1
        if shown >= 12:
            print("... (%d lines total)" % len(text.splitlines()))
            break

    with open(METRICS_OUT, "w") as fh:
        json.dump(obs.registry.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\nwrote %s — full registry snapshot" % METRICS_OUT)

    # The flight recorder keeps the last events for postmortems; a clean
    # run still logs pipeline milestones.
    print("\n--- flight recorder tail ---")
    print(obs.recorder.render(8))

    tracer.write_chrome_trace(OUT)
    print("\nwrote %s — open in chrome://tracing or ui.perfetto.dev" % OUT)
    print("lanes: %s" % ", ".join(tracer.lanes()))


if __name__ == "__main__":
    main()
