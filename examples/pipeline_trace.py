#!/usr/bin/env python3
"""Visualize the restoration pipeline: export a Fig. 5-style timeline.

Runs one TZ-LLM inference with tracing and metrics enabled and writes
``tzllm_trace.json`` — open it in chrome://tracing or https://ui.perfetto.dev
to see the CPU row (allocation, decryption, CPU compute), the I/O engine
row (parameter loads) and the NPU row (secure matmul jobs) overlapping,
exactly like the paper's pipelined-restoration timelines.  Alongside the
trace it prints a Prometheus-format metrics excerpt and the flight
recorder's tail, and writes the full registry snapshot to
``tzllm_metrics.json`` and a speedscope/FlameGraph-loadable collapsed
stack to ``tzllm_profile.collapsed``.

Outputs land in ``--out`` (default ``out/``, gitignored).

Run:  python examples/pipeline_trace.py [--out DIR]
"""

import argparse
import json
import os

from repro import TINYLLAMA, TZLLM
from repro.analysis import critical_path, render_table
from repro.obs import Profiler, instrument


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out", help="output directory (default: out/)")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    trace_out = os.path.join(args.out, "tzllm_trace.json")
    metrics_out = os.path.join(args.out, "tzllm_metrics.json")
    profile_out = os.path.join(args.out, "tzllm_profile.collapsed")

    system = TZLLM(TINYLLAMA, trace=True)
    obs = instrument(system)
    system.run_infer(8, 0)  # cold start (traced too)
    record = system.run_infer(256, 0)
    tracer = system.tracer

    rows = []
    for category in ("alloc", "load", "decrypt", "compute"):
        spans = [s for s in tracer.spans if s.category == category]
        rows.append(
            [category, len(spans), "%.3f s" % tracer.total_time(category)]
        )
    print(render_table(
        ["pipeline row", "spans", "busy time"],
        rows,
        title="Pipelined restoration, %s, 256-token prompt (TTFT %.2f s)"
        % (TINYLLAMA.display_name, record.ttft),
    ))

    # Where the wall-clock went: merged busy time and bubbles per lane.
    print()
    print(critical_path(tracer).render())

    # The unified registry covers every layer the request crossed.
    print("\n--- metrics (Prometheus text, excerpt) ---")
    text = obs.registry.render()
    shown = 0
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        print(line)
        shown += 1
        if shown >= 12:
            print("... (%d lines total)" % len(text.splitlines()))
            break

    with open(metrics_out, "w") as fh:
        json.dump(obs.registry.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\nwrote %s — full registry snapshot" % metrics_out)

    # The flight recorder keeps the last events for postmortems; a clean
    # run still logs pipeline milestones.
    print("\n--- flight recorder tail ---")
    print(obs.recorder.render(8))

    # Virtual-time profile: lane accounting plus a collapsed-stack file.
    profiler = Profiler(tracer, sim=system.sim)
    profiler.add_record(record)
    print("\n--- profiler ---")
    print(profiler.render())
    profiler.write_collapsed(profile_out)
    print("\nwrote %s — load in speedscope.app or flamegraph.pl" % profile_out)

    tracer.write_chrome_trace(trace_out)
    print("wrote %s — open in chrome://tracing or ui.perfetto.dev" % trace_out)
    print("lanes: %s" % ", ".join(tracer.lanes()))


if __name__ == "__main__":
    main()
