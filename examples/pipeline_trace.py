#!/usr/bin/env python3
"""Visualize the restoration pipeline: export a Fig. 5-style timeline.

Runs one TZ-LLM inference with tracing enabled and writes
``tzllm_trace.json`` — open it in chrome://tracing or https://ui.perfetto.dev
to see the CPU row (allocation, decryption, CPU compute), the I/O engine
row (parameter loads) and the NPU row (secure matmul jobs) overlapping,
exactly like the paper's pipelined-restoration timelines.

Run:  python examples/pipeline_trace.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table

OUT = "tzllm_trace.json"


def main() -> None:
    system = TZLLM(TINYLLAMA, trace=True)
    system.run_infer(8, 0)  # cold start (traced too)
    record = system.run_infer(256, 0)
    tracer = system.tracer

    rows = []
    for category in ("alloc", "load", "decrypt", "compute"):
        spans = [s for s in tracer.spans if s.category == category]
        rows.append(
            [category, len(spans), "%.3f s" % tracer.total_time(category)]
        )
    print(render_table(
        ["pipeline row", "spans", "busy time"],
        rows,
        title="Pipelined restoration, %s, 256-token prompt (TTFT %.2f s)"
        % (TINYLLAMA.display_name, record.ttft),
    ))

    tracer.write_chrome_trace(OUT)
    print("\nwrote %s — open in chrome://tracing or ui.perfetto.dev" % OUT)
    print("lanes: %s" % ", ".join(tracer.lanes()))


if __name__ == "__main__":
    main()
