#!/usr/bin/env python3
"""A day of multi-tenant serving on one TrustZone-protected device.

Two protected models (an assistant and a summarizer TA) serve five
tenants for a simulated day: bursty interactive voice/keyboard turns, a
steady batch mail summarizer, and background indexing/embedding jobs.
The gateway dispatches by priority, preempts background decodes at token
boundaries when a user is waiting, and sheds requests whose TTFT SLO is
already unattainable — printing the per-class report card at the end.

Run:  python examples/serving_gateway.py
"""

from dataclasses import replace

from repro import TINYLLAMA
from repro.analysis import render_table
from repro.core.multi import TZLLMMulti
from repro.serve import GatewayConfig, LoadGenerator, PriorityClass, ServeGateway
from repro.workloads import TenantSpec, generate_multitenant_trace

HORIZON = 6 * 3600.0  # a quarter day, simulated

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")

TENANTS = [
    TenantSpec("voice", ASSISTANT.model_id, "interactive", rate_per_hour=30,
               output_tokens=(4, 12),
               burst_factor=8.0, burst_period=1800.0, burst_duration=120.0),
    TenantSpec("keyboard", ASSISTANT.model_id, "interactive", rate_per_hour=20,
               output_tokens=(2, 6)),
    TenantSpec("mail", SUMMARIZER.model_id, "batch", rate_per_hour=30,
               workload="personachat", output_tokens=(16, 32)),
    TenantSpec("indexer", ASSISTANT.model_id, "background", rate_per_hour=12,
               workload="droidtask", output_tokens=(96, 160)),
    TenantSpec("embedder", SUMMARIZER.model_id, "background", rate_per_hour=10,
               workload="droidtask", output_tokens=(64, 128)),
]


def main() -> None:
    system = TZLLMMulti([ASSISTANT, SUMMARIZER], cache_fraction=1.0)
    for model_id in system.tas:
        system.run_infer(model_id, 8, 0)  # cold starts off the trace

    trace = generate_multitenant_trace(HORIZON, TENANTS, seed=42)
    print("Trace: %d requests from %d tenants over %.0f simulated hours"
          % (len(trace), len(TENANTS), HORIZON / 3600))

    gateway = ServeGateway(system, GatewayConfig(scheduling="priority",
                                                 preemption=True, shedding=True))
    loadgen = LoadGenerator(gateway, trace).run_blocking()

    acct = gateway.accountant
    rows = []
    for cls in PriorityClass:
        stats = acct.classes[cls]
        summary = acct.summary(cls, "ttft")
        rows.append([
            cls.label,
            stats.completed,
            sum(stats.rejected.values()),
            stats.preemptions,
            "-" if summary is None else "%.2f" % summary.p50,
            "-" if summary is None else "%.2f" % summary.p95,
            "-" if summary is None else "%.2f" % summary.p99,
            ("%d/%d" % (stats.slo_attained, stats.slo_attained + stats.slo_violated))
            if stats.slo_attained + stats.slo_violated else "-",
            "%.2f" % acct.throughput_tokens_per_second(cls),
        ])
    print()
    print(render_table(
        ["class", "served", "shed", "preempted",
         "TTFT p50", "p95", "p99", "SLO met", "tok/s"],
        rows, title="A day at the gateway (per priority class)"))

    print()
    print("Utilization: " + ", ".join(
        "%s %.1f%%" % (m, 100 * acct.utilization(m)) for m in sorted(gateway.lanes)))
    if loadgen.rejected:
        print("Shed %d of %d offered requests: %s"
              % (len(loadgen.rejected), loadgen.offered, loadgen.rejection_reasons()))
    print("Preemption signals: %d (wasted %.1fs of simulated TA time)"
          % (gateway.preemption_signals, gateway.wasted_time))
    print()
    print("Last lines of the (deterministic) request log:")
    for line in gateway.log[-5:]:
        print("  " + line)


if __name__ == "__main__":
    main()
