#!/usr/bin/env python3
"""NPU time-sharing: a camera app and the protected LLM share one NPU.

The §7.3 scenario: the REE runs a YOLOv5 object-detection pipeline on the
NPU while the TEE's LLM decodes.  The full REE driver keeps the unified
job queue; every secure job arrives as a shadow job, the co-driver flips
the device into secure mode, runs it, and hands the NPU straight back —
no 32 ms driver re-initialization.

The example measures both sides exclusively and shared, then reports the
co-driver's world-switch overhead.

Run:  python examples/npu_sharing_camera.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.hw import AddrRange
from repro.workloads import NNAppRunner, YOLOV5S

WINDOW = 4.0  # seconds of simulated time per measurement


def camera_throughput(system: TZLLM, concurrent_llm: bool) -> tuple:
    sim = system.sim
    ctx_alloc = system.stack.kernel.alloc_unmovable(4096, tag="camera-ctx")
    ctx = AddrRange(system.stack.kernel.db.frame_addr(min(ctx_alloc.frames)), 4096)
    camera = NNAppRunner(sim, system.stack.spec, system.stack.ree_npu, YOLOV5S, ctx)
    camera_proc = sim.process(camera.run_for(WINDOW))
    llm_rate = 0.0
    if concurrent_llm:
        record = system.run_infer(64, 24)
        llm_rate = record.decode_tokens_per_second
    sim.run_until(camera_proc)
    return camera.throughput, llm_rate


def main() -> None:
    system = TZLLM(TINYLLAMA, cache_fraction=1.0, decode_use_npu=True)
    system.run_infer(8, 0)   # cold start
    system.run_infer(64, 0)  # fills the parameter cache

    solo_llm = system.run_infer(64, 24).decode_tokens_per_second
    switch_before = system.stack.tee_npu.world_switch_time

    camera_solo, _ = camera_throughput(system, concurrent_llm=False)
    camera_shared, llm_shared = camera_throughput(system, concurrent_llm=True)
    switch_spent = system.stack.tee_npu.world_switch_time - switch_before

    print(
        render_table(
            ["side", "exclusive", "shared", "slowdown"],
            [
                ["YOLOv5 (REE, frames/s)", "%.1f" % camera_solo, "%.1f" % camera_shared,
                 "%.1f%%" % ((1 - camera_shared / camera_solo) * 100)],
                ["LLM decode (TEE, tok/s)", "%.2f" % solo_llm, "%.2f" % llm_shared,
                 "%.1f%%" % ((1 - llm_shared / solo_llm) * 100)],
            ],
            title="One NPU, two worlds (window = %.0fs simulated)" % WINDOW,
        )
    )
    print()
    print("Secure jobs executed: %d" % system.stack.tee_npu.secure_jobs_completed)
    print("Total co-driver world-switch time: %.1f ms (vs %.0f ms re-init per"
          " switch in the detach-attach design)"
          % (switch_spent * 1e3, system.stack.spec.npu.driver_reinit_time * 1e3))


if __name__ == "__main__":
    main()
