#!/usr/bin/env python3
"""A personal chat assistant whose model never leaves the TEE.

The scenario the paper's introduction motivates: an on-device assistant
incorporates private user context into prompts.  The proprietary model is
encrypted at rest, decrypted only inside TrustZone-protected memory, and
partially cached between turns so follow-up questions start fast.

The example runs a multi-turn conversation from the UltraChat-style
workload, shows per-turn TTFT improving as the parameter cache warms, and
demonstrates that a "jailbroken" REE cannot read the model while the
assistant is idle between turns.

Run:  python examples/secure_chat_assistant.py
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.errors import AccessDenied
from repro.hw import World
from repro.workloads import generate_prompts


def main() -> None:
    model = TINYLLAMA
    system = TZLLM(model, cache_fraction=0.6)
    tokenizer = system.ta.tokenizer

    print("Provisioned %s: %.1f GB encrypted on flash" % (
        model.display_name, system.container.nominal_param_bytes / 1e9))
    system.run_infer(8, 0)  # cold start once, off the measured path

    turns = generate_prompts("ultrachat", 5, seed=11)
    rows = []
    for turn, prompt in enumerate(turns):
        ids = tokenizer.encode(prompt.text)
        record = system.run_infer(prompt_tokens=len(ids), output_tokens=24)
        reply = tokenizer.decode(record.decode.token_ids)
        rows.append(
            [
                turn + 1,
                len(ids),
                "%.3f" % record.ttft,
                "%d/%d" % (record.cached_groups, len(system.ta.plan.groups)),
                "%.2f" % record.decode_tokens_per_second,
                reply.split()[0] if reply else "-",
            ]
        )
    print()
    print(
        render_table(
            ["turn", "prompt toks", "TTFT(s)", "cached groups", "tok/s", "first word"],
            rows,
            title="Multi-turn conversation (cache warms after turn 1)",
        )
    )

    # Between turns the model sits in secure memory.  A compromised REE
    # kernel tries to dump it:
    region = system.ta.params_region
    try:
        system.stack.board.memory.cpu_read(region.base_addr, 4096, World.NONSECURE)
        raise SystemExit("BUG: REE read secure parameters!")
    except AccessDenied:
        print()
        print(
            "Compromised-REE dump of the %.0f MB cached parameters: BLOCKED by TZASC"
            % (region.protected / 1e6)
        )


if __name__ == "__main__":
    main()
