"""TrustZone Protection Controller: MMIO security for peripherals.

The TZPC marks each peripheral as a secure or non-secure device.  MMIO
transactions from non-secure masters to a secure device are rejected at
the bus.  The TEE NPU co-driver flips the NPU to secure before launching
secure jobs and back afterwards (§4.3).
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError, MMIODenied, SecurityViolation
from .common import World

__all__ = ["TZPC"]


class TZPC:
    """Peripheral security states: filters MMIO by the master's world."""

    def __init__(self, config_time: float = 20e-6):
        self.config_time = config_time
        self._device_world: Dict[str, World] = {}
        self.config_ops = 0

    def register_device(self, name: str, world: World = World.NONSECURE) -> None:
        """Declare a peripheral and its boot-time security state."""
        if name in self._device_world:
            raise ConfigurationError("device %r already registered" % name)
        self._device_world[name] = world

    def set_secure(self, world: World, name: str, secure: bool) -> None:
        """Reprogram a device's security state (secure world only)."""
        if not world.is_secure:
            raise SecurityViolation("TZPC programming from non-secure world")
        if name not in self._device_world:
            raise ConfigurationError("unknown device %r" % name)
        self._device_world[name] = World.SECURE if secure else World.NONSECURE
        self.config_ops += 1

    def device_world(self, name: str) -> World:
        try:
            return self._device_world[name]
        except KeyError:
            raise ConfigurationError("unknown device %r" % name)

    def check_mmio(self, device: str, world: World) -> None:
        """Filter an MMIO access to ``device`` from a master in ``world``."""
        target = self.device_world(device)
        if target.is_secure and not world.is_secure:
            raise MMIODenied("non-secure MMIO to secure device %r" % device)
