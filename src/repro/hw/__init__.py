"""Simulated RK3588-class hardware with Arm TrustZone.

Blocks: :class:`TZASC` (secure-region memory filter), :class:`TZPC`
(peripheral MMIO security), :class:`GIC` (interrupt routing with the
security extension), :class:`SecureMonitor` (EL3 SMC path),
:class:`PhysicalMemory` (sparse real-byte RAM behind the TZASC),
:class:`Flash` (NVMe blob store with a 2 GB/s shared pipe), and
:class:`NPU` (MMIO-launched jobs doing real TZASC-filtered DMA).
:class:`Board` wires them all to one simulator.
"""

from .common import AddrRange, Master, World
from .flash import Flash
from .gic import GIC
from .memory import PhysicalMemory
from .monitor import SecureMonitor
from .npu import NPU, NPU_DEVICE, NPU_IRQ, NPUJob
from .platform import Board
from .tzasc import TZASC, TZASCRegion
from .tzpc import TZPC

__all__ = [
    "AddrRange",
    "Board",
    "Flash",
    "GIC",
    "Master",
    "NPU",
    "NPU_DEVICE",
    "NPU_IRQ",
    "NPUJob",
    "PhysicalMemory",
    "SecureMonitor",
    "TZASC",
    "TZASCRegion",
    "TZPC",
    "World",
]
