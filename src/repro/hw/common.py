"""Shared hardware vocabulary: worlds, masters, address ranges."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["World", "Master", "AddrRange"]


class World(enum.Enum):
    """TrustZone security state of a bus master."""

    SECURE = "secure"
    NONSECURE = "nonsecure"

    @property
    def is_secure(self) -> bool:
        return self is World.SECURE


@dataclass(frozen=True)
class Master:
    """A bus master: a CPU in some world, or a DMA-capable device."""

    name: str
    world: World
    is_device: bool = False

    @staticmethod
    def cpu(world: World) -> "Master":
        return Master("cpu", world, is_device=False)

    @staticmethod
    def device(name: str, world: World) -> "Master":
        return Master(name, world, is_device=True)


@dataclass(frozen=True)
class AddrRange:
    """A half-open physical address range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self):
        if self.base < 0 or self.size < 0:
            raise ConfigurationError("negative address or size")

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def empty(self) -> bool:
        return self.size == 0

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def covers(self, other: "AddrRange") -> bool:
        return self.base <= other.base and other.end <= self.end

    def overlaps(self, other: "AddrRange") -> bool:
        if self.empty or other.empty:
            return False
        return self.base < other.end and other.base < self.end

    def intersection(self, other: "AddrRange") -> "AddrRange":
        base = max(self.base, other.base)
        end = min(self.end, other.end)
        return AddrRange(base, max(0, end - base))

    def __repr__(self) -> str:
        return "AddrRange(0x%x..0x%x)" % (self.base, self.end)
