"""The NPU device: MMIO-launched jobs, DMA through the TZASC, IRQ on done.

A job's *execution context* is a set of physical memory ranges: register
commands (the job "code"), the I/O page table, and input/output buffers.
Launching is an MMIO operation (TZPC-filtered by the launching master's
world).  During execution the NPU performs real DMA: it reads the command
and input ranges at start and writes a deterministic transform of the
inputs to the output ranges at completion — every transfer filtered by
the TZASC for the device name ``"npu"``.  Completion raises the NPU IRQ
through the GIC, which routes it to whichever world currently owns the
line.

Because input DMA happens at launch and output DMA at completion, the
model faithfully reproduces the attack the paper's switch-ordering rule
defends against: if the TEE driver granted the NPU access to secure
memory while a previously-launched non-secure job was still in flight,
that job's completion DMA could land in secure memory (§4.3, step
ordering).  Tests exercise both the attack and the defense.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import NPUSpec
from ..errors import DeviceError, DMAViolation
from ..sim import Event, Simulator
from .common import AddrRange, World
from .gic import GIC
from .memory import PhysicalMemory
from .tzpc import TZPC

__all__ = ["NPUJob", "NPU", "NPU_IRQ", "NPU_DEVICE"]

NPU_IRQ = 64
NPU_DEVICE = "npu"


@dataclass
class NPUJob:
    """An execution context handed to the NPU."""

    duration: float
    commands: AddrRange
    io_pagetable: AddrRange
    inputs: List[AddrRange] = field(default_factory=list)
    outputs: List[AddrRange] = field(default_factory=list)
    tag: object = None
    job_id: int = -1
    #: filled by the device
    launched_at: float = -1.0
    completed_at: float = -1.0
    faulted: Optional[str] = None

    def all_ranges(self) -> List[AddrRange]:
        return [self.commands, self.io_pagetable] + list(self.inputs) + list(self.outputs)


class NPU:
    """Single-queue NPU device (one job in flight, as driven by the driver)."""

    def __init__(
        self,
        sim: Simulator,
        spec: NPUSpec,
        memory: PhysicalMemory,
        tzpc: TZPC,
        gic: GIC,
    ):
        self.sim = sim
        self.spec = spec
        self.memory = memory
        self.tzpc = tzpc
        self.gic = gic
        self.name = NPU_DEVICE
        self.irq = NPU_IRQ
        tzpc.register_device(self.name, World.NONSECURE)
        gic.register_line(self.irq, World.NONSECURE)
        self._current: Optional[NPUJob] = None
        self._idle_waiters: List[Event] = []
        self._job_ids = itertools.count(1)
        self.jobs_completed = 0
        self.jobs_faulted = 0
        self.busy_time = 0.0
        self.powered = True

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def current_job(self) -> Optional[NPUJob]:
        return self._current

    def wait_idle(self) -> Event:
        """Event that triggers as soon as no job is in flight."""
        event = self.sim.event()
        if self._current is None:
            event.succeed()
        else:
            self._idle_waiters.append(event)
        return event

    def set_power(self, on: bool) -> None:
        if not on and self.busy:
            raise DeviceError("powering off a busy NPU")
        self.powered = on

    # ------------------------------------------------------------------
    def launch(self, world: World, job: NPUJob) -> NPUJob:
        """MMIO kickoff; returns immediately, completion arrives by IRQ.

        Raises synchronously on MMIO denial, power-off, or a busy queue.
        Input-side DMA faults abort the job (recorded in ``job.faulted``)
        rather than raising into the launcher — the real device raises a
        fault IRQ; here the completion IRQ carries the faulted job.
        """
        self.tzpc.check_mmio(self.name, world)
        if not self.powered:
            raise DeviceError("NPU is powered off")
        if self._current is not None:
            raise DeviceError("NPU busy: job %d in flight" % self._current.job_id)
        job.job_id = next(self._job_ids)
        job.launched_at = self.sim.now
        self._current = job
        self.sim.process(self._execute(job), name="npu-job-%d" % job.job_id)
        return job

    def _execute(self, job: NPUJob):
        input_data = b""
        try:
            # Command fetch, page-table walk, and input reads happen up
            # front, through the TZASC as device DMA.
            self.memory.dma_read(job.commands.base, job.commands.size, self.name)
            if not job.io_pagetable.empty:
                self.memory.dma_read(job.io_pagetable.base, job.io_pagetable.size, self.name)
            chunks = []
            for rng in job.inputs:
                chunks.append(self.memory.dma_read(rng.base, rng.size, self.name))
            input_data = b"".join(chunks)
        except DMAViolation as exc:
            job.faulted = "input:%s" % exc
        yield self.sim.timeout(self.spec.job_launch_latency + max(0.0, job.duration))
        self.busy_time += job.duration
        if job.faulted is None:
            try:
                digest = _transform(input_data)
                for rng in job.outputs:
                    self.memory.dma_write(rng.base, _expand(digest, rng.size), self.name)
            except DMAViolation as exc:
                job.faulted = "output:%s" % exc
        job.completed_at = self.sim.now
        self._current = None
        if job.faulted is None:
            self.jobs_completed += 1
        else:
            self.jobs_faulted += 1
        waiters, self._idle_waiters = self._idle_waiters, []
        for event in waiters:
            event.succeed()
        self.gic.raise_irq(self.irq, job)


def _transform(data: bytes) -> bytes:
    return hashlib.sha256(b"npu:" + data).digest()


def _expand(digest: bytes, size: int) -> bytes:
    if size <= 0:
        return b""
    reps = size // len(digest) + 1
    return (digest * reps)[:size]
