"""NVMe flash storage: named blobs behind a bandwidth-shared pipe.

The device stores raw blobs (the REE filesystem layers names and
encryption on top).  Reads and writes consume simulated time on a
processor-shared pipe calibrated to the board's 2 GB/s sequential-read
throughput, plus a small per-request latency.  Concurrent aio requests
therefore really contend for bandwidth, which is what makes the paper's
"hide allocation under I/O latency" arguments measurable.
"""

from __future__ import annotations

from typing import Dict

from ..config import FlashSpec
from ..errors import ConfigurationError, StorageError
from ..sim import BandwidthResource, Simulator

__all__ = ["Flash"]


class Flash:
    """The NVMe device: named blobs behind a shared-bandwidth pipe."""

    def __init__(self, sim: Simulator, spec: FlashSpec, name: str = "flash"):
        self.sim = sim
        self.spec = spec
        self.pipe = BandwidthResource(
            sim, spec.seq_read_bw, per_stream=spec.per_stream_bw, name=name
        )
        self._blobs: Dict[str, bytearray] = {}
        self.reads = 0
        self.writes = 0
        #: fault-injection sites (repro.faults): ``flash.read_error``
        #: fails a read after its setup latency; ``flash.bit_flip``
        #: silently corrupts one bit of the returned data.
        self.fault_injector = None
        self.read_errors = 0
        self.bit_flips = 0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None

    # ------------------------------------------------------------------
    # instantaneous management (provisioning, not simulated I/O)
    # ------------------------------------------------------------------
    def provision(self, name: str, data: bytes) -> None:
        """Place a blob on flash without charging simulated time.

        Used for test/bench setup (the model file is already on the
        device before the experiment starts, as in the paper).
        """
        self._blobs[name] = bytearray(data)

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def size(self, name: str) -> int:
        return len(self._require(name))

    def delete(self, name: str) -> None:
        self._blobs.pop(name, None)

    def peek(self, name: str, offset: int = 0, size: int = -1) -> bytes:
        """Read blob content without timing (attacker's offline flash dump)."""
        blob = self._require(name)
        if size < 0:
            size = len(blob) - offset
        return bytes(blob[offset : offset + size])

    def _require(self, name: str) -> bytearray:
        blob = self._blobs.get(name)
        if blob is None:
            raise StorageError("no blob %r on flash" % name)
        return blob

    # ------------------------------------------------------------------
    # timed I/O (generators; yield from within a process)
    # ------------------------------------------------------------------
    def read(self, name: str, offset: int, size: int, nominal: float = None):
        """Timed read; returns the bytes.

        ``nominal`` charges transfer time for a different (usually larger)
        byte count than is physically stored — used by the scaled-down
        model containers, whose tensors carry full-size timing semantics
        over small real payloads.
        """
        blob = self._require(name)
        if offset < 0 or offset + size > len(blob):
            raise ConfigurationError(
                "read [%d, %d) beyond blob %r of %d bytes" % (offset, offset + size, name, len(blob))
            )
        self.reads += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("flash_reads_total", "Flash read requests").inc()
            metrics.counter("flash_read_bytes_total", "Bytes read from flash").inc(size)
        injector = self.fault_injector
        if injector is not None and injector.fires("flash.read_error"):
            # The controller aborts after request setup: the latency is
            # paid, the transfer never happens.
            self.read_errors += 1
            if metrics is not None:
                metrics.counter("flash_read_errors_total", "Failed flash reads").inc()
            if self.recorder is not None:
                self.recorder.record(
                    "fault", "flash.read_error", "injected read error",
                    blob=name, offset=offset,
                )
            yield self.sim.timeout(self.spec.read_latency)
            raise StorageError(
                "injected flash read error on %r at offset %d" % (name, offset)
            )
        yield self.sim.timeout(self.spec.read_latency)
        yield self.pipe.transfer(size if nominal is None else nominal, tag=("read", name))
        data = bytes(blob[offset : offset + size])
        if injector is not None:
            flipped = injector.corrupt("flash.bit_flip", data)
            if flipped is not data:
                self.bit_flips += 1
                if metrics is not None:
                    metrics.counter("flash_bit_flips_total", "Silently corrupted reads").inc()
                if self.recorder is not None:
                    self.recorder.record(
                        "fault", "flash.bit_flip", "corrupted read", blob=name
                    )
                data = flipped
        return data

    def write(self, name: str, offset: int, data: bytes):
        """Timed write (creates or extends the blob)."""
        blob = self._blobs.setdefault(name, bytearray())
        if offset > len(blob):
            raise ConfigurationError("sparse write to %r" % name)
        self.writes += 1
        yield self.sim.timeout(self.spec.read_latency)
        yield self.pipe.transfer(len(data), tag=("write", name))
        end = offset + len(data)
        if end > len(blob):
            blob.extend(b"\x00" * (end - len(blob)))
        blob[offset:end] = data
        return len(data)
