"""Generic Interrupt Controller with the TrustZone security extension.

Each interrupt line is configured as Group 0 (secure, delivered to the
TEE) or Group 1 (non-secure, delivered to the REE).  Devices raise lines;
the GIC dispatches to whichever handler the owning world registered.
Reprogramming interrupt grouping is a secure-world-only operation — the
co-driver uses it to route NPU completion interrupts to the TEE while a
secure job runs (§4.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError, SecurityViolation
from .common import World

__all__ = ["GIC"]

Handler = Callable[[int, Any], None]


class GIC:
    """Interrupt controller: per-line secure/non-secure routing."""

    def __init__(self, config_time: float = 20e-6):
        self.config_time = config_time
        self._group: Dict[int, World] = {}
        self._handlers: Dict[Tuple[int, World], Handler] = {}
        self.config_ops = 0
        self.delivered: Dict[World, int] = {World.SECURE: 0, World.NONSECURE: 0}
        self.dropped = 0

    def register_line(self, irq: int, world: World = World.NONSECURE) -> None:
        if irq in self._group:
            raise ConfigurationError("irq %d already registered" % irq)
        self._group[irq] = world

    def set_group(self, world: World, irq: int, target: World) -> None:
        """Route ``irq`` to ``target`` world (secure world only)."""
        if not world.is_secure:
            raise SecurityViolation("GIC group programming from non-secure world")
        if irq not in self._group:
            raise ConfigurationError("unknown irq %d" % irq)
        self._group[irq] = target
        self.config_ops += 1

    def line_world(self, irq: int) -> World:
        try:
            return self._group[irq]
        except KeyError:
            raise ConfigurationError("unknown irq %d" % irq)

    def attach_handler(self, world: World, irq: int, handler: Handler) -> None:
        """A world installs its handler for ``irq``.

        Both worlds may have handlers installed simultaneously; delivery
        follows the line's *current* group, so flipping the group switches
        which handler fires.
        """
        if irq not in self._group:
            raise ConfigurationError("unknown irq %d" % irq)
        self._handlers[(irq, world)] = handler

    def detach_handler(self, world: World, irq: int) -> None:
        self._handlers.pop((irq, world), None)

    def raise_irq(self, irq: int, payload: Any = None) -> Optional[World]:
        """Device raises a line; dispatch per current grouping.

        Returns the world the interrupt was delivered to, or ``None`` if
        that world has no handler installed (counted in ``dropped``).
        """
        target = self.line_world(irq)
        handler = self._handlers.get((irq, target))
        if handler is None:
            self.dropped += 1
            return None
        self.delivered[target] += 1
        handler(irq, payload)
        return target
