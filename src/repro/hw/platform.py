"""Board assembly: one object wiring every hardware block together.

A :class:`Board` owns the simulator-facing hardware: TrustZone controllers
(TZASC/TZPC/GIC), the EL3 monitor, physical memory, flash, the NPU, and
the CPU clusters (modelled as priority resources — the LLM TA runs on the
big cluster, per the paper's deployment).
"""

from __future__ import annotations

from ..config import RK3588, PlatformSpec
from ..sim import Resource, Simulator
from .flash import Flash
from .gic import GIC
from .memory import PhysicalMemory
from .monitor import SecureMonitor
from .npu import NPU
from .tzasc import TZASC
from .tzpc import TZPC

__all__ = ["Board"]


class Board:
    """All hardware blocks of one device, wired to one simulator.

    ``name`` namespaces every named sub-resource ("dev0:big-cpus",
    "dev0:flash") so N boards can share one :class:`Simulator` without
    their queueing stats, profiler lanes, or tracer rows colliding — the
    fleet tier builds one board per device this way.
    """

    def __init__(self, sim: Simulator, spec: PlatformSpec = RK3588, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name
        prefix = name + ":" if name else ""
        tz = spec.trustzone
        self.tzasc = TZASC(tz.tzasc_regions, tz.tzasc_config_time)
        self.tzpc = TZPC(tz.tzpc_config_time)
        self.gic = GIC(tz.gic_config_time)
        self.monitor = SecureMonitor(sim, tz.smc_latency)
        self.memory = PhysicalMemory(spec.memory.total_bytes, self.tzasc)
        self.flash = Flash(sim, spec.flash, name=prefix + "flash")
        self.npu = NPU(sim, spec.npu, self.memory, self.tzpc, self.gic)
        #: big cluster: the LLM TA's compute + restoration CPU pool.
        self.big_cpus = Resource(
            sim, spec.cpu.big_cores, priority=True, name=prefix + "big-cpus"
        )
        #: little cluster: REE background applications (pinned apart, §7).
        self.little_cpus = Resource(
            sim, spec.cpu.little_cores, priority=True, name=prefix + "little-cpus"
        )

    @property
    def page_size(self) -> int:
        return self.spec.memory.page_size

    @property
    def total_memory(self) -> int:
        return self.spec.memory.total_bytes
