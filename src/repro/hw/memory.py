"""Physical memory: a sparse byte store with TrustZone filtering.

Every read/write names its bus master (CPU in a world, or a DMA device)
and is filtered through the TZASC before touching bytes.  This is what
makes the security tests *functional*: a compromised-REE attack is a
real ``cpu_read`` in the non-secure world, and it really raises
:class:`~repro.errors.AccessDenied` instead of returning parameter bytes.

Pages are materialized lazily (16 GiB of simulated RAM costs nothing
until written).  There is no timing here — callers charge simulated time
through their own cost models.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import PAGE_SIZE
from ..errors import ConfigurationError
from .common import AddrRange, World
from .tzasc import TZASC

__all__ = ["PhysicalMemory"]


class PhysicalMemory:
    """Sparse real-byte RAM; every access is TZASC-filtered."""

    def __init__(self, total_bytes: int, tzasc: Optional[TZASC] = None):
        if total_bytes <= 0 or total_bytes % PAGE_SIZE != 0:
            raise ConfigurationError("total_bytes must be a positive page multiple")
        self.total_bytes = total_bytes
        self.tzasc = tzasc if tzasc is not None else TZASC()
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # bounds + raw access
    # ------------------------------------------------------------------
    def _check_bounds(self, base: int, size: int) -> None:
        if base < 0 or size < 0 or base + size > self.total_bytes:
            raise ConfigurationError(
                "access [0x%x, 0x%x) outside RAM of %d bytes" % (base, base + size, self.total_bytes)
            )

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def _raw_read(self, base: int, size: int) -> bytes:
        self._check_bounds(base, size)
        out = bytearray(size)
        pos = 0
        addr = base
        while pos < size:
            page_index, offset = divmod(addr, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[pos : pos + chunk] = page[offset : offset + chunk]
            pos += chunk
            addr += chunk
        return bytes(out)

    def _raw_write(self, base: int, data: bytes) -> None:
        self._check_bounds(base, len(data))
        pos = 0
        addr = base
        size = len(data)
        while pos < size:
            page_index, offset = divmod(addr, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - offset)
            self._page(page_index)[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk
            addr += chunk

    # ------------------------------------------------------------------
    # filtered access
    # ------------------------------------------------------------------
    def cpu_read(self, base: int, size: int, world: World) -> bytes:
        """CPU load; TZASC-filtered against ``world``."""
        self.tzasc.check_cpu(AddrRange(base, size), world)
        return self._raw_read(base, size)

    def cpu_write(self, base: int, data: bytes, world: World) -> None:
        """CPU store; TZASC-filtered against ``world``."""
        self.tzasc.check_cpu(AddrRange(base, len(data)), world)
        self._raw_write(base, data)

    def dma_read(self, base: int, size: int, device: str) -> bytes:
        """Device DMA read; TZASC DMA-filtered for ``device``."""
        self.tzasc.check_dma(AddrRange(base, size), device)
        return self._raw_read(base, size)

    def dma_write(self, base: int, data: bytes, device: str) -> None:
        """Device DMA write; TZASC DMA-filtered for ``device``."""
        self.tzasc.check_dma(AddrRange(base, len(data)), device)
        self._raw_write(base, data)

    def scrub(self, base: int, size: int, world: World) -> None:
        """Zero a range (TEE OS clears sensitive data before release).

        Only materialized pages hold data, so only they need touching —
        scrubbing gigabytes of never-written simulated RAM is free.
        """
        self.tzasc.check_cpu(AddrRange(base, size), world)
        self._zero_raw(base, size)

    def _zero_raw(self, base: int, size: int) -> None:
        if size <= 0:
            return
        first_page, first_off = divmod(base, PAGE_SIZE)
        last_page = (base + size - 1) // PAGE_SIZE
        span_pages = last_page - first_page + 1
        if span_pages > len(self._pages):
            candidates = [p for p in self._pages if first_page <= p <= last_page]
        else:
            candidates = [p for p in range(first_page, last_page + 1) if p in self._pages]
        for page_index in candidates:
            page = self._pages[page_index]
            start = first_off if page_index == first_page else 0
            end = (base + size) - page_index * PAGE_SIZE
            end = min(PAGE_SIZE, end)
            page[start:end] = b"\x00" * (end - start)

    def copy_range(self, src: int, dst: int, size: int) -> None:
        """Raw copy that skips never-materialized (all-zero) source pages.

        Used by page migration: copying a mostly-untouched granule costs
        nothing, exactly like copying zero pages costs the real kernel a
        memset it would do anyway.
        """
        self._check_bounds(src, size)
        self._check_bounds(dst, size)
        # Clear stale destination content first: absent source pages are
        # logically zero, and the copy must not leak a prior occupant.
        self._zero_raw(dst, size)
        first_page = src // PAGE_SIZE
        last_page = (src + size - 1) // PAGE_SIZE if size else first_page - 1
        for page_index in range(first_page, last_page + 1):
            page = self._pages.get(page_index)
            if page is None:
                continue
            page_base = page_index * PAGE_SIZE
            start = max(src, page_base)
            end = min(src + size, page_base + PAGE_SIZE)
            data = bytes(page[start - page_base : end - page_base])
            self._raw_write(dst + (start - src), data)
