"""EL3 secure monitor: the SMC path between worlds.

Software switches CPU security state by issuing an ``smc``.  The monitor
dispatches to a registered handler (the TEE OS registers handlers for
calls arriving from the REE, and vice versa for delegations back).  Each
smc charges the world-switch latency; handlers may themselves be
generators and consume further simulated time.

The monitor is deliberately tiny (trusted, per the threat model): it
routes calls and counts them, nothing more.
"""

from __future__ import annotations

from inspect import isgenerator
from typing import Any, Callable, Dict

from ..errors import ConfigurationError
from ..sim import Simulator
from .common import World

__all__ = ["SecureMonitor"]


class SecureMonitor:
    """The EL3 monitor: routes SMCs between worlds, charges the switch."""

    def __init__(self, sim: Simulator, smc_latency: float = 8e-6):
        self.sim = sim
        self.smc_latency = smc_latency
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self.smc_count = 0
        self.smc_time = 0.0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None

    def register(self, func: str, handler: Callable[..., Any]) -> None:
        """Install the handler for SMC function id ``func``."""
        if func in self._handlers:
            raise ConfigurationError("smc handler %r already registered" % func)
        self._handlers[func] = handler

    def unregister(self, func: str) -> None:
        self._handlers.pop(func, None)

    def smc(self, caller_world: World, func: str, *args: Any, **kwargs: Any):
        """Issue an SMC; a generator to be yielded from a process.

        Usage inside a process::

            result = yield from monitor.smc(World.NONSECURE, "tz.invoke_ta", req)
        """
        handler = self._handlers.get(func)
        if handler is None:
            raise ConfigurationError("no smc handler for %r" % func)
        self.smc_count += 1
        self.smc_time += self.smc_latency
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("smc_calls_total", "SMCs routed by the EL3 monitor").inc(
                func=func
            )
        start = self.sim.now
        yield self.sim.timeout(self.smc_latency)
        result = handler(*args, **kwargs)
        if isgenerator(result):
            result = yield self.sim.process(result, name="smc:%s" % func)
        if metrics is not None:
            metrics.histogram(
                "smc_latency_seconds", "End-to-end SMC latency (switch + handler)"
            ).observe(self.sim.now - start, func=func)
        return result
