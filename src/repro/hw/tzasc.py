"""TrustZone Address Space Controller (TZC-400 style).

The TZASC protects up to ``spec.tzasc_regions`` *contiguous* physical
regions as secure memory.  It filters every memory transaction:

* CPU accesses from the non-secure world to a secure region are denied.
* Device DMA is denied to secure regions unless the secure world has
  explicitly granted that device access to that region (the mechanism the
  TEE NPU co-driver uses to let the NPU read job contexts, §4.3).

Regions are page-aligned and may only be reconfigured by the secure world
— the simulated hardware checks the caller's world on every programming
operation, exactly like real TZASC programming interfaces exposed only to
secure EL3/EL1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..config import PAGE_SIZE
from ..errors import AccessDenied, ConfigurationError, DMAViolation, SecurityViolation
from .common import AddrRange, World

__all__ = ["TZASCRegion", "TZASC"]


@dataclass
class TZASCRegion:
    """One programmed TZASC region."""

    slot: int
    range: AddrRange
    #: device names granted DMA access while the region is secure.
    allowed_devices: Set[str] = field(default_factory=set)

    @property
    def base(self) -> int:
        return self.range.base

    @property
    def size(self) -> int:
        return self.range.size

    @property
    def end(self) -> int:
        return self.range.end


class TZASC:
    """The region filter.  All addresses/sizes must be page-aligned."""

    def __init__(self, region_slots: int = 8, config_time: float = 20e-6):
        self.region_slots = region_slots
        self.config_time = config_time
        self._regions: Dict[int, TZASCRegion] = {}
        #: number of programming operations (for overhead accounting).
        self.config_ops = 0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None
        #: memory-timeline attach point (repro.obs.memory).
        self.timeline = None

    def _note_denial(self, path: str, detail: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "tzasc_denials_total", "Memory transactions denied by the TZASC"
            ).inc(path=path)
        if self.recorder is not None:
            self.recorder.record("security", "tzasc.%s" % path, detail)

    def _note_config(self, op: str, slot: int, old_size: int, new_size: int) -> None:
        """Emit one region-programming event — symmetric across
        configure, resize (grow *and* shrink) and disable, so observers
        never see phantom secure memory after a silent drain."""
        if self.metrics is not None:
            self.metrics.counter(
                "tzasc_region_config_total", "TZASC region programming operations"
            ).inc(op=op)
            self.metrics.gauge(
                "tzasc_region_bytes", "Configured bytes per TZASC region slot"
            ).set(float(new_size), slot=str(slot))
        if self.recorder is not None:
            self.recorder.record(
                "memory",
                "tzasc.%s" % op,
                "slot %d: %d -> %d bytes" % (slot, old_size, new_size),
            )
        if self.timeline is not None:
            self.timeline.note_region(op, slot, old_size, new_size)

    # ------------------------------------------------------------------
    # programming interface (secure world only)
    # ------------------------------------------------------------------
    def _require_secure(self, world: World) -> None:
        if not world.is_secure:
            raise SecurityViolation("TZASC programming from non-secure world")

    @staticmethod
    def _check_aligned(value: int, what: str) -> None:
        if value % PAGE_SIZE != 0:
            raise ConfigurationError("%s 0x%x is not page-aligned" % (what, value))

    def configure(self, world: World, slot: int, base: int, size: int) -> TZASCRegion:
        """Program ``slot`` to protect ``[base, base+size)`` as secure."""
        self._require_secure(world)
        if not 0 <= slot < self.region_slots:
            raise ConfigurationError("TZASC slot %d out of range" % slot)
        self._check_aligned(base, "region base")
        self._check_aligned(size, "region size")
        new_range = AddrRange(base, size)
        for other in self._regions.values():
            if other.slot != slot and other.range.overlaps(new_range) and size > 0:
                raise ConfigurationError(
                    "region slot %d overlaps slot %d" % (slot, other.slot)
                )
        region = self._regions.get(slot)
        if region is None:
            old_size = 0
            region = TZASCRegion(slot=slot, range=new_range)
            self._regions[slot] = region
        else:
            old_size = region.range.size
            region.range = new_range
        self.config_ops += 1
        self._note_config("configure", slot, old_size, size)
        return region

    def resize(self, world: World, slot: int, new_size: int) -> TZASCRegion:
        """Move the region's end (extend or shrink); base is fixed.

        This is the only reshaping the "extend and shrink" secure-memory
        interface needs (§4.2) and mirrors how the TZC-400's region end
        address register is reprogrammed.
        """
        self._require_secure(world)
        region = self._region_for_slot(slot)
        self._check_aligned(new_size, "region size")
        proposed = AddrRange(region.base, new_size)
        for other in self._regions.values():
            if other.slot != slot and other.range.overlaps(proposed) and new_size > 0:
                raise ConfigurationError(
                    "resize of slot %d would overlap slot %d" % (slot, other.slot)
                )
        old_size = region.range.size
        region.range = proposed
        self.config_ops += 1
        self._note_config("resize", slot, old_size, new_size)
        return region

    def disable(self, world: World, slot: int) -> None:
        self._require_secure(world)
        old_size = self._region_for_slot(slot).range.size
        del self._regions[slot]
        self.config_ops += 1
        self._note_config("disable", slot, old_size, 0)

    def allow_device(self, world: World, slot: int, device: str) -> None:
        """Grant ``device`` DMA access to a secure region."""
        self._require_secure(world)
        self._region_for_slot(slot).allowed_devices.add(device)
        self.config_ops += 1

    def revoke_device(self, world: World, slot: int, device: str) -> None:
        self._require_secure(world)
        self._region_for_slot(slot).allowed_devices.discard(device)
        self.config_ops += 1

    def _region_for_slot(self, slot: int) -> TZASCRegion:
        region = self._regions.get(slot)
        if region is None:
            raise ConfigurationError("TZASC slot %d is not configured" % slot)
        return region

    # ------------------------------------------------------------------
    # transaction filtering
    # ------------------------------------------------------------------
    def regions(self) -> List[TZASCRegion]:
        return sorted(self._regions.values(), key=lambda r: r.slot)

    def region(self, slot: int) -> Optional[TZASCRegion]:
        return self._regions.get(slot)

    def secure_ranges(self) -> List[AddrRange]:
        return [r.range for r in self._regions.values() if not r.range.empty]

    def is_secure(self, addr: int) -> bool:
        return any(r.range.contains(addr) for r in self._regions.values())

    def check_cpu(self, rng: AddrRange, world: World) -> None:
        """Filter a CPU load/store covering ``rng``."""
        if world.is_secure:
            return
        for region in self._regions.values():
            if region.range.overlaps(rng):
                detail = "non-secure CPU access to secure %r (slot %d)" % (
                    region.range,
                    region.slot,
                )
                self._note_denial("cpu", detail)
                raise AccessDenied(detail)

    def check_dma(self, rng: AddrRange, device: str) -> None:
        """Filter a device DMA transaction covering ``rng``."""
        for region in self._regions.values():
            if region.range.overlaps(rng):
                if device not in region.allowed_devices:
                    detail = "device %r DMA to secure %r (slot %d) denied" % (
                        device,
                        region.range,
                        region.slot,
                    )
                    self._note_denial("dma", detail)
                    raise DMAViolation(detail)
