"""Small statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..errors import ConfigurationError

__all__ = ["geomean", "mean", "percent_change", "speedup", "reduction"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input)."""
    values = list(values)
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (how the paper averages ratios)."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_change(new: float, old: float) -> float:
    """(new - old) / old, in percent.  Positive = ``new`` is larger."""
    if old == 0:
        raise ConfigurationError("percent change from zero")
    return (new - old) / old * 100.0


def speedup(old: float, new: float) -> float:
    """old/new: how many times faster ``new`` is."""
    if new == 0:
        raise ConfigurationError("speedup to zero time")
    return old / new


def reduction(old: float, new: float) -> float:
    """How much ``new`` shrank relative to ``old``, in percent."""
    if old == 0:
        raise ConfigurationError("reduction from zero")
    return (old - new) / old * 100.0
