"""Small statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import ConfigurationError

__all__ = [
    "LatencySummary",
    "geomean",
    "mean",
    "percent_change",
    "percentile",
    "speedup",
    "reduction",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input)."""
    values = list(values)
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (how the paper averages ratios)."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_change(new: float, old: float) -> float:
    """(new - old) / old, in percent.  Positive = ``new`` is larger."""
    if old == 0:
        raise ConfigurationError("percent change from zero")
    return (new - old) / old * 100.0


def speedup(old: float, new: float) -> float:
    """old/new: how many times faster ``new`` is."""
    if new == 0:
        raise ConfigurationError("speedup to zero time")
    return old / new


def reduction(old: float, new: float) -> float:
    """How much ``new`` shrank relative to ``old``, in percent."""
    if old == 0:
        raise ConfigurationError("reduction from zero")
    return (old - new) / old * 100.0


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (linear interpolation between ranks).

    ``p`` is in [0, 100]; p=50 is the median.  Errors on empty input so a
    silent 0.0 never masquerades as a measured latency.
    """
    if not 0.0 <= p <= 100.0:
        raise ConfigurationError("percentile must be in [0, 100], got %r" % (p,))
    ordered = sorted(values)
    if not ordered:
        raise ConfigurationError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class LatencySummary:
    """The tail-latency quartet every serving metric reports."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencySummary":
        values = list(values)
        if not values:
            raise ConfigurationError("LatencySummary of empty sequence")
        return cls(
            count=len(values),
            mean=mean(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )

    def row(self, fmt: str = "%.3f") -> List[str]:
        """[p50, p95, p99, max] formatted for a report table."""
        return [fmt % self.p50, fmt % self.p95, fmt % self.p99, fmt % self.max]
