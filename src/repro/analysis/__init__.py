"""Measurement and reporting helpers for the benchmark harness."""

from .critical_path import CriticalPathReport, LaneUsage, critical_path
from .loc import PAPER_LOC, count_package_loc
from .metrics import (
    LatencySummary,
    geomean,
    mean,
    percent_change,
    percentile,
    reduction,
    speedup,
)
from .tables import render_bars, render_table

__all__ = [
    "CriticalPathReport",
    "LaneUsage",
    "LatencySummary",
    "PAPER_LOC",
    "critical_path",
    "count_package_loc",
    "geomean",
    "mean",
    "percent_change",
    "percentile",
    "reduction",
    "render_bars",
    "render_table",
    "speedup",
]
