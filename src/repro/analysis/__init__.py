"""Measurement and reporting helpers for the benchmark harness."""

from .critical_path import CriticalPathReport, LaneUsage, critical_path
from .loc import PAPER_LOC, count_package_loc
from .regress import (
    Delta,
    RegressionReport,
    Tolerance,
    compare,
    flatten_metrics,
    load_summaries,
    render_markdown,
)
from .prefix_share import PrefixShareReport, TenantShareRow, analyze_prefix_sharing
from .metrics import (
    LatencySummary,
    geomean,
    mean,
    percent_change,
    percentile,
    reduction,
    speedup,
)
from .tables import render_bars, render_table

__all__ = [
    "CriticalPathReport",
    "Delta",
    "LaneUsage",
    "LatencySummary",
    "PAPER_LOC",
    "PrefixShareReport",
    "RegressionReport",
    "TenantShareRow",
    "Tolerance",
    "analyze_prefix_sharing",
    "compare",
    "critical_path",
    "count_package_loc",
    "flatten_metrics",
    "geomean",
    "load_summaries",
    "mean",
    "percent_change",
    "percentile",
    "reduction",
    "render_bars",
    "render_markdown",
    "render_table",
    "speedup",
]
