"""Measurement and reporting helpers for the benchmark harness."""

from .loc import PAPER_LOC, count_package_loc
from .metrics import geomean, mean, percent_change, reduction, speedup
from .tables import render_bars, render_table

__all__ = [
    "PAPER_LOC",
    "count_package_loc",
    "geomean",
    "mean",
    "percent_change",
    "reduction",
    "render_bars",
    "render_table",
    "speedup",
]
