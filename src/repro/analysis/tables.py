"""Plain-text rendering for benchmark output: tables and bar series.

The benches print the same rows/series the paper's figures plot; these
helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "render_bars"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bars (one figure series)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    top = max(values) if values else 1.0
    top = top if top > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / top * width))) if value > 0 else ""
        lines.append("%s | %s %.4g%s" % (label.ljust(label_w), bar.ljust(width), value, unit))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.4g" % cell
    return str(cell)
