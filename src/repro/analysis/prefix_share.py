"""Offline prefix-sharing opportunity analyzer (ROADMAP: KV reuse).

The ROADMAP's top item asks whether shared-prefix KV reuse is worth
building *inside the TEE* — cross-request reuse of the system-prompt KV
with the per-tenant isolation argument that entails.  Before anyone
writes that mechanism, this analyzer measures the opportunity: it
replays a multi-tenant fleet trace (:func:`~repro.workloads.fleet
.generate_fleet_trace`) through an idealized block-granular KV cache
and reports what a sharing-aware TA *could* have skipped.

The replay hashes each request's prompt into block keys the way a
paged KV cache would:

* the shared prefix hashes by *content* — ``(prefix_id, block_index)``
  — so any request carrying the same system prompt hits blocks a
  previous request (any session, same tenant) already prefilled;
* conversation context and new tokens hash by *stream* —
  ``(session_id, block_index)`` — they are session-private, so only a
  later turn of the same session can reuse them.

A bounded LRU over ``cache_blocks`` blocks models the secure region's
capacity; an unbounded pass (``cache_blocks=None``) gives the
no-capacity-limit upper bound.  Savings are priced with the same
analytic prefill model the fleet surrogate uses, so "saved prefill
seconds" and the projected TTFT deltas are directly comparable to
simulated fleet timings.

Deliberately *not* modeled: cross-tenant sharing.  Prefix ids are
minted per tenant upstream, so a hit never crosses a tenant boundary —
matching the paper's isolation stance (§3.1: per-model, per-tenant
protection domains).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .metrics import mean, percentile
from .tables import render_table

__all__ = ["PrefixShareReport", "TenantShareRow", "analyze_prefix_sharing"]


def _prefill_seconds(platform, model, tokens: int, use_npu: bool) -> float:
    """The fleet surrogate's analytic prefill time (kept in lockstep
    with :meth:`~repro.fleet.surrogate.SurrogateLLM.prefill_time`)."""
    if tokens <= 0:
        return 0.0
    flops = model.prefill_flops(tokens)
    if use_npu:
        cpu_frac = platform.timing.cpu_resident_prefill_fraction
        npu_part = flops * (1.0 - cpu_frac) / (platform.npu.effective_gflops * 1e9)
        cpu_part = flops * cpu_frac / (platform.cpu.effective_gflops * 1e9)
        return platform.npu.job_launch_latency + npu_part + cpu_part
    return flops / (platform.cpu.effective_gflops * 1e9)


@dataclass
class TenantShareRow:
    """Per-tenant accumulator of the replay."""

    tenant: str
    requests: int = 0
    prompt_tokens: int = 0
    hit_tokens: int = 0
    prefix_hit_tokens: int = 0
    session_hit_tokens: int = 0
    saved_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hit_tokens / self.prompt_tokens if self.prompt_tokens else 0.0

    def to_dict(self) -> Dict:
        return {
            "requests": self.requests,
            "prompt_tokens": self.prompt_tokens,
            "hit_tokens": self.hit_tokens,
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "session_hit_tokens": self.session_hit_tokens,
            "hit_rate": round(self.hit_rate, 6),
            "saved_prefill_seconds": round(self.saved_seconds, 9),
        }


@dataclass
class PrefixShareReport:
    """What block-granular KV sharing would have saved on a trace."""

    block_tokens: int
    cache_blocks: Optional[int]
    requests: int
    prompt_tokens: int
    hit_tokens: int
    prefix_hit_tokens: int
    session_hit_tokens: int
    saved_prefill_seconds: float
    baseline_prefill_seconds: float
    evictions: int
    #: per-request projected TTFT improvement (the saved prefill time),
    #: in trace order — feed to percentile() for the tail view.
    ttft_deltas: List[float] = field(default_factory=list)
    tenants: Dict[str, TenantShareRow] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of offered prompt tokens already cached."""
        return self.hit_tokens / self.prompt_tokens if self.prompt_tokens else 0.0

    @property
    def saved_fraction(self) -> float:
        """Fraction of baseline prefill time sharing would remove."""
        if self.baseline_prefill_seconds <= 0:
            return 0.0
        return self.saved_prefill_seconds / self.baseline_prefill_seconds

    def ttft_delta(self, p: float) -> float:
        """Projected TTFT improvement at percentile ``p`` (seconds)."""
        return percentile(self.ttft_deltas, p) if self.ttft_deltas else 0.0

    def to_dict(self) -> Dict:
        return {
            "schema": "repro.analysis.prefix_share/1",
            "block_tokens": self.block_tokens,
            "cache_blocks": self.cache_blocks,
            "requests": self.requests,
            "prompt_tokens": self.prompt_tokens,
            "hit_tokens": self.hit_tokens,
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "session_hit_tokens": self.session_hit_tokens,
            "hit_rate": round(self.hit_rate, 6),
            "saved_prefill_seconds": round(self.saved_prefill_seconds, 9),
            "baseline_prefill_seconds": round(self.baseline_prefill_seconds, 9),
            "saved_fraction": round(self.saved_fraction, 6),
            "evictions": self.evictions,
            "ttft_delta_mean": round(mean(self.ttft_deltas), 9) if self.ttft_deltas else 0.0,
            "ttft_delta_p50": round(self.ttft_delta(50), 9),
            "ttft_delta_p95": round(self.ttft_delta(95), 9),
            "tenants": {t: row.to_dict() for t, row in sorted(self.tenants.items())},
        }

    def render(self) -> str:
        rows = []
        for tenant in sorted(self.tenants):
            row = self.tenants[tenant]
            rows.append([
                tenant,
                row.requests,
                row.prompt_tokens,
                "%.1f%%" % (100 * row.hit_rate),
                row.prefix_hit_tokens,
                row.session_hit_tokens,
                "%.2f" % row.saved_seconds,
            ])
        rows.append([
            "TOTAL",
            self.requests,
            self.prompt_tokens,
            "%.1f%%" % (100 * self.hit_rate),
            self.prefix_hit_tokens,
            self.session_hit_tokens,
            "%.2f" % self.saved_prefill_seconds,
        ])
        title = (
            "prefix-sharing opportunity (block=%d tok, cache=%s blocks): "
            "%.1f%% of prefill time avoidable, TTFT -%.3fs p50 / -%.3fs p95"
            % (
                self.block_tokens,
                "inf" if self.cache_blocks is None else str(self.cache_blocks),
                100 * self.saved_fraction,
                self.ttft_delta(50),
                self.ttft_delta(95),
            )
        )
        return render_table(
            ["tenant", "reqs", "prompt tok", "hit%", "prefix hits",
             "session hits", "saved s"],
            rows, title=title,
        )


def analyze_prefix_sharing(
    trace,
    models,
    platform,
    block_tokens: int = 16,
    cache_blocks: Optional[int] = 8192,
    use_npu: bool = True,
) -> PrefixShareReport:
    """Replay ``trace`` through an idealized shared block cache.

    ``trace`` is a sequence of :class:`~repro.workloads.fleet
    .FleetRequest` (or anything with the same fields); ``models`` a
    :class:`~repro.llm.models.ModelSpec` list covering the trace's
    ``model_id``\\ s; ``platform`` the :class:`~repro.config
    .PlatformSpec` used to price saved prefill work.  ``cache_blocks``
    bounds the cache (LRU eviction); ``None`` removes the bound.
    """
    by_model = {m.model_id: m for m in models}
    # key -> True, ordered by recency.  Keys are tuples, never strings,
    # so prefix- and session-stream blocks cannot collide.
    cache: "OrderedDict[Tuple, bool]" = OrderedDict()
    report = PrefixShareReport(
        block_tokens=block_tokens,
        cache_blocks=cache_blocks,
        requests=0,
        prompt_tokens=0,
        hit_tokens=0,
        prefix_hit_tokens=0,
        session_hit_tokens=0,
        saved_prefill_seconds=0.0,
        baseline_prefill_seconds=0.0,
        evictions=0,
    )

    def touch(key) -> bool:
        """Look up one block; insert on miss; LRU-evict past the bound."""
        if key in cache:
            cache.move_to_end(key)
            return True
        cache[key] = True
        if cache_blocks is not None and len(cache) > cache_blocks:
            cache.popitem(last=False)
            report.evictions += 1
        return False

    for request in trace:
        model = by_model[request.model_id]
        prompt = request.prompt_tokens
        row = report.tenants.get(request.tenant)
        if row is None:
            row = report.tenants[request.tenant] = TenantShareRow(request.tenant)

        # Shared prefix: content-addressed, whole blocks only (a partial
        # tail block cannot be reused — its KV depends on what follows).
        prefix_hits = 0
        prefix_blocks = request.prefix_tokens // block_tokens
        if request.prefix_id:
            for i in range(prefix_blocks):
                if touch(("p", request.model_id, request.prefix_id, i)):
                    prefix_hits += 1

        # Session stream: the replayed context (and this turn's tokens,
        # once prefilled) keyed by position within the session's stream.
        # Turn N+1 replays turn N's prompt+reply, so those stream blocks
        # come back as hits — exactly the KV a session-sticky router
        # keeps resident.
        session_hits = 0
        stream_tokens = request.context_tokens + request.new_tokens
        stream_blocks = stream_tokens // block_tokens
        covered = 0
        for i in range(stream_blocks):
            if touch(("s", request.session_id, i)):
                # Context replays from the stream head; only hits inside
                # the replayed span save prefill work this turn.
                if covered < request.context_tokens:
                    session_hits += 1
                covered += block_tokens
            else:
                covered += block_tokens

        hit_tokens = min(prompt, (prefix_hits + session_hits) * block_tokens)
        full = _prefill_seconds(platform, model, prompt, use_npu)
        residual = _prefill_seconds(platform, model, prompt - hit_tokens, use_npu)
        saved = max(0.0, full - residual)

        report.requests += 1
        report.prompt_tokens += prompt
        report.hit_tokens += hit_tokens
        report.prefix_hit_tokens += prefix_hits * block_tokens
        report.session_hit_tokens += session_hits * block_tokens
        report.baseline_prefill_seconds += full
        report.saved_prefill_seconds += saved
        report.ttft_deltas.append(saved)

        row.requests += 1
        row.prompt_tokens += prompt
        row.hit_tokens += hit_tokens
        row.prefix_hit_tokens += prefix_hits * block_tokens
        row.session_hit_tokens += session_hits * block_tokens
        row.saved_seconds += saved

    return report
