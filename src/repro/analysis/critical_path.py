"""Critical-path analysis over a trace: where did the time actually go?

The paper's Fig. 12 argues pipelined restoration by decomposing TTFT into
per-stage busy time; this module generalizes that decomposition to any
:class:`~repro.sim.Tracer` capture.  For every lane it merges the
recorded spans into disjoint busy intervals, so overlapping work is not
double-counted, and reports the *bubbles* — the part of the trace window
where the lane sat idle.  The lane with the least idle time is the
critical resource: speeding anything else up cannot move TTFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigurationError

__all__ = ["CriticalPathReport", "LaneUsage", "critical_path"]


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals, sorted."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class LaneUsage:
    """One lane's share of the trace window."""

    lane: str
    busy: float
    bubbles: float
    spans: int

    @property
    def utilization(self) -> float:
        window = self.busy + self.bubbles
        return self.busy / window if window > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "lane": self.lane,
            "busy": self.busy,
            "bubbles": self.bubbles,
            "spans": self.spans,
            "utilization": self.utilization,
        }


@dataclass(frozen=True)
class CriticalPathReport:
    """Per-category and per-lane busy-time decomposition of a trace."""

    window_start: float
    window_end: float
    #: summed span durations per category (overlap *is* counted here —
    #: this answers "how much work of each kind", not "how much wall").
    category_busy: Dict[str, float] = field(default_factory=dict)
    #: merged-interval busy time and idle bubbles per lane.
    lanes: List[LaneUsage] = field(default_factory=list)

    @property
    def window(self) -> float:
        return self.window_end - self.window_start

    @property
    def critical_lane(self) -> str:
        """The lane with the most merged busy time (ties: first by name)."""
        if not self.lanes:
            raise ConfigurationError("empty report has no critical lane")
        return max(self.lanes, key=lambda u: (u.busy, u.lane)).lane

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "window": self.window,
            "category_busy": dict(sorted(self.category_busy.items())),
            "lanes": [u.to_dict() for u in self.lanes],
            "critical_lane": self.critical_lane if self.lanes else None,
        }

    def render(self) -> str:
        lines = [
            "critical path: window %.6f s (%.6f .. %.6f)"
            % (self.window, self.window_start, self.window_end)
        ]
        for cat in sorted(self.category_busy):
            lines.append("  category %-12s busy %.6f s" % (cat, self.category_busy[cat]))
        for usage in self.lanes:
            lines.append(
                "  lane %-12s busy %.6f s  bubbles %.6f s  (%.1f%% utilized, %d spans)"
                % (usage.lane, usage.busy, usage.bubbles, usage.utilization * 100.0, usage.spans)
            )
        if self.lanes:
            lines.append("  critical lane: %s" % self.critical_lane)
        return "\n".join(lines)


def critical_path(tracer) -> CriticalPathReport:
    """Decompose a tracer's spans into per-category and per-lane busy time.

    Accepts anything with a ``spans`` sequence of
    :class:`~repro.sim.Span`-shaped records (so :class:`NullTracer`
    yields an empty report rather than an error).
    """
    spans = list(getattr(tracer, "spans", ()))
    if not spans:
        return CriticalPathReport(window_start=0.0, window_end=0.0)
    window_start = min(s.start for s in spans)
    window_end = max(s.end for s in spans)
    category_busy: Dict[str, float] = {}
    by_lane: Dict[str, List[Tuple[float, float]]] = {}
    span_counts: Dict[str, int] = {}
    for span in spans:
        category_busy[span.category] = category_busy.get(span.category, 0.0) + span.duration
        by_lane.setdefault(span.lane, []).append((span.start, span.end))
        span_counts[span.lane] = span_counts.get(span.lane, 0) + 1
    lanes = []
    for lane in sorted(by_lane):
        merged = _merge_intervals(by_lane[lane])
        busy = sum(end - start for start, end in merged)
        window = window_end - window_start
        lanes.append(
            LaneUsage(
                lane=lane,
                busy=busy,
                bubbles=max(0.0, window - busy),
                spans=span_counts[lane],
            )
        )
    return CriticalPathReport(
        window_start=window_start,
        window_end=window_end,
        category_busy=category_busy,
        lanes=lanes,
    )
