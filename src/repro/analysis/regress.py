"""Perf-regression gate: diff fresh bench summaries against baselines.

The benchmarks emit machine-readable summaries
(``bench_results/BENCH_<name>.json`` via
``benchmarks._common.emit_summary``); golden copies live in
``benchmarks/baselines/``.  This module flattens both sides to dotted
metric paths, compares every numeric leaf inside a tolerance band, and
renders a markdown delta table.  CI runs::

    python -m repro.analysis.regress --check

which exits non-zero when any metric drifts outside tolerance or a
baselined benchmark produced no fresh summary — the perf gate.
``--update`` promotes the fresh results to become the new baselines
(the reviewed way to accept an intentional perf change).

Volatile keys (wall time, git revision, timestamps) are ignored: the
gate compares *simulated* results, which are deterministic, so the
default tolerance is tight.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import shutil
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Tolerance",
    "Delta",
    "RegressionReport",
    "flatten_metrics",
    "load_summaries",
    "compare",
    "render_markdown",
    "main",
]

#: top-level summary keys that vary run-to-run and never gate.
VOLATILE_KEYS = frozenset({"wall_time_s", "git_rev", "generated_at"})

#: default tolerance: simulated metrics are deterministic, so the band
#: exists only to absorb float formatting — but allow a little slack for
#: metrics that legitimately wiggle with environment (e.g. LOC counts
#: change every PR; callers widen those with patterns).
DEFAULT_RTOL = 0.05
DEFAULT_ATOL = 1e-9


@dataclass(frozen=True)
class Tolerance:
    """Tolerance band for metric paths matching a glob pattern."""

    pattern: str
    rtol: float = DEFAULT_RTOL
    atol: float = DEFAULT_ATOL


@dataclass(frozen=True)
class Delta:
    """One compared metric leaf."""

    bench: str
    path: str
    baseline: Optional[float]
    fresh: Optional[float]
    status: str  # "ok" | "drift" | "missing_fresh" | "new"

    @property
    def change(self) -> Optional[float]:
        if self.baseline is None or self.fresh is None or self.baseline == 0:
            return None
        return (self.fresh - self.baseline) / abs(self.baseline)


@dataclass
class RegressionReport:
    deltas: List[Delta]
    missing_benches: List[str]

    @property
    def drifted(self) -> List[Delta]:
        return [d for d in self.deltas if d.status in ("drift", "missing_fresh")]

    @property
    def passed(self) -> bool:
        return not self.drifted and not self.missing_benches


def flatten_metrics(value, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts/lists to ``a.b.0.c -> number`` leaves.

    Non-numeric leaves (strings, None) are skipped — they carry labels,
    not measurements.  Bools count as numbers (shape assertions).
    """
    out: Dict[str, float] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            out.update(flatten_metrics(value[key], path))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            path = "%s.%d" % (prefix, i) if prefix else str(i)
            out.update(flatten_metrics(item, path))
    elif isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    return out


def load_summaries(directory: str) -> Dict[str, Dict[str, float]]:
    """Load every ``BENCH_*.json`` in ``directory`` as flat metrics."""
    out: Dict[str, Dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        name = payload.get("name") or os.path.basename(path)[len("BENCH_"):-len(".json")]
        metrics = {k: v for k, v in payload.get("metrics", {}).items() if k not in VOLATILE_KEYS}
        out[name] = flatten_metrics(metrics)
    return out


def _tolerance_for(path: str, tolerances: Tuple[Tolerance, ...]) -> Tuple[float, float]:
    for tol in tolerances:
        if fnmatch.fnmatch(path, tol.pattern):
            return tol.rtol, tol.atol
    return DEFAULT_RTOL, DEFAULT_ATOL


def compare(
    baselines: Dict[str, Dict[str, float]],
    fresh: Dict[str, Dict[str, float]],
    tolerances: Tuple[Tolerance, ...] = (),
) -> RegressionReport:
    """Diff fresh summaries against baselines, leaf by leaf."""
    deltas: List[Delta] = []
    missing_benches = sorted(set(baselines) - set(fresh))
    for bench in sorted(set(baselines) & set(fresh)):
        base_metrics = baselines[bench]
        fresh_metrics = fresh[bench]
        for path in sorted(set(base_metrics) | set(fresh_metrics)):
            full = "%s.%s" % (bench, path)
            base_v = base_metrics.get(path)
            fresh_v = fresh_metrics.get(path)
            if base_v is None:
                deltas.append(Delta(bench, path, None, fresh_v, "new"))
                continue
            if fresh_v is None:
                deltas.append(Delta(bench, path, base_v, None, "missing_fresh"))
                continue
            rtol, atol = _tolerance_for(full, tolerances)
            ok = abs(fresh_v - base_v) <= atol + rtol * abs(base_v)
            deltas.append(Delta(bench, path, base_v, fresh_v, "ok" if ok else "drift"))
    # Benches present fresh but not baselined are informational only.
    for bench in sorted(set(fresh) - set(baselines)):
        for path in sorted(fresh[bench]):
            deltas.append(Delta(bench, path, None, fresh[bench][path], "new"))
    return RegressionReport(deltas, missing_benches)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return "%.6g" % value


def render_markdown(report: RegressionReport, verbose: bool = False) -> str:
    """Markdown delta table: drifted rows always, ok rows when verbose."""
    lines = ["# Perf regression report", ""]
    shown = [
        d
        for d in report.deltas
        if verbose or d.status in ("drift", "missing_fresh")
    ]
    counts: Dict[str, int] = {}
    for d in report.deltas:
        counts[d.status] = counts.get(d.status, 0) + 1
    summary = ", ".join("%d %s" % (counts[k], k) for k in sorted(counts))
    lines.append(
        "**%s** — %s" % ("PASS" if report.passed else "FAIL", summary or "no metrics")
    )
    lines.append("")
    if report.missing_benches:
        lines.append(
            "Missing fresh summaries for: %s" % ", ".join(report.missing_benches)
        )
        lines.append("")
    if shown:
        lines.append("| bench | metric | baseline | fresh | Δ | status |")
        lines.append("|---|---|---:|---:|---:|---|")
        for d in shown:
            change = d.change
            lines.append(
                "| %s | %s | %s | %s | %s | %s |"
                % (
                    d.bench,
                    d.path,
                    _fmt(d.baseline),
                    _fmt(d.fresh),
                    "—" if change is None else "%+.2f%%" % (change * 100.0),
                    d.status,
                )
            )
    else:
        lines.append("No drift.")
    return "\n".join(lines) + "\n"


def _repo_root() -> str:
    return os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "..")
    )


def update_baselines(fresh_dir: str, baseline_dir: str) -> List[str]:
    """Promote fresh ``BENCH_*.json`` files to the baseline directory."""
    os.makedirs(baseline_dir, exist_ok=True)
    copied = []
    for path in sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json"))):
        dest = os.path.join(baseline_dir, os.path.basename(path))
        shutil.copyfile(path, dest)
        copied.append(dest)
    return copied


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.regress",
        description="Diff fresh benchmark summaries against committed baselines.",
    )
    parser.add_argument(
        "--fresh",
        default=os.path.join(_repo_root(), "bench_results"),
        help="directory of fresh BENCH_*.json summaries (default: bench_results/)",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(_repo_root(), "benchmarks", "baselines"),
        help="directory of committed baselines (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--check", action="store_true", help="exit 1 on drift or missing summaries"
    )
    parser.add_argument(
        "--update", action="store_true", help="promote fresh summaries to baselines"
    )
    parser.add_argument("--markdown", help="also write the report to this path")
    parser.add_argument(
        "--verbose", action="store_true", help="include non-drifted rows in the table"
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="PATTERN=RTOL",
        help="per-metric-path relative tolerance, e.g. 'tab_loc.*=0.5' (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.update:
        copied = update_baselines(args.fresh, args.baselines)
        for path in copied:
            print("baseline updated: %s" % os.path.relpath(path, _repo_root()))
        if not copied:
            print("no fresh summaries found in %s" % args.fresh, file=sys.stderr)
            return 1
        return 0

    tolerances = []
    for spec in args.tolerance:
        pattern, _, rtol = spec.partition("=")
        tolerances.append(Tolerance(pattern, rtol=float(rtol or DEFAULT_RTOL)))
    # Built-in widening: LOC counts move with every PR by design.
    tolerances.append(Tolerance("tab_loc.*", rtol=0.6))
    # Batch occupancy shifts with admission timing (a scheduling detail,
    # not a perf claim); the throughput keys stay at the default rtol.
    tolerances.append(Tolerance("continuous_batching.*occupancy*", rtol=0.10))
    tolerances.append(Tolerance("continuous_batching.*kv_extends", rtol=0.10))
    tolerances.append(Tolerance("continuous_batching.*steps", rtol=0.10))
    # Host wall time is CI-machine noise, not a simulated result: gate it
    # only against order-of-magnitude blowups.
    tolerances.append(Tolerance("fleet_router.wall_s", rtol=3.0))
    tolerances.append(Tolerance("fleet_failover.wall_s", rtol=3.0))
    tolerances.append(Tolerance("fleet_telemetry.wall_*", rtol=3.0))
    # Overhead is a ratio of two wall times — doubly noisy; the bench
    # itself asserts the <=5% bound, the gate only flags blowups.
    tolerances.append(Tolerance("fleet_telemetry.overhead_frac", rtol=3.0, atol=0.05))
    tolerances.append(
        Tolerance("fleet_telemetry.pipeline_host_frac", rtol=3.0, atol=0.01)
    )
    tolerances.append(Tolerance("kv_memview.wall_*", rtol=3.0))
    tolerances.append(Tolerance("kv_memview.overhead_frac", rtol=3.0, atol=0.05))
    tolerances.append(Tolerance("kv_memview.view_host_frac", rtol=3.0, atol=0.01))
    # Host wall time again (the simulated TTFT/hit-rate keys stay at the
    # default rtol: they are deterministic results, not machine noise).
    tolerances.append(Tolerance("prefix_reuse.wall_*", rtol=3.0))
    tolerances.append(Tolerance("prefix_reuse.saved_wall_s", rtol=0.10))

    baselines = load_summaries(args.baselines)
    fresh = load_summaries(args.fresh)
    if not baselines:
        print("no baselines found in %s" % args.baselines, file=sys.stderr)
        return 1 if args.check else 0
    report = compare(baselines, fresh, tuple(tolerances))
    text = render_markdown(report, verbose=args.verbose)
    print(text, end="")
    if args.markdown:
        parent = os.path.dirname(os.path.abspath(args.markdown))
        os.makedirs(parent, exist_ok=True)
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(text)
    if args.check and not report.passed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
