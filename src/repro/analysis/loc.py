"""Code-size inventory (the §5 implementation-size discussion).

The paper argues the co-driver and extend-and-shrink designs keep the
*additional TEE TCB* tiny: +112 LoC in the TEE OS, ~1 kLoC for the TEE
NPU data-plane driver, versus the ~60 kLoC full Rockchip driver stack it
avoids importing.  This module measures the reproduction's own packages
so the same argument can be made about this codebase (bench_tab_loc).
"""

from __future__ import annotations

import os
from typing import Dict

import repro

__all__ = ["PAPER_LOC", "count_package_loc"]

#: §5's reported line counts for the prototype.
PAPER_LOC = {
    "TEE OS base": 17_000,
    "TEE OS additions (CMA mapping + TZASC/TZPC config)": 112,
    "llama.cpp additions (pipelined restoration)": 1_200,
    "llama.cpp additions (TEE NPU data plane)": 1_000,
    "Linux kernel additions (NPU shadow scheduling)": 167,
    "Linux kernel additions (TZ driver CMA)": 197,
    "Rockchip NPU driver stack avoided": 60_000,
}


def count_package_loc(subpackage: str = "") -> Dict[str, int]:
    """Count non-blank, non-comment source lines per module.

    ``subpackage`` like ``"tee"`` restricts to one package; empty counts
    everything under :mod:`repro`.
    """
    root = os.path.dirname(repro.__file__)
    base = os.path.join(root, subpackage) if subpackage else root
    counts: Dict[str, int] = {}
    for dirpath, _dirnames, filenames in os.walk(base):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            counts[rel] = _count_file(path)
    return counts


def _count_file(path: str) -> int:
    count = 0
    in_docstring = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if in_docstring:
                if '"""' in stripped:
                    in_docstring = False
                continue
            if stripped.startswith('"""') or stripped.startswith('r"""'):
                if stripped.count('"""') < 2:
                    in_docstring = True
                continue
            if not stripped or stripped.startswith("#"):
                continue
            count += 1
    return count
