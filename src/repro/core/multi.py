"""Multiple protected models on one device.

A real deployment hosts several models (assistant, summarizer, vision-
language) behind separate TAs on one TrustZone platform.  Each model
costs two TZASC regions (§4.2), and the TZC-400 has eight — so at most
four models can be resident, a hardware constraint this module surfaces
as a clean error rather than an obscure failure.

Every TA gets its own address space and its own wrapped model key, so
cross-model isolation inherits all the §6 guarantees (tested).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..config import GiB, MiB, PlatformSpec, RK3588
from ..crypto import derive_key
from ..errors import ConfigurationError
from ..llm.gguf import pack_model, parse_container
from ..llm.models import ModelSpec
from ..stack import build_stack
from .caching import FractionCachePolicy
from .llm_ta import InferenceRecord, LLMTA
from .pipeline import PipelineConfig
from .system import DEFAULT_OS_FOOTPRINT, provision_model

__all__ = ["TZLLMMulti"]


class TZLLMMulti:
    """One platform, several protected models (one LLM TA each)."""

    def __init__(
        self,
        models: List[ModelSpec],
        platform: PlatformSpec = RK3588,
        granule: int = 1 * MiB,
        max_tokens: int = 1024,
        os_footprint: int = DEFAULT_OS_FOOTPRINT,
        cache_fraction: float = 0.0,
        use_npu: Union[bool, str] = True,
        decode_use_npu: Union[bool, str] = "auto",
        pipeline_config: Optional[PipelineConfig] = None,
        recovery=None,
        batch_config=None,
        trace: bool = False,
        sim=None,
        device_name: str = "",
        device_seed=None,
    ):
        self.device_name = device_name
        if not models:
            raise ConfigurationError("need at least one model")
        ids = [m.model_id for m in models]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate model ids")
        slots_needed = 2 * len(models)
        slots_available = platform.trustzone.tzasc_regions
        if slots_needed > slots_available:
            raise ConfigurationError(
                "%d models need %d TZASC regions; the hardware has %d"
                % (len(models), slots_needed, slots_available)
            )
        self.models = {m.model_id: m for m in models}
        cma_regions: Dict[str, int] = {}
        containers = {}
        for model in models:
            probe = parse_container(
                pack_model(
                    model,
                    derive_key(b"probe", model.model_id),
                    derive_key(b"probe", "hw"),
                )
            )
            params, data = LLMTA.cma_requirements(
                model, probe, granule, max_tokens, batch_config=batch_config
            )
            cma_regions["%s:params" % model.model_id] = params
            cma_regions["%s:data" % model.model_id] = data
        total_cma = sum(cma_regions.values())
        if total_cma + os_footprint > platform.memory.total_bytes:
            raise ConfigurationError(
                "models need %.1f GB of CMA; the board has %.1f GB"
                % (total_cma / 1e9, platform.memory.total_bytes / 1e9)
            )
        self.stack = build_stack(
            spec=platform,
            granule=granule,
            os_footprint=os_footprint,
            cma_regions=cma_regions,
            sim=sim,
            name=device_name,
            device_seed=device_seed,
        )
        self.tas: Dict[str, LLMTA] = {}
        for model in models:
            container = provision_model(self.stack, model)
            self.stack.tee_os.grant_model_access(
                model.model_id, "llm-ta:" + model.model_id
            )
            ta = LLMTA(
                self.stack,
                model,
                container,
                max_tokens=max_tokens,
                use_npu=use_npu,
                decode_use_npu=decode_use_npu,
                pipeline_config=pipeline_config,
                cache_policy=FractionCachePolicy(cache_fraction),
                recovery=recovery,
                batch_config=batch_config,
            )
            ta.setup()
            self.tas[model.model_id] = ta
        # One NPU co-driver serves every TA: its TZASC grants are the
        # union of all job-context regions (each TA re-points the list in
        # setup(); restore the union here).
        self.stack.tee_npu.allowed_slots = [
            slot
            for ta in self.tas.values()
            for slot in (ta.params_region.tzasc_slot, ta.data_region.tzasc_slot)
        ]
        # One shared tracer covers every TA (pipeline spans on the model's
        # lanes, serving spans on the gateway lane).
        self.tracer = None
        if trace:
            from ..sim.trace import Tracer

            self.tracer = Tracer(self.stack.sim)
            for ta in self.tas.values():
                ta.tracer = self.tracer

    @property
    def sim(self):
        return self.stack.sim

    def ta(self, model_id: str) -> LLMTA:
        try:
            return self.tas[model_id]
        except KeyError:
            raise ConfigurationError("no TA for model %r" % model_id)

    def infer(
        self,
        model_id: str,
        prompt_tokens: int,
        output_tokens: int = 0,
        preempt=None,
        ctx=None,
        prompt=None,
    ):
        """Generator: serve a request on the named model's TA.

        ``ctx`` is an optional :class:`~repro.obs.TraceContext` for
        cross-world flow tracing; ``prompt`` an optional
        :class:`~repro.llm.PromptSpec` for the prefix-sharing path.
        """
        record = yield from self.ta(model_id).infer(
            prompt_tokens, output_tokens, preempt=preempt, ctx=ctx, prompt=prompt
        )
        return record

    def run_infer(self, model_id: str, prompt_tokens: int, output_tokens: int = 0) -> InferenceRecord:
        proc = self.sim.process(self.infer(model_id, prompt_tokens, output_tokens))
        return self.sim.run_until(proc)
