"""Restoration backends: where alloc/load/decrypt actually happen.

The pipeline executor (:mod:`repro.core.pipeline`) is backend-agnostic;
the two implementations correspond to the systems the paper evaluates:

* :class:`TEERestoreBackend` — TZ-LLM proper: CMA ballooning through the
  extend-and-shrink interface, delegated aio into unprotected memory,
  TZASC protection, real ciphertext checksum verification and decryption.
* :class:`REERestoreBackend` — the REE-LLM-Flash baseline: buddy (4 KiB)
  allocation, plain loads, no protection, no decryption.

Allocation and decryption are *CPU work* — the pipeline's CPU worker
calls these generators while it holds the (modelled) big cluster, so they
compete with computation exactly as in Fig. 5.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import PlatformSpec
from ..crypto import decrypt, verify
from ..errors import IagoViolation
from ..llm.gguf import ModelContainer
from ..llm.tensors import TensorMeta
from ..ree.kernel import REEKernel
from ..ree.pages import Allocation
from ..ree.tz_driver import TZDriver
from ..sim import Simulator
from ..tee.secure_memory import SecureRegion
from .restore_graph import RestoreGroup

__all__ = ["RestoreBackend", "TEERestoreBackend", "REERestoreBackend"]


class RestoreBackend:
    """Interface the pipeline drives.  All sizes are region-relative."""

    granule: int

    @property
    def allocated(self) -> int:
        raise NotImplementedError

    def alloc_to(self, target_bytes: int, threads: int):
        """Extend the parameter memory to ``target_bytes`` (generator;
        CPU-resident work: page migration or buddy fast path)."""
        raise NotImplementedError

    def load_group(self, group: RestoreGroup):
        """Flash I/O for a group's tensors (generator; I/O engine)."""
        raise NotImplementedError

    def protect_to(self, target_bytes: int):
        """Ensure protection covers ``[0, target_bytes)`` (generator)."""
        raise NotImplementedError

    def decrypt_duration(self, nominal_bytes: int, threads: int) -> float:
        """CPU seconds to verify+decrypt ``nominal_bytes``."""
        raise NotImplementedError

    def decrypt_group_data(self, group: RestoreGroup) -> None:
        """The functional verify+decrypt of a group's payload bytes."""
        raise NotImplementedError

    def refetch_group_data(self, group: RestoreGroup):
        """Recovery re-read of a group whose decrypt failed verification
        (generator).  Backends without a verified load path never see a
        checksum failure, so the default refuses."""
        raise NotImplementedError

    def release_to(self, target_bytes: int):
        """Shrink the parameter memory back to ``target_bytes``
        (generator; reverse-topological release, §4.1)."""
        raise NotImplementedError


def _payload_addr(base_addr: int, group: RestoreGroup, tensor: TensorMeta) -> int:
    """Where a tensor's (scaled) payload lives inside its group."""
    offset = group.region_offset
    for t in group.tensors:
        if t.name == tensor.name:
            return base_addr + offset
        offset += t.payload_bytes
    raise KeyError(tensor.name)


class TEERestoreBackend(RestoreBackend):
    """TZ-LLM's restoration: CMA ballooning, TZASC, verify + decrypt."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        region: SecureRegion,
        tz_driver: TZDriver,
        container: ModelContainer,
        file_path: str,
        model_key: bytes,
    ):
        self.sim = sim
        self.platform = platform
        self.region = region
        self.tz_driver = tz_driver
        self.container = container
        self.file_path = file_path
        self.model_key = model_key
        self.granule = region.granule
        self.loaded_nominal = 0
        self.decrypted_groups = 0
        self.refetched_groups = 0
        self.refetch_attempts = 0

    @property
    def allocated(self) -> int:
        return self.region.allocated

    def alloc_to(self, target_bytes: int, threads: int):
        delta = target_bytes - self.region.allocated
        if delta > 0:
            yield from self.region.extend_allocated(delta, threads=threads)

    def load_group(self, group: RestoreGroup):
        if getattr(group, "uniform_load", False):
            # Size-obfuscated load (§6 mitigation): one fixed-size request
            # per group — the group's tensors are contiguous in the
            # container, and dummy bytes pad the transfer to the quantum.
            first = group.tensors[0]
            total_payload = sum(t.payload_bytes for t in group.tensors)
            yield from self.tz_driver.delegated_read_into(
                self.file_path,
                self.container.file_offset(first),
                total_payload,
                self.region.base_addr + group.region_offset,
                nominal=group.alloc_bytes,
            )
            self.loaded_nominal += group.nominal_bytes
            return
        for tensor in group.tensors:
            dest = _payload_addr(self.region.base_addr, group, tensor)
            yield from self.tz_driver.delegated_read_into(
                self.file_path,
                self.container.file_offset(tensor),
                tensor.payload_bytes,
                dest,
                nominal=tensor.nominal_bytes,
            )
            self.loaded_nominal += tensor.nominal_bytes

    def protect_to(self, target_bytes: int):
        delta = target_bytes - self.region.protected
        if delta > 0:
            yield from self.region.extend_protected(delta)

    def decrypt_duration(self, nominal_bytes: int, threads: int) -> float:
        return nominal_bytes / self.platform.crypto.aggregate_decrypt_bw(threads)

    def decrypt_group_data(self, group: RestoreGroup) -> None:
        """Verify REE-loaded ciphertext, then decrypt in place (TA CPU).

        A forged load (the model-loading Iago attack) fails the checksum
        here, *before* any plaintext is produced.
        """
        tee_os = self.region.tee_os
        ta = self.region.ta
        for tensor in group.tensors:
            addr = _payload_addr(self.region.base_addr, group, tensor)
            ciphertext = tee_os.ta_read(ta, addr, tensor.payload_bytes)
            expected = getattr(tensor, "checksum", None)
            if expected is not None and not verify(ciphertext, expected):
                raise IagoViolation(
                    "tensor %r failed load checksum (forged REE read?)" % tensor.name
                )
            plaintext = decrypt(
                self.model_key, self.container.nonce, ciphertext, offset=tensor.offset
            )
            tee_os.ta_write(ta, addr, plaintext)
        self.decrypted_groups += 1

    def refetch_group_data(self, group: RestoreGroup):
        """Corrupted-chunk recovery (generator): re-fetch, verify, decrypt.

        By the time a checksum failure is detected the group's memory is
        already TZASC-protected, so the fast aio path cannot land there;
        the ciphertext comes back over the TZ driver's bounce buffer, is
        verified and decrypted TA-side, and the plaintext is written
        through the TA's own mapping.  A re-read that *still* fails its
        checksum raises :class:`IagoViolation` — persistent corruption is
        an attack, and the retry loop must not hide it.
        """
        tee_os = self.region.tee_os
        ta = self.region.ta
        self.refetch_attempts += 1
        for tensor in group.tensors:
            ciphertext = yield from self.tz_driver.delegated_read_bounce(
                self.file_path,
                self.container.file_offset(tensor),
                tensor.payload_bytes,
                nominal=tensor.nominal_bytes,
            )
            expected = getattr(tensor, "checksum", None)
            if expected is not None and not verify(ciphertext, expected):
                raise IagoViolation(
                    "tensor %r failed checksum again on re-fetch" % tensor.name
                )
            plaintext = decrypt(
                self.model_key, self.container.nonce, ciphertext, offset=tensor.offset
            )
            addr = _payload_addr(self.region.base_addr, group, tensor)
            tee_os.ta_write(ta, addr, plaintext)
        self.refetched_groups += 1

    def release_to(self, target_bytes: int):
        delta = self.region.protected - target_bytes
        if delta > 0:
            yield from self.region.shrink(delta)


class REERestoreBackend(RestoreBackend):
    """The unprotected baseline: buddy pages, plain loads, no decryption."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        kernel: REEKernel,
        container: ModelContainer,
        file_path: str,
    ):
        self.sim = sim
        self.platform = platform
        self.kernel = kernel
        self.container = container
        self.file_path = file_path
        self.granule = kernel.db.granule
        self._allocated = 0
        self._allocations: List[Allocation] = []
        self.loaded_nominal = 0

    @property
    def allocated(self) -> int:
        return self._allocated

    def alloc_to(self, target_bytes: int, threads: int):
        delta = target_bytes - self._allocated
        if delta <= 0:
            return
        alloc = yield from self.kernel.alloc_timed(delta, movable=True, tag="ree-llm")
        self._allocations.append(alloc)
        self._allocated = target_bytes

    def load_group(self, group: RestoreGroup):
        for tensor in group.tensors:
            yield from self.kernel.fs.read(
                self.file_path,
                self.container.file_offset(tensor),
                tensor.payload_bytes,
                nominal=tensor.nominal_bytes,
            )
            self.loaded_nominal += tensor.nominal_bytes

    def protect_to(self, target_bytes: int):
        return
        yield  # pragma: no cover - makes this a generator

    def decrypt_duration(self, nominal_bytes: int, threads: int) -> float:
        return 0.0

    def decrypt_group_data(self, group: RestoreGroup) -> None:
        return None

    def release_to(self, target_bytes: int):
        while self._allocations and self._allocated > target_bytes:
            tail = self._allocations.pop()
            self.kernel.free(tail)
            self._allocated -= tail.n_frames * self.granule
        yield self.sim.timeout(0)
