"""TZ-LLM proper: pipelined restoration, secure memory, co-driver systems.

The paper's contribution lives here: restoration planning
(:mod:`repro.core.restore_graph`), the pipelined prefill executor
(:mod:`repro.core.pipeline`), restoration backends
(:mod:`repro.core.backends`), caching policies
(:mod:`repro.core.caching`), the LLM TA (:mod:`repro.core.llm_ta`), and
the end-to-end evaluated systems (:mod:`repro.core.system`).
"""

from .backends import REERestoreBackend, RestoreBackend, TEERestoreBackend
from .batch import BatchConfig, BatchedSequence, DecodeBatchEngine, ParkedSequence, SharedNPUBackend
from .client import ChatReply, ClientApp, ClientSession
from .caching import (
    CachePolicy,
    FractionCachePolicy,
    PressureCachePolicy,
    ThresholdProfiler,
)
from .llm_ta import InferenceRecord, LLMTA, PreemptionGate
from .multi import TZLLMMulti
from .obfuscation import apply_size_obfuscation, quantize_duration
from .pipeline import PipelineConfig, PipelineMetrics, PrefillPipeline
from .restore_graph import RestorationPlan, RestoreGroup, build_restoration_plan
from .system import PAPER_PRESSURE, REELLM, TZLLM, provision_model, strawman

__all__ = [
    "BatchConfig",
    "BatchedSequence",
    "CachePolicy",
    "ChatReply",
    "ClientApp",
    "ClientSession",
    "DecodeBatchEngine",
    "FractionCachePolicy",
    "InferenceRecord",
    "LLMTA",
    "PAPER_PRESSURE",
    "ParkedSequence",
    "PipelineConfig",
    "PipelineMetrics",
    "PreemptionGate",
    "PrefillPipeline",
    "PressureCachePolicy",
    "REELLM",
    "REERestoreBackend",
    "RestorationPlan",
    "RestoreBackend",
    "RestoreGroup",
    "SharedNPUBackend",
    "TEERestoreBackend",
    "ThresholdProfiler",
    "TZLLM",
    "TZLLMMulti",
    "apply_size_obfuscation",
    "build_restoration_plan",
    "quantize_duration",
    "provision_model",
    "strawman",
]
