"""The evaluated systems (§7 baselines), wired end to end.

* :class:`TZLLM` — the paper's system: LLM TA in the TEE, pipelined
  restoration over CMA-ballooned secure memory, co-driver NPU, framework
  checkpointing, partial parameter caching.  Feature flags expose every
  ablation the evaluation needs; :func:`strawman` builds the cold-start
  baseline (no pipeline, no NPU, no checkpoint).
* :class:`REELLM` — the unprotected llama.cpp baselines: ``memory`` mode
  (parameters resident; the theoretical best) and ``flash`` mode
  (pipelined restoration from flash with buddy pages, no decryption).

All systems speak one interface: ``run_infer(prompt_tokens,
output_tokens)`` returns an :class:`~repro.core.llm_ta.InferenceRecord`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..config import GiB, MiB, PlatformSpec, RK3588
from ..crypto import derive_key
from ..errors import ConfigurationError
from ..hw.common import AddrRange, World
from ..llm.gguf import ModelContainer, container_path, pack_model, parse_container
from ..llm.graph import build_prefill_graph
from ..llm.kv_cache import KVCache
from ..llm.models import ModelSpec
from ..llm.runtime import GraphExecutor, REEDriverNPUBackend, decode_tokens
from ..sim import Resource
from ..stack import Stack, build_stack
from ..workloads.stress import MemoryStress
from .backends import REERestoreBackend
from .caching import FractionCachePolicy
from .llm_ta import InferenceRecord, LLMTA
from .pipeline import PipelineConfig, PrefillPipeline
from .restore_graph import build_restoration_plan

__all__ = ["TZLLM", "REELLM", "strawman", "PAPER_PRESSURE", "provision_model"]

#: §7: worst-case stress-ng pressure per model (bytes).
PAPER_PRESSURE = {
    "tinyllama-1.1b-q8": 13 * 10 ** 9,
    "qwen2.5-3b-q8": 11 * 10 ** 9,
    "phi-3-mini-3.8b-q8": 10 * 10 ** 9,
    "llama-3-8b-q8": 6 * 10 ** 9,
}

#: resident system footprint used in the evaluation configs (OS + services
#: + foreground apps on a production OpenHarmony image).
DEFAULT_OS_FOOTPRINT = 3 * GiB


def provision_model(stack: Stack, model: ModelSpec, provider_seed: bytes = b"model-provider") -> ModelContainer:
    """Provider-side provisioning: pack, encrypt, and install the model."""
    hardware_key = stack.keystore.hardware_key(World.SECURE)
    model_key = derive_key(provider_seed, model.model_id)
    data = pack_model(model, model_key, hardware_key)
    stack.kernel.fs.create(container_path(model.model_id), data)
    return parse_container(data)


class _SystemBase:
    """Shared conveniences for the evaluated systems."""

    stack: Stack

    @property
    def sim(self):
        return self.stack.sim

    def run_infer(self, prompt_tokens: int, output_tokens: int = 0) -> InferenceRecord:
        proc = self.sim.process(self.infer(prompt_tokens, output_tokens))
        return self.sim.run_until(proc)

    def infer(self, prompt_tokens: int, output_tokens: int = 0):
        raise NotImplementedError

    def apply_pressure(self, n_bytes: int) -> MemoryStress:
        stress = MemoryStress(self.stack.kernel, n_bytes)
        stress.start()
        return stress


class TZLLM(_SystemBase):
    """The paper's system, end to end, with every ablation flag."""

    def __init__(
        self,
        model: ModelSpec,
        platform: PlatformSpec = RK3588,
        granule: int = 1 * MiB,
        max_tokens: int = 1024,
        os_footprint: int = DEFAULT_OS_FOOTPRINT,
        use_npu: Union[bool, str] = True,
        decode_use_npu: Union[bool, str] = "auto",
        use_checkpoint: bool = True,
        pipeline_config: Optional[PipelineConfig] = None,
        cache_fraction: float = 0.0,
        npu_reinit_on_switch: bool = False,
        size_obfuscation=None,
        npu_duration_quantum: float = 0.0,
        decode_param_residency: float = 1.0,
        recovery=None,
        batch_config=None,
        trace: bool = False,
        name: str = "TZ-LLM",
        sim=None,
        device_name: str = "",
        device_seed=None,
    ):
        self.model = model
        self.name = name
        self.device_name = device_name
        # Sizing the boot-time CMA reservations needs the container's
        # tensor table, which is independent of the device stack — build
        # the container first against a scratch key schedule, then build
        # the stack, then provision for real.
        probe_container = parse_container(
            pack_model(model, derive_key(b"probe", model.model_id), derive_key(b"probe", "hw"))
        )
        params_bytes, data_bytes = LLMTA.cma_requirements(
            model,
            probe_container,
            granule,
            max_tokens,
            size_obfuscation=size_obfuscation,
            batch_config=batch_config,
        )
        self.stack = build_stack(
            spec=platform,
            granule=granule,
            os_footprint=os_footprint,
            cma_regions={
                "%s:params" % model.model_id: params_bytes,
                "%s:data" % model.model_id: data_bytes,
            },
            npu_reinit_on_switch=npu_reinit_on_switch,
            sim=sim,
            name=device_name,
            device_seed=device_seed,
        )
        self.container = provision_model(self.stack, model)
        self.stack.tee_os.grant_model_access(model.model_id, "llm-ta:" + model.model_id)
        self.ta = LLMTA(
            self.stack,
            model,
            self.container,
            max_tokens=max_tokens,
            use_checkpoint=use_checkpoint,
            use_npu=use_npu,
            decode_use_npu=decode_use_npu,
            pipeline_config=pipeline_config,
            cache_policy=FractionCachePolicy(cache_fraction),
            size_obfuscation=size_obfuscation,
            npu_duration_quantum=npu_duration_quantum,
            decode_param_residency=decode_param_residency,
            recovery=recovery,
            batch_config=batch_config,
        )
        self.ta.setup()
        self.tracer = None
        if trace:
            from ..sim.trace import Tracer

            self.tracer = Tracer(self.stack.sim)
            self.ta.tracer = self.tracer
        self.stack.board.monitor.register("tee.llm.infer", self.ta.infer)

    def infer(
        self,
        prompt_tokens: int,
        output_tokens: int = 0,
        preempt=None,
        ctx=None,
        prompt=None,
    ):
        """The client application's request path (generator).

        ``ctx`` is an optional :class:`~repro.obs.TraceContext` forwarded
        across the SMC into the TA for cross-world flow tracing.
        ``prompt`` is an optional :class:`~repro.llm.PromptSpec` the TA's
        prefix-sharing path (``BatchConfig.prefix_sharing``) uses to take
        shared KV blocks by reference.
        """
        yield self.sim.timeout(self.stack.spec.timing.ta_invoke_latency)
        record = yield from self.stack.tz_driver.invoke_ta(
            "tee.llm.infer",
            prompt_tokens,
            output_tokens,
            preempt=preempt,
            ctx=ctx,
            prompt=prompt,
        )
        return record

    def flush_kv(self):
        """Drop every cached-but-unreferenced shared KV block (generator):
        the prefix tree empties and the data region shrinks if the TA is
        fully drained.  Returns the number of residencies dropped."""
        dropped = yield from self.ta.flush_kv_cache()
        return dropped

    def warm_cache(self, fraction: float) -> None:
        """Set the cache policy fraction for subsequent releases."""
        self.ta.cache_policy = FractionCachePolicy(fraction)


def strawman(model: ModelSpec, platform: PlatformSpec = RK3588, **kwargs) -> TZLLM:
    """The §2.3 cold-start baseline: secure but unoptimized.

    Every request performs the full cold start (framework init, bulk
    allocation, load, decrypt) and computes on the CPU only.
    """
    kwargs.setdefault("use_npu", False)
    kwargs.setdefault("decode_use_npu", False)
    kwargs.setdefault("use_checkpoint", False)
    kwargs.setdefault("pipeline_config", PipelineConfig(pipelined=False, preemptive=False))
    kwargs.setdefault("cache_fraction", 0.0)
    kwargs.setdefault("name", "Strawman")
    return TZLLM(model, platform, **kwargs)


class REELLM(_SystemBase):
    """The unprotected baselines: ``mode="memory"`` or ``mode="flash"``."""

    def __init__(
        self,
        model: ModelSpec,
        mode: str = "memory",
        platform: PlatformSpec = RK3588,
        granule: int = 1 * MiB,
        max_tokens: int = 1024,
        os_footprint: int = DEFAULT_OS_FOOTPRINT,
        use_npu: Union[bool, str] = True,
        decode_use_npu: Union[bool, str] = "auto",
        pipeline_config: Optional[PipelineConfig] = None,
        release_after: Optional[bool] = None,
    ):
        if mode not in ("memory", "flash"):
            raise ConfigurationError("mode must be 'memory' or 'flash'")
        self.model = model
        self.mode = mode
        self.name = "REE-LLM-Memory" if mode == "memory" else "REE-LLM-Flash"
        self.use_npu = use_npu
        self.decode_use_npu = decode_use_npu
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.release_after = (mode == "flash") if release_after is None else release_after
        self.max_tokens = max_tokens
        self.stack = build_stack(
            spec=platform, granule=granule, os_footprint=os_footprint, cma_regions={}
        )
        self.container = provision_model(self.stack, model)
        planning_graph = build_prefill_graph(model, self.container.tensors, 1, use_npu=False)
        self.plan = build_restoration_plan(planning_graph, granule)
        self.backend = REERestoreBackend(
            self.sim,
            platform,
            self.stack.kernel,
            self.container,
            container_path(model.model_id),
        )
        self.cpu = Resource(self.sim, capacity=1, priority=True, name="ree-llm-cpu")
        ctx_alloc = self.stack.kernel.alloc_unmovable(4096, tag="npu-ctx")
        ctx_addr = self.stack.kernel.db.frame_addr(min(ctx_alloc.frames))
        self.npu_backend = REEDriverNPUBackend(self.stack.ree_npu, AddrRange(ctx_addr, 4096))
        if mode == "memory":
            self._preload()
        self.records = []

    def _preload(self) -> None:
        """Place all parameters in memory before the experiment starts."""
        total = self.plan.total_alloc_bytes
        alloc = self.stack.kernel.map_anonymous(total, tag="ree-llm-resident")
        self.backend._allocations.append(alloc)
        self.backend._allocated = total

    @property
    def cached_groups(self) -> int:
        return self.plan.groups_for_bytes(self.backend.allocated)

    def infer(self, prompt_tokens: int, output_tokens: int = 0):
        sim = self.sim
        record = InferenceRecord(
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            started_at=sim.now,
            cached_groups=self.cached_groups,
            cached_bytes=self.backend.allocated,
        )
        if self.mode == "flash":
            # Resident framework state is restored, not cold-initialized.
            yield sim.timeout(self.stack.spec.timing.checkpoint_restore)
            record.init_time = self.stack.spec.timing.checkpoint_restore
        yield sim.timeout(self.stack.spec.timing.kv_activation_alloc)
        graph = build_prefill_graph(
            self.model,
            self.container.tensors,
            prompt_tokens,
            use_npu=self.use_npu,
            platform=self.stack.spec,
        )
        pipeline = PrefillPipeline(
            sim,
            self.stack.spec,
            graph,
            self.plan,
            self.backend,
            self.npu_backend,
            cached_groups=record.cached_groups,
            config=self.pipeline_config,
        )
        record.pipeline = yield from pipeline.run()
        record.ttft = sim.now - record.started_at
        if output_tokens > 0:
            executor = GraphExecutor(sim, self.stack.spec, self.cpu, self.npu_backend)
            kv = KVCache(self.model, self.max_tokens)
            kv.init_prompt(prompt_tokens)
            try:
                record.decode = yield from decode_tokens(
                    executor,
                    self.model,
                    self.container.tensors,
                    kv,
                    output_tokens,
                    use_npu=self.decode_use_npu,
                )
            finally:
                kv.reset()
        if self.release_after:
            yield from self.backend.release_to(0)
        self.records.append(record)
        return record
