"""Partial parameter caching policies (§4.1, §7.2.3).

After an inference the TA lazily releases parameter memory in reverse
topological order; whatever prefix stays resident lets the next inference
skip those groups' restoration entirely.  Policies decide how much to
keep:

* :class:`FractionCachePolicy` — keep a fixed fraction (the Fig. 14
  sweep's independent variable).
* :class:`PressureCachePolicy` — keep as much as current REE free memory
  allows, with a floor/headroom (the paper's deployed mechanism).
* :class:`ThresholdProfiler` — find the knee of the TTFT-vs-cache curve
  (the paper's suggested profiling alternative) from measured runs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "CachePolicy",
    "FractionCachePolicy",
    "PressureCachePolicy",
    "ThresholdProfiler",
]


class CachePolicy:
    """Decides how many parameter bytes stay cached after inference."""

    def bytes_to_keep(self, ta) -> int:
        """Upper bound on parameter bytes to keep cached after inference."""
        raise NotImplementedError


class FractionCachePolicy(CachePolicy):
    """Keep a fixed fraction of the parameters (the Fig. 14 knob)."""

    def __init__(self, fraction: float):
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be within [0, 1]")
        self.fraction = fraction

    def bytes_to_keep(self, ta) -> int:
        return int(ta.plan.total_alloc_bytes * self.fraction)


class PressureCachePolicy(CachePolicy):
    """Keep what fits under the REE's free-memory headroom requirement."""

    def __init__(self, headroom_bytes: int):
        if headroom_bytes < 0:
            raise ConfigurationError("headroom must be non-negative")
        self.headroom_bytes = headroom_bytes

    def bytes_to_keep(self, ta) -> int:
        kernel = ta.stack.kernel
        currently_held = ta.params_region.protected
        # Free memory if we released everything:
        free_after_release = kernel.free_bytes + currently_held
        allowance = max(0, free_after_release - self.headroom_bytes)
        return min(currently_held if currently_held else ta.plan.total_alloc_bytes, allowance)


class ThresholdProfiler:
    """Locate the cache proportion beyond which extra caching stops
    helping (the knee of Fig. 14)."""

    def __init__(self, tolerance: float = 0.05):
        self.tolerance = tolerance

    def find_knee(self, points: Sequence[Tuple[float, float]]) -> float:
        """``points``: (cache_fraction, ttft) pairs, fraction-ascending.

        Returns the smallest fraction whose TTFT is within ``tolerance``
        of the fully-cached TTFT.
        """
        if len(points) < 2:
            raise ConfigurationError("need at least two profile points")
        ordered = sorted(points)
        floor = ordered[-1][1]
        if floor <= 0:
            raise ConfigurationError("non-positive TTFT in profile")
        for fraction, ttft in ordered:
            if ttft <= floor * (1.0 + self.tolerance):
                return fraction
        return ordered[-1][0]
