"""Continuous batching for the TEE decode path (vLLM/Orca-style).

The paper's TA serves one inference at a time (§4.2): the data region
holds a single request's KV range and is fully released afterwards.
This module multiplexes the *decode* phase instead: one
:class:`DecodeBatchEngine` per TA runs every in-flight sequence through
a shared fused :class:`~repro.llm.runtime.GraphExecutor` step, admitting
new sequences from a waiting queue at token boundaries and evicting
preempted ones by *parking* their KV blocks (the block list survives;
resume re-joins the batch without re-running prefill).

Memory stays inside the paper's model: all KV blocks live in the second
TZASC region, which still only ever grows at its end (to the pool's
high-water mark) and shrinks all the way back when the TA is fully
drained — the free-list reuse absorbs per-sequence churn *inside* the
protected span, so the §4.2 no-fragmentation property is preserved
(see ``docs/batching.md``).

Prefill is not batched: requests serialize through the TA's prefill
lock (one restoration pipeline at a time, exactly the paper's §4.1
machinery), then join the decode batch.  The one physical NPU is shared
between a running prefill and the decode stepper through
:class:`SharedNPUBackend`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..errors import ConfigurationError, OutOfMemory
from ..llm.graph import build_batched_decode_graph, build_chunked_prefill_graph
from ..llm.kv_cache import (
    BlockCheckpoint,
    KVBlockPool,
    PagedKVCache,
    PrefixTree,
    PromptSpec,
)
from ..llm.runtime import DecodeResult, GraphExecutor, NPUBackend, sample_token
from ..sim import Resource

__all__ = [
    "BatchConfig",
    "BatchedSequence",
    "DecodeBatchEngine",
    "ParkedSequence",
    "SharedNPUBackend",
]


@dataclass
class BatchConfig:
    """Continuous-batching knobs for one TA."""

    #: sequences decoding concurrently in one fused step.
    max_batch_size: int = 4
    #: tokens per KV block (the paged-KV granularity).
    block_tokens: int = 16
    #: total KV block budget; ``None`` sizes it so ``max_batch_size``
    #: worst-case (``max_tokens``-long) sequences fit simultaneously.
    budget_blocks: Optional[int] = None
    #: share whole KV blocks across prompts with common prefixes
    #: (refcounted copy-on-write pages + a prefix tree on the pool).
    prefix_sharing: bool = False
    #: max tokens one chunked-prefill step computes inside the running
    #: decode batch (only used on the sharing path's miss suffix).
    prefill_chunk_tokens: int = 64

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be positive")
        if self.block_tokens < 1:
            raise ConfigurationError("block_tokens must be positive")
        if self.budget_blocks is not None and self.budget_blocks < 1:
            raise ConfigurationError("budget_blocks must be positive")
        if self.prefill_chunk_tokens < 1:
            raise ConfigurationError("prefill_chunk_tokens must be positive")

    def resolved_budget(self, max_tokens: int) -> int:
        if self.budget_blocks is not None:
            return self.budget_blocks
        per_seq = -(-max_tokens // self.block_tokens)
        return self.max_batch_size * per_seq


class SharedNPUBackend(NPUBackend):
    """Serialize one physical NPU between prefill and the decode stepper.

    Per-request backends never overlapped in the single-stream design;
    with batching, a restoration pipeline's secure jobs and the decode
    batch's fused-step jobs would interleave inside the co-driver's
    sequence-number protocol.  A capacity-1 resource keeps whole jobs
    atomic (the device runs one job at a time anyway).
    """

    def __init__(self, inner: NPUBackend, lock: Resource):
        self.inner = inner
        self.lock = lock

    @property
    def busy_time(self):
        return self.inner.busy_time

    @property
    def overhead_time(self):
        return self.inner.overhead_time

    def run(self, op, duration):
        request = self.lock.request()
        yield request
        try:
            yield from self.inner.run(op, duration)
        finally:
            self.lock.release(request)


@dataclass
class BatchedSequence:
    """One in-flight sequence's decode state inside the batch."""

    seq_id: int
    model_id: str
    kv: PagedKVCache
    prompt_tokens: int
    #: total new tokens this sequence must generate (across park/resume).
    target_tokens: int
    done: object  # sim Event, succeeds when the sequence leaves the batch
    gate: Optional[object] = None  # PreemptionGate (callable) or None
    request_id: Optional[int] = None
    #: decode-step index, global across park/resume — it keys
    #: ``sample_token``, which is what makes a resumed stream identical
    #: to an unpreempted one.
    step_index: int = 0
    token_ids: List[int] = field(default_factory=list)
    step_times: List[float] = field(default_factory=list)
    attribution: List[dict] = field(default_factory=list)
    state: str = "waiting"  # waiting | active | finished | evicted | failed
    error: Optional[BaseException] = None
    joined_at: float = 0.0
    #: miss-suffix tokens still to prefill in-batch (sharing path); the
    #: sequence decodes only once this reaches zero.
    prefill_remaining: int = 0
    #: sim time the prompt became fully resident (TTFT anchor).
    prefill_done_at: Optional[float] = None

    @property
    def remaining(self) -> int:
        return self.target_tokens - len(self.token_ids)

    def result(self, stopped_early: bool = False) -> DecodeResult:
        return DecodeResult(
            token_ids=list(self.token_ids),
            step_times=list(self.step_times),
            attribution=[dict(a) for a in self.attribution],
            stopped_early=stopped_early,
        )


@dataclass
class ParkedSequence:
    """A preempted sequence's checkpoint: blocks kept, prefill kept."""

    request_id: int
    kv: PagedKVCache
    checkpoint: BlockCheckpoint
    token_ids: List[int]
    step_times: List[float]
    attribution: List[dict]
    step_index: int
    prompt_tokens: int
    target_tokens: int
    #: original-attempt timing, re-reported on the resumed record so the
    #: gateway's TTFT reflects the *first* token, not the resume.
    ttft: float = 0.0
    first_token_at: float = 0.0
    parked_at: float = 0.0
    #: unfinished in-batch prefill carried across the park (sharing path).
    prefill_remaining: int = 0


class DecodeBatchEngine:
    """The continuous-batching decode scheduler for one LLM TA.

    A single stepper process runs while any sequence is active: each
    iteration it (1) evicts sequences whose preemption gate fired —
    parking their block lists, (2) admits waiting sequences up to
    ``max_batch_size``, (3) pre-allocates this step's KV growth and
    extends the data region to the pool's high-water mark, (4) executes
    one fused batched decode step, and (5) retires finished sequences.
    Everything is driven by deques and the sim clock — no RNG — so
    batched serving stays deterministic end to end.
    """

    def __init__(self, ta, config: BatchConfig):
        self.ta = ta
        self.sim = ta.sim
        self.config = config
        self.pool = KVBlockPool(
            ta.model, config.block_tokens, config.resolved_budget(ta.max_tokens)
        )
        #: content-addressed residency index over the pool's blocks
        #: (``None`` when sharing is off: zero overhead, legacy behavior).
        self.tree: Optional[PrefixTree] = (
            PrefixTree(self.pool) if config.prefix_sharing else None
        )
        #: job execution context + worst-case activation scratch, laid
        #: out ahead of the block span in the data region.
        self.fixed_bytes = 4096 + ta.model.activation_bytes(ta.max_tokens)
        self.npu_lock = Resource(self.sim, capacity=1, name="npu-lock:" + ta.model.model_id)
        #: serializes data-region growth: two interleaved extensions
        #: would both observe the old end and balloon the same frames.
        self._backing_lock = Resource(
            self.sim, capacity=1, name="backing-lock:" + ta.model.model_id
        )
        self._inner_npu: Optional[NPUBackend] = None
        self.npu_backend: Optional[SharedNPUBackend] = None
        self.waiting: Deque[BatchedSequence] = deque()
        self.active: List[BatchedSequence] = []
        self.parked: Dict[int, ParkedSequence] = {}
        self._stepper = None
        self._seq_ids = 0
        #: infer() attempts currently inside the TA (prefill or decode);
        #: the data region may only shrink when this reaches zero.
        self.inflight = 0
        self._executor: Optional[GraphExecutor] = None
        # engine-level stats (also exported through ta.metrics when set)
        self.steps = 0
        self.tokens_generated = 0
        #: summed fused-step wall time: tokens_generated / busy_time is
        #: the engine's aggregate decode throughput.
        self.busy_time = 0.0
        self.occupancy_steps: Dict[int, int] = {}
        self.kv_extends = 0
        self.evictions = 0
        self.resumes = 0
        self.prefill_chunks = 0
        self.prefill_tokens = 0
        #: summed chunked-prefill wall time (decode busy_time excluded).
        self.prefill_busy_time = 0.0

    # ------------------------------------------------------------------
    # admission-side budget (called synchronously from gateway dispatch)
    # ------------------------------------------------------------------
    def blocks_needed(
        self,
        prompt_tokens: int,
        output_tokens: int,
        spec: Optional[PromptSpec] = None,
    ) -> int:
        """Worst-case fresh blocks a request may allocate.  With sharing
        on and a :class:`PromptSpec`, predicted whole-block prefix/session
        hits are subtracted — admission budgets only the *non-shared*
        part of the prompt (a shared block costs a ref, not a block)."""
        if spec is not None and self.tree is not None:
            worst = spec.worst_case_blocks(self.config.block_tokens, output_tokens)
            return max(0, worst - self.tree.probe(spec))
        return self.pool.blocks_for_tokens(prompt_tokens + output_tokens)

    def can_admit(
        self, prompt_tokens: int, output_tokens: int, request_id=None, spec=None
    ) -> bool:
        """Budget check for dispatch: a parked sequence already holds its
        blocks (plus leftover hold), so resuming always fits."""
        if request_id is not None and request_id in self.parked:
            return True
        return self.pool.can_admit(self.blocks_needed(prompt_tokens, output_tokens, spec))

    def reserve(
        self, prompt_tokens: int, output_tokens: int, request_id=None, spec=None
    ) -> int:
        """Hold a request's worst-case block count until its cache
        consumes it.  Returns the held count (0 for a parked resume)."""
        if request_id is not None and request_id in self.parked:
            return 0
        blocks = self.blocks_needed(prompt_tokens, output_tokens, spec)
        self.pool.reserve(
            blocks, owner="" if request_id is None else "r%s" % request_id
        )
        return blocks

    @property
    def has_slot(self) -> bool:
        return len(self.active) + len(self.waiting) < self.config.max_batch_size

    # ------------------------------------------------------------------
    # joining the batch
    # ------------------------------------------------------------------
    def join(
        self,
        kv: PagedKVCache,
        prompt_tokens: int,
        target_tokens: int,
        gate=None,
        request_id=None,
        prefill_tokens: int = 0,
    ) -> BatchedSequence:
        """Queue a sequence for decode; returns the sequence whose
        ``done`` event fires when it finishes, evicts, or fails.  A
        nonzero ``prefill_tokens`` enters the sequence still owing that
        many miss-suffix tokens of in-batch chunked prefill."""
        self._seq_ids += 1
        seq = BatchedSequence(
            seq_id=self._seq_ids,
            model_id=self.ta.model.model_id,
            kv=kv,
            prompt_tokens=prompt_tokens,
            target_tokens=target_tokens,
            done=self.sim.event(),
            gate=gate,
            request_id=request_id,
            joined_at=self.sim.now,
            prefill_remaining=prefill_tokens,
            prefill_done_at=self.sim.now if prefill_tokens <= 0 else None,
        )
        self.waiting.append(seq)
        if self._stepper is None:
            self._stepper = self.sim.process(
                self._run(), name="batch-decode:" + self.ta.model.model_id
            )
        return seq

    def rejoin(self, parked: ParkedSequence, gate=None) -> BatchedSequence:
        """Resume a parked sequence: restore its checkpointed block list
        and re-enter the waiting queue with its decode state intact.

        Restore -> unpark -> join is atomic with respect to the parked
        map: the entry is removed exactly once, *after* the checkpoint
        validated.  A terminal restore failure (checkpoint divergence)
        drops the entry and releases the blocks — a parked sequence
        whose resume can never succeed must not strand its memory."""
        entry = self.parked.get(parked.request_id)
        if entry is not parked:
            raise ConfigurationError(
                "rejoin of request %r which is not parked" % (parked.request_id,)
            )
        try:
            parked.kv.restore(parked.checkpoint)
        except BaseException:
            self.parked.pop(parked.request_id, None)
            parked.kv.release()
            raise
        self.parked.pop(parked.request_id, None)
        self.resumes += 1
        seq = self.join(
            parked.kv,
            parked.prompt_tokens,
            parked.target_tokens,
            gate=gate,
            request_id=parked.request_id,
            prefill_tokens=parked.prefill_remaining,
        )
        seq.step_index = parked.step_index
        seq.token_ids = list(parked.token_ids)
        seq.step_times = list(parked.step_times)
        seq.attribution = [dict(a) for a in parked.attribution]
        return seq

    def park(self, seq: BatchedSequence, at: float) -> ParkedSequence:
        checkpoint = seq.kv.park()
        parked = ParkedSequence(
            request_id=seq.request_id,
            kv=seq.kv,
            checkpoint=checkpoint,
            token_ids=list(seq.token_ids),
            step_times=list(seq.step_times),
            attribution=[dict(a) for a in seq.attribution],
            step_index=seq.step_index,
            prompt_tokens=seq.prompt_tokens,
            target_tokens=seq.target_tokens,
            parked_at=at,
            prefill_remaining=max(0, seq.prefill_remaining),
        )
        self.parked[seq.request_id] = parked
        return parked

    # ------------------------------------------------------------------
    # data-region backing (end-grown to the pool's high-water mark)
    # ------------------------------------------------------------------
    def backing_bytes_needed(self) -> int:
        granule = self.ta.data_region.granule
        needed = self.fixed_bytes + self.pool.backing_blocks * self.pool.block_bytes
        return -(-needed // granule) * granule

    def ensure_backing(self):
        """Extend the data region to cover every allocated block
        (generator; the §4.2 mid-decode growth path, batched)."""
        region = self.ta.data_region
        if self.backing_bytes_needed() <= region.allocated:
            return
        request = self._backing_lock.request()
        yield request
        try:
            # Re-check under the lock: a concurrent grower may have
            # covered this need while we queued.
            needed = self.backing_bytes_needed()
            if needed > region.allocated:
                delta = needed - region.allocated
                yield from region.extend_allocated(delta, threads=1)
                yield from region.extend_protected(delta)
                self.kv_extends += 1
        finally:
            self._backing_lock.release(request)

    def maybe_release_region(self):
        """Shrink the data region once the TA is fully drained
        (generator).  End-only TZASC shrink means nothing can release
        while any sequence — active or parked — still owns blocks."""
        if (
            self.inflight == 0
            and self.pool.used_blocks == 0
            and not self.active
            and not self.waiting
            and self.ta.data_region.allocated > 0
        ):
            yield from self.ta.data_region.shrink_all()

    # ------------------------------------------------------------------
    # the stepper
    # ------------------------------------------------------------------
    def _backend(self) -> SharedNPUBackend:
        if self.npu_backend is None:
            from ..hw.common import AddrRange
            from ..llm.runtime import TEECoDriverNPUBackend

            ta = self.ta
            job_ctx = AddrRange(ta.data_region.base_addr, 4096)
            self._inner_npu = TEECoDriverNPUBackend(
                ta.stack.tee_npu,
                job_ctx,
                duration_quantum=ta.npu_duration_quantum,
                job_timeout=ta.recovery.npu_job_timeout,
                max_reissues=ta.recovery.npu_max_reissues,
            )
            self.npu_backend = SharedNPUBackend(self._inner_npu, self.npu_lock)
        return self.npu_backend

    def _retire(self, seq: BatchedSequence, state: str, error=None) -> None:
        seq.state = state
        seq.error = error
        seq.done.succeed(seq)

    def _sweep_gates(self) -> None:
        """Token-boundary preemption: evict gated sequences, parking the
        ones the gateway can resume (a request identity is required to
        key the parked checkpoint)."""
        for seq in list(self.active):
            if seq.gate is not None and seq.gate():
                self.active.remove(seq)
                self.evictions += 1
                if seq.request_id is not None:
                    self.park(seq, self.sim.now)
                self._retire(seq, "evicted")
        for seq in list(self.waiting):
            if seq.gate is not None and seq.gate():
                self.waiting.remove(seq)
                self.evictions += 1
                if seq.request_id is not None:
                    self.park(seq, self.sim.now)
                self._retire(seq, "evicted")

    def _admit(self) -> None:
        while self.waiting and len(self.active) < self.config.max_batch_size:
            seq = self.waiting.popleft()
            seq.state = "active"
            self.active.append(seq)

    def _prealloc_growth(self) -> None:
        """Allocate this step's KV growth up front so the region can be
        extended before compute touches it; a pool-exhausted sequence
        fails alone instead of sinking the whole batch.  Sequences still
        prefilling own their whole prompt span already and generate no
        token this step, so they are skipped."""
        for seq in list(self.active):
            if seq.prefill_remaining > 0:
                continue
            try:
                seq.kv.ensure_capacity(seq.kv.tokens + 1)
            except OutOfMemory as exc:
                self.active.remove(seq)
                self._retire(seq, "failed", error=exc)

    def _note_step(self, occupancy: int, step_time: float) -> None:
        self.steps += 1
        self.tokens_generated += occupancy
        self.busy_time += step_time
        self.occupancy_steps[occupancy] = self.occupancy_steps.get(occupancy, 0) + 1
        metrics = self.ta.metrics
        model = self.ta.model.model_id
        if metrics is not None:
            metrics.gauge(
                "batch_occupancy", "Sequences in the current fused decode step"
            ).set(occupancy, model=model)
            metrics.counter(
                "batch_steps_total", "Fused decode steps by batch occupancy"
            ).inc(model=model, occupancy=str(occupancy))
            metrics.counter(
                "batch_tokens_total", "Tokens generated by the batched decode path"
            ).inc(occupancy, model=model)
        self.ta.tracer.counter("batch_occupancy:%s" % model, occupancy)

    def _prefill_chunk(self, seq: BatchedSequence):
        """One bounded chunked-prefill step for ``seq`` (generator).

        The blocks already exist (taken through the prefix tree at
        admission); this computes the KV content of the next
        ``prefill_chunk_tokens`` miss-suffix positions, attending over
        everything already resident — shared hits plus earlier chunks."""
        ta = self.ta
        executor = self._executor
        chunk = min(self.config.prefill_chunk_tokens, seq.prefill_remaining)
        context = seq.prompt_tokens - seq.prefill_remaining
        graph = build_chunked_prefill_graph(
            ta.model,
            ta.container.tensors,
            chunk,
            context_tokens=context,
            use_npu=ta.use_npu,
            platform=ta.platform,
        )
        start = self.sim.now
        try:
            yield from executor.execute(graph)
        except Exception as exc:
            # A faulted chunk fails this sequence alone: its infer()
            # re-raises and releases the blocks; decoders keep going.
            if seq in self.active:
                self.active.remove(seq)
            self._retire(seq, "failed", error=exc)
            return
        self.prefill_chunks += 1
        self.prefill_tokens += chunk
        self.prefill_busy_time += self.sim.now - start
        seq.prefill_remaining -= chunk
        if seq.prefill_remaining <= 0:
            seq.prefill_remaining = 0
            seq.prefill_done_at = self.sim.now
            if seq.remaining <= 0:
                # Prompt-only request: fully resident is fully done.
                self.active.remove(seq)
                self._retire(seq, "finished")

    def _run(self):
        """The stepper process: one fused decode step over the resident
        sequences, then at most one bounded prefill chunk for the oldest
        still-prefilling sequence, per iteration."""
        ta = self.ta
        if self._executor is None:
            self._executor = GraphExecutor(self.sim, ta.platform, ta.cpu, self._backend())
        executor = self._executor
        try:
            while True:
                self._sweep_gates()
                self._admit()
                if not self.active:
                    break
                self._prealloc_growth()
                if not self.active:
                    continue
                yield from self.ensure_backing()
                batch = [s for s in self.active if s.prefill_remaining <= 0]
                if batch:
                    graph = build_batched_decode_graph(
                        ta.model,
                        ta.container.tensors,
                        [seq.kv.tokens for seq in batch],
                        use_npu=ta.decode_use_npu,
                        platform=ta.platform,
                    )
                    start = self.sim.now
                    cpu0 = executor.cpu_busy_time
                    npu0 = executor.npu_busy_time
                    smc0 = executor.npu_overhead_time
                    try:
                        yield from executor.execute(graph)
                    except Exception as exc:
                        # A faulted fused step (TEE job hang, watchdog)
                        # fails every sequence it was computing: each
                        # waiting infer() re-raises the error and its
                        # finally block releases that sequence's KV
                        # blocks — the engine itself must not strand
                        # them.  Sequences still prefilling were not in
                        # the step and survive.
                        for seq in batch:
                            if seq in self.active:
                                self.active.remove(seq)
                            self._retire(seq, "failed", error=exc)
                        continue
                    step_time = self.sim.now - start
                    cpu_d = executor.cpu_busy_time - cpu0
                    npu_d = executor.npu_busy_time - npu0
                    smc_d = executor.npu_overhead_time - smc0
                    # Fair-share attribution: each sequence carries an
                    # equal slice of the fused step, so summed
                    # attributions across the batch reconstruct the wall
                    # time.
                    share = 1.0 / len(batch)
                    attribution = {
                        "cpu": cpu_d * share,
                        "npu_compute": npu_d * share,
                        "smc": smc_d * share,
                        "sched_wait": max(0.0, step_time - cpu_d - npu_d - smc_d) * share,
                    }
                    self._note_step(len(batch), step_time)
                    for seq in batch:
                        seq.token_ids.append(
                            sample_token(seq.model_id, seq.step_index, ta.model.vocab)
                        )
                        seq.step_index += 1
                        seq.step_times.append(step_time)
                        seq.attribution.append(dict(attribution))
                        seq.kv.append_token()
                        if seq.remaining <= 0:
                            self.active.remove(seq)
                            self._retire(seq, "finished")
                prefilling = [s for s in self.active if s.prefill_remaining > 0]
                if prefilling:
                    yield from self._prefill_chunk(prefilling[0])
        finally:
            self._stepper = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def occupancy_mean(self) -> float:
        if self.steps == 0:
            return 0.0
        return self.tokens_generated / self.steps

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "tokens_generated": self.tokens_generated,
            "busy_time": self.busy_time,
            "mean_occupancy": self.occupancy_mean(),
            "occupancy_steps": {str(k): v for k, v in sorted(self.occupancy_steps.items())},
            "kv_extends": self.kv_extends,
            "evictions": self.evictions,
            "resumes": self.resumes,
            "parked": len(self.parked),
            "prefill_chunks": self.prefill_chunks,
            "prefill_chunk_tokens": self.prefill_tokens,
            "prefill_busy_time": self.prefill_busy_time,
            "pool": {
                "block_tokens": self.pool.block_tokens,
                "total_blocks": self.pool.total_blocks,
                "used_blocks": self.pool.used_blocks,
                "reserved": self.pool.reserved,
                "backing_blocks": self.pool.backing_blocks,
                "cached_blocks": self.pool.cached_blocks,
                "shared_saved_blocks": self.pool.shared_saved_blocks,
                "cows": self.pool.cows,
            },
            "prefix_tree": None if self.tree is None else self.tree.to_dict(),
        }
