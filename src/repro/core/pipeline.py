"""Pipelined parameter restoration (§4.1): the prefill executor.

Hardware rows, as in Fig. 5: the **CPU** (the big cluster, one worker that
runs computation, allocation and decryption operators), the **I/O engine**
(flash loads, issued in topological order), and the **NPU** (matmul jobs
through whatever backend the system wired in).

Scheduling implements the paper's greedy, priority-based, preemptive
policy:

* a ready CPU *computation* operator always wins (it is on the critical
  chain);
* otherwise the restoration operator belonging to the earliest
  computation operator runs — a ready decryption (its group is already
  loaded, so its compute op is earliest) before an allocation;
* allocation and decryption are split into micro-operators
  (``slice_bytes``); between micro-ops the worker checks for a newly
  ready computation operator and yields to it (preemption, Fig. 5d) —
  disable with ``preemptive=False`` for the Fig. 13 ablation, or set
  ``pipelined=False`` for the strawman's sequential restore-then-compute.

Partial parameter caching (§4.1/Fig. 14): ``cached_groups`` leading
groups are assumed resident (allocated, protected, decrypted) from a
previous inference; their restoration operators vanish and computation
starts immediately.

The run returns :class:`PipelineMetrics`, including the three critical-
path totals of §7.2.1 whose maximum lower-bounds any schedule (Fig. 12).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import MiB, PlatformSpec
from ..errors import ConfigurationError, IagoViolation, IntegrityError, StorageError
from ..faults.recovery import RecoveryPolicy
from ..llm.graph import ComputationGraph
from ..llm.ops import Engine, op_duration
from ..llm.runtime import NPUBackend
from ..sim import Event, Simulator
from ..sim.trace import NULL_TRACER
from .backends import RestoreBackend
from .restore_graph import RestorationPlan

__all__ = ["PipelineConfig", "PipelineMetrics", "PrefillPipeline"]


@dataclass
class PipelineConfig:
    pipelined: bool = True
    preemptive: bool = True
    slice_bytes: int = 32 * MiB
    #: the prototype migrates CMA pages on one thread (the paper measures
    #: 1.9 GB/s single-thread; multi-threading is the §2.4.2 option).
    alloc_threads: int = 1
    decrypt_threads: int = 4

    def __post_init__(self):
        if self.slice_bytes <= 0:
            raise ConfigurationError("slice_bytes must be positive")


@dataclass
class PipelineMetrics:
    ttft: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    # critical-path totals (§7.2.1)
    io_time: float = 0.0
    alloc_time: float = 0.0
    decrypt_time: float = 0.0
    cpu_compute_time: float = 0.0
    npu_compute_time: float = 0.0
    #: cross-world share of ``npu_compute_time`` (SMC traps and
    #: secure-mode switches), as attributed by the NPU backend.
    npu_overhead_time: float = 0.0
    # bookkeeping
    loaded_bytes: int = 0
    preemptions: int = 0
    cpu_idle_time: float = 0.0
    # recovery bookkeeping (repro.faults): retried group loads and
    # corrupted-chunk re-fetches that saved the prefill from aborting.
    io_retries: int = 0
    refetches: int = 0

    @property
    def cpu_path(self) -> float:
        """All CPU-row work: compute + allocation + decryption."""
        return self.cpu_compute_time + self.alloc_time + self.decrypt_time

    @property
    def computation_path(self) -> float:
        return self.cpu_compute_time + self.npu_compute_time

    @property
    def io_path(self) -> float:
        return self.io_time

    @property
    def lower_bound(self) -> float:
        """No schedule can beat the slowest hardware row (§7.2.1)."""
        return max(self.io_path, self.cpu_path, self.computation_path)


class PrefillPipeline:
    """One prefill run: restoration and computation, co-scheduled."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        graph: ComputationGraph,
        plan: RestorationPlan,
        backend: RestoreBackend,
        npu_backend: Optional[NPUBackend],
        cached_groups: int = 0,
        config: Optional[PipelineConfig] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=NULL_TRACER,
        registry=None,
        recorder=None,
        ctx=None,
    ):
        if cached_groups < 0 or cached_groups > len(plan.groups):
            raise ConfigurationError("cached_groups out of range")
        self.recovery = recovery or RecoveryPolicy()
        self.tracer = tracer
        #: observability: a repro.obs MetricsRegistry for phase busy time,
        #: a FlightRecorder for retry provenance, and the request's
        #: TraceContext for cross-lane flow events (all optional).
        self.registry = registry
        self.recorder = recorder
        self.ctx = ctx
        self._flow_npu_pending = ctx is not None
        self.sim = sim
        self.platform = platform
        self.graph = graph
        self.plan = plan
        self.backend = backend
        self.npu_backend = npu_backend
        self.cached_groups = cached_groups
        self.config = config or PipelineConfig()
        self.metrics = PipelineMetrics()
        n = len(plan.groups)
        self._alloc_done: List[Event] = [sim.event() for _ in range(n)]
        self._load_done: List[Event] = [sim.event() for _ in range(n)]
        self._decrypt_done: List[Event] = [sim.event() for _ in range(n)]
        for g in range(cached_groups):
            self._alloc_done[g].succeed()
            self._load_done[g].succeed()
            self._decrypt_done[g].succeed()
        self._decrypt_ready: List[int] = []  # min-heap of loaded groups
        self._alloc_cursor = cached_groups
        self._pending_compute = None  # (op, duration, done_event)
        self._worker_wake: Optional[Event] = None
        self._finished = False
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def run(self):
        """Execute the whole prefill (generator; returns metrics).

        On failure (I/O error, Iago detection) the pipeline quiesces its
        worker and I/O processes *before* re-raising, so the caller can
        release memory without a zombie worker re-ballooning it.
        """
        self.metrics.started_at = self.sim.now
        if self.ctx is not None:
            # Flow step: the request has crossed from the gateway into
            # the TEE prefill path.
            self.tracer.flow("t", self.ctx.flow_id, self.ctx.flow_name, lane="CPU")
        if self.recorder is not None:
            self.recorder.record(
                "pipeline", "prefill.start", groups=len(self.plan.groups),
                cached=self.cached_groups,
            )
        if not self.config.pipelined:
            yield from self._run_sequential()
        else:
            io_proc = self.sim.process(self._io_driver(), name="pipeline-io")
            worker_proc = self.sim.process(self._cpu_worker(), name="pipeline-cpu")
            compute = self.sim.process(self._compute_driver(), name="pipeline-compute")
            failure: Optional[BaseException] = None
            try:
                yield compute
            except Exception as exc:
                failure = exc
            self._finished = True
            self._kick_worker()
            if failure is not None or self._failure is not None:
                cause = self._failure or failure
                for event in self._alloc_done + self._load_done:
                    if not event.triggered:
                        event.fail(cause)
            yield worker_proc
            yield io_proc
            if failure is not None:
                raise failure
        self.metrics.finished_at = self.sim.now
        self.metrics.ttft = self.sim.now - self.metrics.started_at
        self._export_phase_metrics()
        if self.recorder is not None:
            self.recorder.record(
                "pipeline", "prefill.done", ttft="%.6f" % self.metrics.ttft
            )
        return self.metrics

    def _export_phase_metrics(self) -> None:
        """Publish per-phase busy time and recovery counts to the registry."""
        registry = self.registry
        if registry is None:
            return
        busy = registry.counter(
            "pipeline_phase_busy_seconds_total", "Busy seconds per pipeline phase"
        )
        m = self.metrics
        busy.inc(m.alloc_time, phase="alloc")
        busy.inc(m.io_time, phase="load")
        busy.inc(m.decrypt_time, phase="decrypt")
        busy.inc(m.cpu_compute_time + m.npu_compute_time, phase="compute")
        if m.npu_overhead_time:
            registry.counter(
                "pipeline_npu_overhead_seconds_total",
                "Cross-world share of prefill NPU time (SMC + world switches)",
            ).inc(m.npu_overhead_time)
        registry.counter(
            "pipeline_loaded_bytes_total", "Model bytes restored by prefills"
        ).inc(m.loaded_bytes)
        if m.io_retries:
            registry.counter(
                "pipeline_io_retries_total", "Group loads retried after I/O errors"
            ).inc(m.io_retries)
        if m.refetches:
            registry.counter(
                "pipeline_refetches_total", "Corrupted-chunk re-fetches"
            ).inc(m.refetches)

    # ------------------------------------------------------------------
    # sequential (non-pipelined) mode: the strawman's restore-then-compute
    # ------------------------------------------------------------------
    def _run_sequential(self):
        groups = self.plan.groups
        for g in range(self.cached_groups, len(groups)):
            t0 = self.sim.now
            yield from self.backend.alloc_to(groups[g].region_end, self.config.alloc_threads)
            self.metrics.alloc_time += self.sim.now - t0
            self._alloc_done[g].succeed()
        for g in range(self.cached_groups, len(groups)):
            t0 = self.sim.now
            yield from self._load_with_retry(groups[g])
            self.metrics.io_time += self.sim.now - t0
            self.metrics.loaded_bytes += groups[g].nominal_bytes
            self._load_done[g].succeed()
        for g in range(self.cached_groups, len(groups)):
            t0 = self.sim.now
            yield from self.backend.protect_to(groups[g].region_end)
            duration = self.backend.decrypt_duration(
                groups[g].nominal_bytes, self.config.decrypt_threads
            )
            if duration:
                yield self.sim.timeout(duration)
            yield from self._decrypt_with_recovery(groups[g])
            self.metrics.decrypt_time += self.sim.now - t0
            self._decrypt_done[g].succeed()
        yield from self._compute_driver(sequential=True)

    # ------------------------------------------------------------------
    # I/O engine: loads in topological order
    # ------------------------------------------------------------------
    def _io_driver(self):
        try:
            for g in range(self.cached_groups, len(self.plan.groups)):
                yield self._alloc_done[g]
                if self._failure is not None:
                    return
                group = self.plan.groups[g]
                t0 = self.sim.now
                with self.tracer.span("load", "load g%d" % g, lane="I/O engine"):
                    yield from self._load_with_retry(group)
                self.metrics.io_time += self.sim.now - t0
                self.metrics.loaded_bytes += group.nominal_bytes
                self._load_done[g].succeed()
                heapq.heappush(self._decrypt_ready, g)
                self._kick_worker()
        except Exception as exc:  # I/O failure: abort the whole prefill
            self._abort(exc)

    def _load_with_retry(self, group):
        """Load one group, retrying transient storage errors with
        exponential backoff (generator; bounded by the recovery policy).

        A failed attempt may have loaded a prefix of the group's tensors;
        the retry re-reads the whole group — extra I/O time the metrics
        charge honestly — because the destination memory is still
        unprotected and plain re-writes are idempotent.
        """
        attempts = self.recovery.flash_read_attempts
        for attempt in range(1, attempts + 1):
            try:
                yield from self.backend.load_group(group)
                return
            except StorageError:
                if attempt == attempts:
                    raise
                self.metrics.io_retries += 1
                if self.recorder is not None:
                    self.recorder.record(
                        "retry", "pipeline.load", "retrying group load",
                        attempt=attempt, of=attempts,
                    )
                yield self.sim.timeout(self.recovery.backoff(attempt))

    def _decrypt_with_recovery(self, group):
        """Functional verify+decrypt with corrupted-chunk re-fetch
        (generator).  A checksum failure re-fetches the group's
        ciphertext over the bounce buffer instead of aborting the
        prefill; persistent failure (a real Iago attack, not a transient
        bit-flip) re-raises after the bounded attempts."""
        try:
            self.backend.decrypt_group_data(group)
            return
        except (IagoViolation, IntegrityError):
            if self.recovery.decrypt_refetch_attempts <= 0:
                raise
        last: Optional[BaseException] = None
        for attempt in range(1, self.recovery.decrypt_refetch_attempts + 1):
            self.metrics.refetches += 1
            if self.recorder is not None:
                self.recorder.record(
                    "retry", "pipeline.refetch", "re-fetching corrupted group",
                    attempt=attempt,
                )
            yield self.sim.timeout(self.recovery.backoff(attempt))
            # The with block records the span even when the re-fetch
            # itself fails, so failed attempts stay visible in the trace.
            with self.tracer.span("decrypt", "refetch", lane="CPU"):
                try:
                    yield from self.backend.refetch_group_data(group)
                except (IagoViolation, IntegrityError, StorageError) as exc:
                    last = exc
                    continue
                # The re-fetched ciphertext decrypts on the TA CPU again.
                duration = self.backend.decrypt_duration(
                    group.nominal_bytes, self.config.decrypt_threads
                )
                if duration:
                    yield self.sim.timeout(duration)
            return
        raise last

    def _abort(self, exc: BaseException) -> None:
        """Fail the pipeline cleanly: wake everything with the error so
        the compute chain unblocks and the caller can release memory."""
        if self._failure is not None:
            return
        self._failure = exc
        self._finished = True
        for event in self._decrypt_done:
            if not event.triggered:
                event.fail(exc)
        if self._pending_compute is not None:
            _op, _duration, done = self._pending_compute
            self._pending_compute = None
            if not done.triggered:
                done.fail(exc)
        self._kick_worker()

    # ------------------------------------------------------------------
    # computation chain
    # ------------------------------------------------------------------
    def _compute_driver(self, sequential: bool = False):
        for op in self.graph.ops:
            if self._failure is not None:
                raise self._failure
            gid = self.plan.group_for_op.get(op.op_id)
            if gid is not None and not self._decrypt_done[gid].triggered:
                yield self._decrypt_done[gid]
            duration = op_duration(op.flops, op.bytes_touched, self.platform, op.engine)
            if op.engine == Engine.CPU:
                if sequential:
                    yield self.sim.timeout(duration)
                else:
                    done = self.sim.event()
                    self._pending_compute = (op, duration, done)
                    self._kick_worker()
                    yield done
                self.metrics.cpu_compute_time += duration
            else:
                if self.npu_backend is None:
                    raise ConfigurationError("graph has NPU ops but no NPU backend")
                t0 = self.sim.now
                overhead0 = getattr(self.npu_backend, "overhead_time", 0.0)
                if self._flow_npu_pending:
                    # Flow step: first secure NPU job of this request.
                    self._flow_npu_pending = False
                    self.tracer.flow(
                        "t", self.ctx.flow_id, self.ctx.flow_name, lane="NPU"
                    )
                with self.tracer.span("compute", op.name, lane="NPU"):
                    yield from self.npu_backend.run(op, duration)
                self.metrics.npu_compute_time += self.sim.now - t0
                self.metrics.npu_overhead_time += (
                    getattr(self.npu_backend, "overhead_time", 0.0) - overhead0
                )

    # ------------------------------------------------------------------
    # CPU worker: the scheduler of Fig. 5
    # ------------------------------------------------------------------
    def _kick_worker(self):
        if self._worker_wake is not None and not self._worker_wake.triggered:
            self._worker_wake.succeed()

    def _cpu_worker(self):
        idle_since = None
        while True:
            if self._finished:
                return
            task = self._pick_task()
            if task is None:
                idle_since = self.sim.now
                self._worker_wake = self.sim.event()
                yield self._worker_wake
                self._worker_wake = None
                if idle_since is not None:
                    self.metrics.cpu_idle_time += self.sim.now - idle_since
                continue
            kind, payload = task
            try:
                if kind == "compute":
                    yield from self._do_compute(payload)
                elif kind == "decrypt":
                    yield from self._do_decrypt(payload)
                else:
                    yield from self._do_alloc(payload)
            except Exception as exc:  # decrypt checksum / alloc failures
                self._abort(exc)
                return

    def _pick_task(self):
        """The greedy priority rule of §4.1."""
        if self._pending_compute is not None:
            return ("compute", None)
        if self._decrypt_ready:
            return ("decrypt", heapq.heappop(self._decrypt_ready))
        if self._alloc_cursor < len(self.plan.groups):
            return ("alloc", self._alloc_cursor)
        return None

    def _do_compute(self, _payload):
        op, duration, done = self._pending_compute
        self._pending_compute = None
        with self.tracer.span("compute", op.name, lane="CPU"):
            yield self.sim.timeout(duration)
        done.succeed()

    def _maybe_preempt(self):
        """Between micro-operators: run a newly ready compute op now."""
        if self.config.preemptive and self._pending_compute is not None:
            self.metrics.preemptions += 1
            yield from self._do_compute(None)

    def _do_alloc(self, g: int):
        group = self.plan.groups[g]
        target = group.region_end
        t0 = self.sim.now
        compute_stolen = 0.0
        while self.backend.allocated < target:
            if self._failure is not None:
                return  # aborted mid-task: stop ballooning memory
            step_target = min(target, self.backend.allocated + self.config.slice_bytes)
            with self.tracer.span("alloc", "alloc g%d" % g, lane="CPU"):
                yield from self.backend.alloc_to(step_target, self.config.alloc_threads)
            c0 = self.sim.now
            yield from self._maybe_preempt()
            compute_stolen += self.sim.now - c0
        self.metrics.alloc_time += self.sim.now - t0 - compute_stolen
        self._alloc_cursor = g + 1
        if not self._alloc_done[g].triggered:
            self._alloc_done[g].succeed()

    def _do_decrypt(self, g: int):
        group = self.plan.groups[g]
        t0 = self.sim.now
        compute_stolen = 0.0
        yield from self.backend.protect_to(group.region_end)
        total = self.backend.decrypt_duration(group.nominal_bytes, self.config.decrypt_threads)
        slice_time = self.backend.decrypt_duration(
            self.config.slice_bytes, self.config.decrypt_threads
        )
        remaining = total
        while remaining > 0:
            if self._failure is not None:
                return  # aborted mid-task
            step = remaining if slice_time <= 0 else min(slice_time, remaining)
            if step > 0:
                with self.tracer.span("decrypt", "decrypt g%d" % g, lane="CPU"):
                    yield self.sim.timeout(step)
            remaining -= step
            if remaining > 0:
                c0 = self.sim.now
                yield from self._maybe_preempt()
                compute_stolen += self.sim.now - c0
        yield from self._decrypt_with_recovery(group)
        self.metrics.decrypt_time += self.sim.now - t0 - compute_stolen
        if not self._decrypt_done[g].triggered:
            self._decrypt_done[g].succeed()
