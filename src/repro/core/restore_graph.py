"""Restoration planning: extend the compute DAG with restoration operators.

For each computation operator that consumes parameters, §4.1 inserts three
restoration operators — memory allocation, parameter loading (flash I/O),
and decryption — ahead of it.  The planner groups each operator's tensors
into a :class:`RestoreGroup` laid out contiguously (and granule-aligned)
in the parameter secure region, in topological order; tiny groups (layer
norms) are fused into their successor so restoration quanta stay at
sensible sizes.

Because groups are allocated strictly in topological order and released
strictly in reverse, the region's first-in-last-out discipline (§4.2)
falls out by construction: ``plan.groups[k]`` always occupies
``[offset_k, offset_k + alloc_bytes_k)`` with ``offset_{k+1} = offset_k +
alloc_bytes_k``.

MoE note (§4.1 limitation): an expert-routed FFN contributes *all* its
experts' tensors to the group — the plan prefetches experts that this
inference may never touch.  ``RestorationPlan.speculative_bytes`` reports
how much; a test pins the behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..llm.graph import ComputationGraph
from ..llm.tensors import TensorMeta

__all__ = ["RestoreGroup", "RestorationPlan", "build_restoration_plan"]


@dataclass
class RestoreGroup:
    """One restoration quantum: the tensors of one (fused) compute op."""

    group_id: int
    tensors: List[TensorMeta]
    #: op ids whose parameters live in this group (first = earliest).
    compute_op_ids: List[int]
    nominal_bytes: int = 0
    alloc_bytes: int = 0  # granule-aligned footprint in the region
    region_offset: int = 0  # byte offset of the group within the region

    @property
    def earliest_op(self) -> int:
        return self.compute_op_ids[0]

    @property
    def region_end(self) -> int:
        return self.region_offset + self.alloc_bytes


@dataclass
class RestorationPlan:
    graph: ComputationGraph
    granule: int
    groups: List[RestoreGroup] = field(default_factory=list)
    #: compute op id -> group that must be restored before it runs.
    group_for_op: Dict[int, int] = field(default_factory=dict)

    @property
    def total_alloc_bytes(self) -> int:
        return self.groups[-1].region_end if self.groups else 0

    @property
    def total_nominal_bytes(self) -> int:
        return sum(g.nominal_bytes for g in self.groups)

    @property
    def speculative_bytes(self) -> int:
        """Bytes prefetched beyond what a single inference activates
        (MoE experts, early-exit layers — the §4.1 limitation)."""
        model = self.graph.model
        if model.n_experts == 1:
            return 0
        unused = model.n_experts - model.experts_per_token
        per_layer = int(model.ffn_params_per_expert * model.bytes_per_param) * unused
        return per_layer * model.n_layers

    def groups_for_bytes(self, cached_bytes: int) -> int:
        """How many leading groups fit in ``cached_bytes`` of region."""
        count = 0
        for group in self.groups:
            if group.region_end <= cached_bytes:
                count += 1
            else:
                break
        return count

    def cached_prefix_bytes(self, n_groups: int) -> int:
        """Region bytes occupied by the first ``n_groups`` groups."""
        if n_groups <= 0:
            return 0
        if n_groups > len(self.groups):
            raise ConfigurationError("only %d groups in plan" % len(self.groups))
        return self.groups[n_groups - 1].region_end


def _round_up(value: int, granule: int) -> int:
    return -(-value // granule) * granule


def build_restoration_plan(
    graph: ComputationGraph,
    granule: int,
    fuse_below: Optional[int] = None,
) -> RestorationPlan:
    """Build the plan in the graph's topological order.

    ``fuse_below``: groups smaller than this (default: one granule) are
    fused into the next group, so norm tensors ride along with their
    layer's projection weights instead of wasting a granule each.
    """
    if granule <= 0:
        raise ConfigurationError("granule must be positive")
    fuse_threshold = granule if fuse_below is None else fuse_below
    plan = RestorationPlan(graph=graph, granule=granule)

    # Collect per-op tensor groups in topological order (first use wins).
    seen = set()
    raw: List[RestoreGroup] = []
    for op in graph.ops:
        fresh = [t for t in op.tensors if t.name not in seen]
        if not fresh:
            continue
        for tensor in fresh:
            seen.add(tensor.name)
        raw.append(
            RestoreGroup(
                group_id=-1,
                tensors=fresh,
                compute_op_ids=[op.op_id],
                nominal_bytes=sum(t.nominal_bytes for t in fresh),
            )
        )

    # Fuse small groups forward into their successor.
    fused: List[RestoreGroup] = []
    pending: Optional[RestoreGroup] = None
    for group in raw:
        if pending is not None:
            group.tensors = pending.tensors + group.tensors
            group.compute_op_ids = pending.compute_op_ids + group.compute_op_ids
            group.nominal_bytes += pending.nominal_bytes
            pending = None
        if group.nominal_bytes < fuse_threshold:
            pending = group
        else:
            fused.append(group)
    if pending is not None:
        if fused:
            last = fused[-1]
            last.tensors += pending.tensors
            last.compute_op_ids += pending.compute_op_ids
            last.nominal_bytes += pending.nominal_bytes
        else:
            fused.append(pending)

    # Assign layout.
    offset = 0
    for index, group in enumerate(fused):
        group.group_id = index
        group.alloc_bytes = _round_up(group.nominal_bytes, granule)
        group.region_offset = offset
        offset += group.alloc_bytes
        for op_id in group.compute_op_ids:
            plan.group_for_op[op_id] = index
    plan.groups = fused
    return plan
