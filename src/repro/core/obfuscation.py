"""Side-channel mitigations (§6): size and timing obfuscation.

The paper identifies two TZ-LLM-specific side channels — tensor sizes
leak through secure-memory scaling and delegated loads, and secure-job
execution times leak through REE scheduling — and notes they "could be
mitigated through orthogonal techniques such as dummy parameter loading
and dummy computation".  This module implements those techniques:

* :func:`apply_size_obfuscation` pads every restoration group to a
  common quantum (or to the largest group, for full uniformity): the REE
  then observes identical allocation extensions and identical load
  request sizes, at a memory/I/O cost the ablation bench quantifies.
* :func:`quantize_duration` rounds secure NPU job durations up to a
  quantum (dummy computation), hiding per-matmul timing structure.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .restore_graph import RestorationPlan

__all__ = ["apply_size_obfuscation", "quantize_duration"]


def _round_up(value: int, quantum: int) -> int:
    return -(-value // quantum) * quantum


def apply_size_obfuscation(plan: RestorationPlan, quantum: Optional[int] = None) -> RestorationPlan:
    """Pad the plan's groups in place; returns the plan.

    ``quantum=None`` pads every group to the size of the largest
    (fully uniform: the REE learns only the group *count*); an explicit
    quantum trades leakage granularity against padding overhead.
    Padded groups carry ``uniform_load=True`` so the restore backend
    issues a single fixed-size dummy-padded load per group.
    """
    if not plan.groups:
        return plan
    if quantum is None:
        quantum = max(group.alloc_bytes for group in plan.groups)
    if quantum <= 0 or quantum % plan.granule != 0:
        raise ConfigurationError(
            "quantum must be a positive multiple of the granule (%d)" % plan.granule
        )
    offset = 0
    for group in plan.groups:
        group.alloc_bytes = _round_up(max(group.alloc_bytes, plan.granule), quantum)
        group.region_offset = offset
        group.uniform_load = True  # type: ignore[attr-defined]
        offset += group.alloc_bytes
    return plan


def quantize_duration(duration: float, quantum: float) -> float:
    """Round a secure-job duration up to the timing quantum (dummy
    computation keeps the NPU busy until the boundary)."""
    if quantum <= 0:
        return duration
    import math

    return math.ceil(duration / quantum - 1e-12) * quantum
