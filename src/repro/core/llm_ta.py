"""The LLM trusted application: llama.cpp as a TA (§3.2, §5).

One TA instance owns two secure regions (§4.2):

* ``<model>:params`` — LLM parameters, grown by pipelined restoration in
  topological order, shrunk in reverse order after inference (partial
  parameter caching keeps a prefix resident);
* ``<model>:data`` — KV cache, activations, and NPU job execution
  contexts, allocated at inference start and fully released at the end.

An inference request runs: framework init (checkpoint restore, or cold
init on the first request) → KV/activation region setup → pipelined
prefill → decode loop with secure NPU jobs → data-region release and
cache-policy-driven parameter release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..config import PlatformSpec
from ..errors import ConfigurationError, StorageError
from ..faults.recovery import RecoveryPolicy
from ..hw.common import AddrRange
from ..llm.checkpoint import cold_init, restore_checkpoint, save_checkpoint
from ..llm.gguf import ModelContainer, container_path
from ..llm.graph import build_chunked_prefill_graph, build_prefill_graph
from ..llm.kv_cache import KVCache, PagedKVCache, PromptSpec
from ..llm.models import ModelSpec
from ..llm.runtime import (
    DecodeResult,
    GraphExecutor,
    NPUBackend,
    TEECoDriverNPUBackend,
    decode_tokens,
)
from ..llm.tokenizer import Tokenizer
from ..sim import Resource
from ..stack import Stack
from ..tee.secure_memory import SecureRegion
from ..tee.ta import TrustedApplication
from .backends import TEERestoreBackend
from .batch import BatchConfig, DecodeBatchEngine
from .caching import CachePolicy, FractionCachePolicy
from .pipeline import PipelineConfig, PipelineMetrics, PrefillPipeline
from .restore_graph import RestorationPlan, build_restoration_plan

__all__ = ["InferenceRecord", "LLMTA", "PreemptionGate"]


class PreemptionGate:
    """One request's preemption surface (the serving-scale Fig. 13 path).

    The gateway hands the TA a gate per dispatch; requesting it makes the
    decode loop stop at the next token boundary, after which the TA runs
    its normal release path (data region shrink, cache-policy parameter
    release) and returns a record marked ``preempted``.  Preemption is
    therefore always graceful: the TA stays serviceable and the cached
    parameter prefix survives for the victim's retry.

    The gate is callable so it can be passed directly as the decode
    loop's ``stop_hook``.
    """

    __slots__ = ("requested", "cause", "requested_at")

    def __init__(self):
        self.requested = False
        self.cause = None
        self.requested_at: Optional[float] = None

    def request(self, cause=None, at: Optional[float] = None) -> None:
        """Ask the running request to yield the TA (idempotent)."""
        if self.requested:
            return
        self.requested = True
        self.cause = cause
        self.requested_at = at

    def __call__(self) -> bool:
        return self.requested


@dataclass
class InferenceRecord:
    """What one inference request measured."""

    prompt_tokens: int
    output_tokens: int
    started_at: float
    ttft: float = 0.0
    init_time: float = 0.0
    data_setup_time: float = 0.0
    pipeline: Optional[PipelineMetrics] = None
    decode: Optional[DecodeResult] = None
    cached_groups: int = 0
    cached_bytes: int = 0
    release_time: float = 0.0
    world_switch_time: float = 0.0
    smc_count: int = 0
    #: number of mid-decode KV-region extensions (§4.2 growth).
    kv_growth_extends: int = 0
    #: §8 streaming-decode extension: bytes streamed per token and the
    #: number of prefetch sweeps issued.
    streamed_bytes_per_token: int = 0
    stream_sweeps: int = 0
    #: the request was preempted at a token boundary before finishing its
    #: decode (serving-gateway priority preemption); the partial decode is
    #: in ``decode`` and the TA ran its normal release path.
    preempted: bool = False
    #: batched-mode preemption: the sequence's KV block list was *parked*
    #: instead of released — its tokens survive, and the resumed attempt
    #: continues the same stream (no work was wasted).
    parked: bool = False
    #: this attempt resumed a previously parked sequence (prefill and the
    #: partial decode were inherited, not re-run).
    resumed: bool = False
    #: the request ran through the continuous-batching decode engine.
    batched: bool = False
    #: absolute sim time of the first token — for a resumed attempt this
    #: is the *original* attempt's TTFT instant, which ``started_at +
    #: ttft`` can no longer express.
    first_token_at: Optional[float] = None
    #: gateway identity from the request's TraceContext (None for direct
    #: CA invocations) — keys the profiler's decode-attribution rows.
    request_id: Optional[int] = None
    #: shared-prefix accounting (batched sharing path only): prompt
    #: tokens taken as whole-block tree hits (zero compute), tokens
    #: seeded by copy-on-write, and the miss suffix that really
    #: prefilled.  ``hit + cow + miss == prompt_tokens`` when sharing
    #: served the request.
    kv_hit_tokens: int = 0
    kv_cow_tokens: int = 0
    kv_miss_tokens: int = 0

    @property
    def decode_tokens_per_second(self) -> float:
        return self.decode.tokens_per_second if self.decode else 0.0

    @property
    def decode_attribution(self) -> Optional[dict]:
        """Summed per-component decode attribution (None without decode)."""
        if self.decode is None or not self.decode.attribution:
            return None
        return self.decode.attribution_totals()


class LLMTA(TrustedApplication):
    """The inference framework running as a TA (llama.cpp's role)."""

    def __init__(
        self,
        stack: Stack,
        model: ModelSpec,
        container: ModelContainer,
        max_tokens: int = 1024,
        use_checkpoint: bool = True,
        use_npu: Union[bool, str] = True,
        decode_use_npu: Union[bool, str] = "auto",
        pipeline_config: Optional[PipelineConfig] = None,
        cache_policy: Optional[CachePolicy] = None,
        size_obfuscation=None,
        npu_duration_quantum: float = 0.0,
        decode_param_residency: float = 1.0,
        recovery: Optional["RecoveryPolicy"] = None,
        batch_config: Optional[BatchConfig] = None,
    ):
        super().__init__("llm-ta:" + model.model_id)
        #: §6 mitigations: None = off, "uniform" = pad groups to the
        #: largest, int = pad to that quantum; and the secure-job timing
        #: quantum (0 = off).
        self.size_obfuscation = size_obfuscation
        self.npu_duration_quantum = npu_duration_quantum
        #: §8 future-work extension (parameter offloading a la
        #: LLM-in-a-flash): fraction of parameter bytes kept resident
        #: during *decoding*; the rest streams from flash every token,
        #: double-buffered against computation.  1.0 = the paper's
        #: deployed behaviour (everything resident while decoding).
        if not 0.0 < decode_param_residency <= 1.0:
            raise ConfigurationError("decode_param_residency must be in (0, 1]")
        self.decode_param_residency = decode_param_residency
        #: opt-in pipeline tracer (see :mod:`repro.sim.trace`).
        from ..sim.trace import NULL_TRACER

        self.tracer = NULL_TRACER
        #: observability attach points (repro.obs.instrument): a
        #: MetricsRegistry and FlightRecorder threaded into each prefill.
        self.metrics = None
        self.recorder = None
        self.stack = stack
        self.sim = stack.sim
        self.platform: PlatformSpec = stack.spec
        self.model = model
        self.container = container
        self.file_path = container_path(model.model_id)
        self.max_tokens = max_tokens
        self.use_checkpoint = use_checkpoint
        self.use_npu = use_npu
        self.decode_use_npu = decode_use_npu
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.recovery = recovery or RecoveryPolicy()
        self.cache_policy = cache_policy or FractionCachePolicy(0.0)
        self.tokenizer = Tokenizer(model.model_id, model.vocab)
        #: the aggregate big-cluster CPU row for decode-phase execution.
        self.cpu = Resource(stack.sim, capacity=1, priority=True, name="ta-cpu")
        self._initialized = False
        self._checkpoint_saved = False
        #: continuous-batching mode (repro.core.batch); the engine itself
        #: is wired by setup() once the data region exists.
        self.batch_config = batch_config
        self.batch_engine: Optional[DecodeBatchEngine] = None
        self._prefill_lock: Optional[Resource] = None
        if batch_config is not None:
            self._prefill_lock = Resource(
                stack.sim, capacity=1, name="prefill-lock:" + model.model_id
            )
        #: framework state is resident while the batch engine has work.
        self._framework_resident = False
        #: gateway-held KV block reservations awaiting their dispatch.
        self._kv_reservations: Dict[int, int] = {}
        #: the legacy (unbatched) path's live KV cache, if any — exposed
        #: through ``kv_bytes_in_use`` so leak regressions are observable.
        self._active_kv: Optional[KVCache] = None
        self.records: List[InferenceRecord] = []
        # Regions, plan and backend are wired by setup().
        self.plan: Optional[RestorationPlan] = None
        self.params_region: Optional[SecureRegion] = None
        self.data_region: Optional[SecureRegion] = None
        self.backend: Optional[TEERestoreBackend] = None
        self.model_key: Optional[bytes] = None
        self._npu_backend: Optional[NPUBackend] = None

    # ------------------------------------------------------------------
    # one-time setup (TA install + secure regions + key unwrap)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        stack = self.stack
        tee_os = stack.tee_os
        tee_os.install_ta(self)
        granule = stack.kernel.db.granule
        planning_graph = build_prefill_graph(self.model, self.container.tensors, 1, use_npu=False)
        self.plan = build_restoration_plan(planning_graph, granule)
        if self.size_obfuscation is not None:
            from .obfuscation import apply_size_obfuscation

            quantum = None if self.size_obfuscation == "uniform" else int(self.size_obfuscation)
            apply_size_obfuscation(self.plan, quantum)

        params_cma = stack.kernel.cma_regions[self._region_name("params")]
        if params_cma.size_bytes < self.plan.total_alloc_bytes:
            raise ConfigurationError(
                "params CMA region too small: %d < %d"
                % (params_cma.size_bytes, self.plan.total_alloc_bytes)
            )
        self.params_region = tee_os.create_secure_region(
            self,
            self._region_name("params"),
            self._region_name("params"),
            params_cma.base_addr,
            params_cma.size_bytes,
            granule,
        )
        data_cma = stack.kernel.cma_regions[self._region_name("data")]
        self.data_region = tee_os.create_secure_region(
            self,
            self._region_name("data"),
            self._region_name("data"),
            data_cma.base_addr,
            data_cma.size_bytes,
            granule,
        )
        # The NPU may access exactly the two job-context regions (§4.3).
        stack.tee_npu.allowed_slots = [
            self.params_region.tzasc_slot,
            self.data_region.tzasc_slot,
        ]
        self.model_key = tee_os.unwrap_key_for(
            self, self.container.wrapped_key, self.model.model_id
        )
        self.backend = TEERestoreBackend(
            self.sim,
            self.platform,
            self.params_region,
            stack.tz_driver,
            self.container,
            self.file_path,
            self.model_key,
        )
        if self.batch_config is not None:
            self.batch_engine = DecodeBatchEngine(self, self.batch_config)

    def _region_name(self, kind: str) -> str:
        return "%s:%s" % (self.model.model_id, kind)

    @staticmethod
    def cma_requirements(
        model: ModelSpec,
        container: ModelContainer,
        granule: int,
        max_tokens: int,
        size_obfuscation=None,
        batch_config: Optional[BatchConfig] = None,
    ):
        """(params_bytes, data_bytes) the kernel must reserve at boot."""
        planning_graph = build_prefill_graph(model, container.tensors, 1, use_npu=False)
        plan = build_restoration_plan(planning_graph, granule)
        if size_obfuscation is not None:
            from .obfuscation import apply_size_obfuscation

            quantum = None if size_obfuscation == "uniform" else int(size_obfuscation)
            apply_size_obfuscation(plan, quantum)
        if batch_config is None:
            data = model.kv_bytes(max_tokens) + model.activation_bytes(max_tokens) + 4096
        else:
            # Batched layout: job ctx + worst-case activation scratch,
            # then the full KV block budget.
            budget = batch_config.resolved_budget(max_tokens)
            block_bytes = model.kv_bytes(batch_config.block_tokens)
            data = 4096 + model.activation_bytes(max_tokens) + budget * block_bytes
        data = -(-data // granule) * granule
        return plan.total_alloc_bytes, data

    # ------------------------------------------------------------------
    # cache state
    # ------------------------------------------------------------------
    @property
    def cached_groups(self) -> int:
        if self.plan is None or self.params_region is None:
            return 0
        return self.plan.groups_for_bytes(self.params_region.protected)

    @property
    def kv_bytes_in_use(self) -> int:
        """Logical KV footprint across both decode paths: the legacy
        path's live cache plus every pool block (active *and* parked).
        The leak-regression tests pin this to zero after any faulted
        inference."""
        total = 0
        if self._active_kv is not None:
            total += self._active_kv.bytes_used
        if self.batch_engine is not None:
            total += self.batch_engine.pool.bytes_used
        return total

    # ------------------------------------------------------------------
    # batched-mode admission surface (called synchronously by dispatch)
    # ------------------------------------------------------------------
    def kv_can_admit(
        self, prompt_tokens: int, output_tokens: int, request_id=None, spec=None
    ) -> bool:
        if self.batch_engine is None:
            return True
        return self.batch_engine.can_admit(prompt_tokens, output_tokens, request_id, spec)

    def kv_reserve(
        self, request_id: int, prompt_tokens: int, output_tokens: int, spec=None
    ) -> None:
        """Hold the request's worst-case block count from dispatch until
        its attempt builds (or resumes) its paged cache.  With sharing
        and a :class:`PromptSpec`, only the predicted non-shared block
        count is held."""
        if self.batch_engine is None:
            return
        blocks = self.batch_engine.reserve(prompt_tokens, output_tokens, request_id, spec)
        if blocks:
            self._kv_reservations[request_id] = blocks

    def flush_kv_cache(self):
        """Drop every cached-but-unreferenced KV block (generator):
        flush the prefix tree, then shrink the data region if the TA is
        now fully drained.  Returns the number of residencies dropped."""
        if self.batch_engine is None or self.batch_engine.tree is None:
            return 0
        dropped = self.batch_engine.tree.flush()
        yield from self.batch_engine.maybe_release_region()
        return dropped

    # ------------------------------------------------------------------
    # the inference entry point
    # ------------------------------------------------------------------
    def infer(
        self,
        prompt_tokens: int,
        output_tokens: int = 0,
        preempt: Optional[PreemptionGate] = None,
        ctx=None,
        prompt: Optional[PromptSpec] = None,
    ):
        """Serve one inference request (generator; returns the record).

        ``preempt`` — an optional :class:`PreemptionGate`; when requested
        mid-decode, the request stops at the next token boundary, marks
        its record ``preempted``, and releases transient memory normally.

        ``ctx`` — an optional :class:`~repro.obs.TraceContext`: the
        request's identity from the serving gateway, threaded into the
        prefill pipeline so its flow events link the gateway arrival to
        the TEE-lane spans that served it.

        ``prompt`` — an optional :class:`PromptSpec` describing the
        prompt's shareable structure.  Only the batched engine with
        ``prefix_sharing`` uses it: matching whole blocks are taken from
        the prefix tree by reference and only the miss suffix prefills.
        """
        if self.plan is None:
            raise ConfigurationError("setup() was not called")
        if prompt_tokens + output_tokens > self.max_tokens:
            raise ConfigurationError("request exceeds max_tokens")
        if prompt is not None and prompt.prompt_tokens != prompt_tokens:
            raise ConfigurationError(
                "prompt spec covers %d tokens but the request claims %d"
                % (prompt.prompt_tokens, prompt_tokens)
            )
        sim = self.sim
        record = InferenceRecord(
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            started_at=sim.now,
            cached_groups=self.cached_groups,
            cached_bytes=self.params_region.protected,
            request_id=None if ctx is None else ctx.request_id,
        )
        if self.batch_engine is not None:
            record = yield from self._infer_batched(
                prompt_tokens, output_tokens, preempt, ctx, record, prompt
            )
            return record
        switch_t0 = self.stack.tee_npu.world_switch_time
        smc0 = self.stack.board.monitor.smc_count

        # --- framework init -------------------------------------------------
        t0 = sim.now
        yield from self._init_framework()
        record.init_time = sim.now - t0

        # --- KV cache + activations (second TZASC region, §4.2) -------------
        # The region starts sized for the prompt's KV plus the fixed
        # buffers; it *grows during decoding* as tokens are generated and
        # is fully released afterwards (the Fig. 7b data-region pattern).
        t0 = sim.now
        granule = self.data_region.granule
        fixed_bytes = self.model.activation_bytes(max(prompt_tokens, 1)) + 4096
        data_bytes = fixed_bytes + self.model.kv_bytes(prompt_tokens)
        data_bytes = -(-data_bytes // granule) * granule
        yield from self.data_region.extend_allocated(data_bytes, threads=4)
        yield from self.data_region.extend_protected(data_bytes)
        yield sim.timeout(self.platform.timing.kv_activation_alloc)
        record.data_setup_time = sim.now - t0
        act_bytes = self.model.activation_bytes(max(prompt_tokens, 1))
        job_ctx = AddrRange(self.data_region.base_addr + act_bytes, 4096)
        self._npu_backend = TEECoDriverNPUBackend(
            self.stack.tee_npu,
            job_ctx,
            duration_quantum=self.npu_duration_quantum,
            job_timeout=self.recovery.npu_job_timeout,
            max_reissues=self.recovery.npu_max_reissues,
        )

        def grow_kv(kv):
            """Extend the data region as the KV cache outgrows it."""
            needed = fixed_bytes + self.model.kv_bytes(kv.tokens + 1)
            if needed > self.data_region.allocated:
                delta = -(-(needed - self.data_region.allocated) // granule) * granule
                yield from self.data_region.extend_allocated(delta, threads=1)
                yield from self.data_region.extend_protected(delta)
                record.kv_growth_extends += 1

        # --- pipelined prefill ----------------------------------------------
        graph = build_prefill_graph(
            self.model,
            self.container.tensors,
            prompt_tokens,
            use_npu=self.use_npu,
            platform=self.platform,
        )
        pipeline = PrefillPipeline(
            sim,
            self.platform,
            graph,
            self.plan,
            self.backend,
            self._npu_backend,
            cached_groups=record.cached_groups,
            config=self.pipeline_config,
            recovery=self.recovery,
            tracer=self.tracer,
            registry=self.metrics,
            recorder=self.recorder,
            ctx=ctx,
        )
        kv: Optional[KVCache] = None
        try:
            try:
                record.pipeline = yield from pipeline.run()
                record.ttft = sim.now - record.started_at
                record.first_token_at = sim.now

                # --- decode ---------------------------------------------------
                if output_tokens > 0:
                    executor = GraphExecutor(sim, self.platform, self.cpu, self._npu_backend)
                    kv = KVCache(self.model, self.max_tokens)
                    self._active_kv = kv
                    kv.init_prompt(prompt_tokens)
                    hook = grow_kv
                    if self.decode_param_residency < 1.0:
                        hook = yield from self._enter_streaming_decode(record, grow_kv)
                    record.decode = yield from decode_tokens(
                        executor,
                        self.model,
                        self.container.tensors,
                        kv,
                        output_tokens,
                        use_npu=self.decode_use_npu,
                        grow_hook=hook,
                        stop_hook=preempt,
                    )
                    record.preempted = record.decode.stopped_early
            except Exception:
                # Failed restoration (I/O error, Iago detection): release
                # all transient memory so the TA stays serviceable, then
                # surface the error to the CA.
                yield from self._recover()
                raise
        finally:
            # The KV capacity must come back on *every* exit — success,
            # preemption, or a fault thrown out of the decode loop (TEE
            # job hang, watchdog ABANDONED, mid-decode OutOfMemory).
            if kv is not None:
                kv.reset()
            self._active_kv = None

        # --- release ----------------------------------------------------------
        t0 = sim.now
        yield from self.data_region.shrink_all()
        keep_bytes = self.cache_policy.bytes_to_keep(self)
        keep_groups = self.plan.groups_for_bytes(keep_bytes)
        keep = self.plan.cached_prefix_bytes(keep_groups)
        yield from self.backend.release_to(keep)
        record.release_time = sim.now - t0

        record.world_switch_time = self.stack.tee_npu.world_switch_time - switch_t0
        record.smc_count = self.stack.board.monitor.smc_count - smc0
        totals = record.decode_attribution
        if totals is not None and self.metrics is not None:
            counter = self.metrics.counter(
                "decode_attribution_seconds_total",
                "Decode latency per component (cpu/npu_compute/smc/sched_wait)",
            )
            for component, value in sorted(totals.items()):
                counter.inc(value, component=component)
        self.records.append(record)
        return record

    def _infer_batched(self, prompt_tokens, output_tokens, preempt, ctx, record, prompt=None):
        """The continuous-batching request path (generator).

        Without sharing, prefill serializes through the TA's prefill
        lock (one §4.1 restoration pipeline at a time); decode joins the
        shared :class:`~repro.core.batch.DecodeBatchEngine` and
        co-executes with every other in-flight sequence.  With
        ``prefix_sharing`` and a :class:`PromptSpec`, the prompt's
        blocks are taken through the prefix tree first — whole-block
        hits by reference, divergent tails copy-on-write — and only the
        miss suffix computes: on a fully-cached TA it runs as bounded
        chunks *inside* the decode batch (no prefill lock at all), and
        on a cold TA the restoration pipeline prices just the chunked
        miss-suffix graph.  Preemption evicts from the batch and *parks*
        the KV block list keyed by the gateway request id; the resumed
        attempt skips init and any completed prefill and continues the
        parked stream.  Block release is guaranteed exactly once by the
        try/finally — unless the sequence parked, in which case the
        checkpoint owns the blocks until resume.
        """
        sim = self.sim
        engine = self.batch_engine
        record.batched = True
        request_id = record.request_id
        parked = None
        if request_id is not None:
            # Look up only: rejoin() owns the exactly-once removal from
            # the parked map (atomically with the checkpoint restore).
            parked = engine.parked.get(request_id)
        reserved = 0
        if request_id is not None and parked is None:
            reserved = self._kv_reservations.pop(request_id, 0)
        sharing = engine.tree is not None and prompt is not None and parked is None
        engine.inflight += 1
        kv: Optional[PagedKVCache] = None
        parked_out = False
        seq = None
        if request_id is not None:
            # Owner attribution for the memory timeline: the tenant
            # rides in on the cross-world trace context.
            tenant = getattr(ctx, "tenant", None) or "-"
            owner = "%s/r%s" % (tenant, request_id)
        else:
            owner = ""
        try:
            if parked is not None:
                record.resumed = True
                record.ttft = parked.ttft
                record.first_token_at = parked.first_token_at or None
                kv = parked.kv
                seq = engine.rejoin(parked, gate=preempt)
                yield seq.done
            elif sharing and self._framework_resident and (
                self.cached_groups >= len(self.plan.groups)
            ):
                # Hot path: every parameter group is resident, so there
                # is nothing to restore and nothing serializes on the
                # prefill lock.  Shared blocks arrive by reference; the
                # miss suffix prefills as chunks inside the decode batch.
                kv = PagedKVCache(engine.pool, reserved_blocks=reserved, owner=owner)
                reserved = 0  # the cache owns the hold now
                share = kv.init_prompt_shared(prompt, engine.tree)
                record.kv_hit_tokens = share.hit_tokens
                record.kv_cow_tokens = share.cow_tokens
                record.kv_miss_tokens = share.miss_tokens
                t0 = sim.now
                yield from engine.ensure_backing()
                yield sim.timeout(self.platform.timing.kv_activation_alloc)
                record.data_setup_time = sim.now - t0
                record.cached_groups = self.cached_groups
                record.cached_bytes = self.params_region.protected
                if output_tokens > 0 or share.miss_tokens > 0:
                    seq = engine.join(
                        kv,
                        prompt_tokens,
                        output_tokens,
                        gate=preempt,
                        request_id=request_id,
                        prefill_tokens=share.miss_tokens,
                    )
                    yield seq.done
                else:
                    # Fully shared prompt-only request: resident is done.
                    record.ttft = sim.now - record.started_at
                    record.first_token_at = sim.now
            else:
                lock_request = self._prefill_lock.request()
                yield lock_request
                try:
                    t0 = sim.now
                    if not self._framework_resident:
                        yield from self._init_framework()
                        self._framework_resident = True
                    record.init_time = sim.now - t0
                    t0 = sim.now
                    yield from engine.ensure_backing()  # job ctx + scratch
                    yield sim.timeout(self.platform.timing.kv_activation_alloc)
                    record.data_setup_time = sim.now - t0
                    # Re-snapshot the cache state *under the lock*: a
                    # concurrent request's pipeline may have loaded (and
                    # protected) groups since this record was created,
                    # and re-loading a protected group would trap.
                    record.cached_groups = self.cached_groups
                    record.cached_bytes = self.params_region.protected
                    if sharing:
                        # Take the shared blocks first so the pipeline
                        # only prices the miss suffix (restoration still
                        # overlaps what compute remains).
                        kv = PagedKVCache(
                            engine.pool, reserved_blocks=reserved, owner=owner
                        )
                        reserved = 0
                        share = kv.init_prompt_shared(prompt, engine.tree)
                        record.kv_hit_tokens = share.hit_tokens
                        record.kv_cow_tokens = share.cow_tokens
                        record.kv_miss_tokens = share.miss_tokens
                        graph = build_chunked_prefill_graph(
                            self.model,
                            self.container.tensors,
                            max(share.miss_tokens, 1),
                            context_tokens=(
                                share.hit_tokens + share.cow_tokens
                                if share.miss_tokens
                                else 0
                            ),
                            use_npu=self.use_npu,
                            platform=self.platform,
                        )
                    else:
                        graph = build_prefill_graph(
                            self.model,
                            self.container.tensors,
                            prompt_tokens,
                            use_npu=self.use_npu,
                            platform=self.platform,
                        )
                    pipeline = PrefillPipeline(
                        sim,
                        self.platform,
                        graph,
                        self.plan,
                        self.backend,
                        engine._backend(),
                        cached_groups=record.cached_groups,
                        config=self.pipeline_config,
                        recovery=self.recovery,
                        tracer=self.tracer,
                        registry=self.metrics,
                        recorder=self.recorder,
                        ctx=ctx,
                    )
                    try:
                        record.pipeline = yield from pipeline.run()
                    except Exception:
                        yield from self._recover_batched()
                        raise
                finally:
                    self._prefill_lock.release(lock_request)
                record.ttft = sim.now - record.started_at
                record.first_token_at = sim.now
                if kv is None:
                    kv = PagedKVCache(engine.pool, reserved_blocks=reserved, owner=owner)
                    reserved = 0  # the cache owns the hold now
                    kv.init_prompt(prompt_tokens)
                yield from engine.ensure_backing()
                if output_tokens > 0:
                    seq = engine.join(
                        kv,
                        prompt_tokens,
                        output_tokens,
                        gate=preempt,
                        request_id=request_id,
                    )
                    yield seq.done
            if seq is not None:
                if seq.state == "failed":
                    raise seq.error
                if record.first_token_at is None and seq.prefill_done_at is not None:
                    # Chunked in-batch prefill: TTFT anchors on the
                    # moment the prompt became fully resident.
                    record.ttft = seq.prefill_done_at - record.started_at
                    record.first_token_at = seq.prefill_done_at
                record.decode = seq.result(stopped_early=(seq.state == "evicted"))
                if seq.state == "evicted":
                    record.preempted = True
                    if request_id is not None and request_id in engine.parked:
                        record.parked = True
                        checkpoint = engine.parked[request_id]
                        checkpoint.ttft = record.ttft
                        if record.first_token_at is not None:
                            checkpoint.first_token_at = record.first_token_at
                        parked_out = True
            if (
                kv is not None
                and engine.tree is not None
                and not parked_out
                and (seq is None or seq.state == "finished")
            ):
                # Publish the prompt-span residencies only after the
                # miss suffix really prefilled — a faulted or evicted
                # attempt must not poison the tree.
                kv.publish(engine.tree)
        finally:
            engine.inflight -= 1
            if reserved:
                # The attempt died before its cache consumed the hold.
                engine.pool.cancel_reservation(
                    reserved,
                    owner="" if request_id is None else "r%s" % request_id,
                )
            if kv is not None and not parked_out:
                kv.release()
            yield from engine.maybe_release_region()

        # --- drain-time release (params stay resident while any other
        # sequence — active, waiting, or parked — still needs them) -----
        t0 = sim.now
        if (
            engine.inflight == 0
            and not engine.active
            and not engine.waiting
            and not engine.parked
        ):
            self._framework_resident = False
            keep_bytes = self.cache_policy.bytes_to_keep(self)
            keep_groups = self.plan.groups_for_bytes(keep_bytes)
            keep = self.plan.cached_prefix_bytes(keep_groups)
            yield from self.backend.release_to(keep)
        record.release_time = sim.now - t0

        totals = record.decode_attribution
        if totals is not None and self.metrics is not None:
            counter = self.metrics.counter(
                "decode_attribution_seconds_total",
                "Decode latency per component (cpu/npu_compute/smc/sched_wait)",
            )
            for component, value in sorted(totals.items()):
                counter.inc(value, component=component)
        self.records.append(record)
        return record

    def _recover_batched(self):
        """Error-path cleanup for the batched TA (generator): a failed
        restoration releases its own transient state, but parameters
        other in-flight sequences are decoding against must survive —
        only a fully idle TA can be swept clean."""
        yield from self.params_region.release_unprotected_tail()
        if self.batch_engine.inflight == 1 and self.batch_engine.pool.used_blocks == 0:
            self._framework_resident = False
            yield from self.backend.release_to(0)

    def _enter_streaming_decode(self, record: "InferenceRecord", grow_kv):
        """Shrink parameter memory to the residency target and return a
        per-token hook that streams + decrypts the evicted suffix,
        double-buffered against the current token's computation
        (generator; the §8 offloading extension)."""
        sim = self.sim
        plan = self.plan
        target = int(plan.total_alloc_bytes * self.decode_param_residency)
        keep_groups = plan.groups_for_bytes(target)
        keep_bytes = plan.cached_prefix_bytes(keep_groups)
        streamed_nominal = sum(
            g.nominal_bytes for g in plan.groups[keep_groups:]
        )
        t0 = sim.now
        yield from self.backend.release_to(keep_bytes)
        record.release_time += sim.now - t0
        record.streamed_bytes_per_token = streamed_nominal
        fs = self.stack.kernel.fs
        decrypt_seconds = self.backend.decrypt_duration(streamed_nominal, 4)

        def stream_once():
            # Flash I/O for the evicted suffix (one sweep), then decrypt.
            yield from fs.read(self.file_path, 0, 0, nominal=streamed_nominal)
            request = self.cpu.request()
            yield request
            try:
                yield sim.timeout(decrypt_seconds)
            finally:
                self.cpu.release(request)

        state = {"pending": None}

        def streaming_hook(kv):
            yield from grow_kv(kv)
            if streamed_nominal == 0:
                return
            # This token needs its sweep complete before computing: the
            # first token fetches synchronously; later tokens wait on the
            # prefetch issued during the previous token.
            if state["pending"] is None:
                yield sim.process(stream_once(), name="decode-stream")
            else:
                yield state["pending"]
            # Prefetch the next token's sweep so it overlaps computation.
            state["pending"] = sim.process(stream_once(), name="decode-stream")
            record.stream_sweeps += 1

        return streaming_hook

    def _recover(self):
        """Error-path cleanup (generator): drop the data region and all
        parameter memory.  A failed restoration may have protected a
        group whose decryption never ran, so no prefix can be trusted as
        plaintext cache — release everything and start clean."""
        yield from self.data_region.shrink_all()
        yield from self.params_region.release_unprotected_tail()
        yield from self.backend.release_to(0)

    def _init_framework(self):
        timing = self.platform.timing
        fs = self.stack.kernel.fs
        if self.use_checkpoint:
            if not self._checkpoint_saved:
                # First-ever start: cold init, then persist the state.
                yield from cold_init(self.sim, timing)
                yield from save_checkpoint(
                    self.sim,
                    timing,
                    fs,
                    self.model.model_id,
                    self.model_key,
                    len(self.container.tensors),
                )
                self._checkpoint_saved = True
            else:
                attempts = self.recovery.flash_read_attempts
                for attempt in range(1, attempts + 1):
                    try:
                        yield from restore_checkpoint(
                            self.sim, timing, fs, self.model.model_id, self.model_key
                        )
                        break
                    except StorageError:
                        if attempt == attempts:
                            raise
                        if self.recorder is not None:
                            self.recorder.record(
                                "retry", "ta.checkpoint_restore",
                                "retrying checkpoint restore",
                                attempt=attempt, of=attempts,
                            )
                        yield self.sim.timeout(self.recovery.backoff(attempt))
        else:
            yield from cold_init(self.sim, timing)
        self._initialized = True

    # ------------------------------------------------------------------
    # memory-pressure interface (the REE may ask for memory back, §4.1)
    # ------------------------------------------------------------------
    def revoke_cache(self, target_bytes: int):
        """Shrink the cached parameter prefix to ``target_bytes``
        (generator; called on REE memory pressure)."""
        groups = self.plan.groups_for_bytes(target_bytes)
        keep = self.plan.cached_prefix_bytes(groups)
        yield from self.backend.release_to(keep)
