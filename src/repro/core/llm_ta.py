"""The LLM trusted application: llama.cpp as a TA (§3.2, §5).

One TA instance owns two secure regions (§4.2):

* ``<model>:params`` — LLM parameters, grown by pipelined restoration in
  topological order, shrunk in reverse order after inference (partial
  parameter caching keeps a prefix resident);
* ``<model>:data`` — KV cache, activations, and NPU job execution
  contexts, allocated at inference start and fully released at the end.

An inference request runs: framework init (checkpoint restore, or cold
init on the first request) → KV/activation region setup → pipelined
prefill → decode loop with secure NPU jobs → data-region release and
cache-policy-driven parameter release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..config import PlatformSpec
from ..errors import ConfigurationError, StorageError
from ..faults.recovery import RecoveryPolicy
from ..hw.common import AddrRange
from ..llm.checkpoint import cold_init, restore_checkpoint, save_checkpoint
from ..llm.gguf import ModelContainer, container_path
from ..llm.graph import build_prefill_graph
from ..llm.kv_cache import KVCache
from ..llm.models import ModelSpec
from ..llm.runtime import (
    DecodeResult,
    GraphExecutor,
    NPUBackend,
    TEECoDriverNPUBackend,
    decode_tokens,
)
from ..llm.tokenizer import Tokenizer
from ..sim import Resource
from ..stack import Stack
from ..tee.secure_memory import SecureRegion
from ..tee.ta import TrustedApplication
from .backends import TEERestoreBackend
from .caching import CachePolicy, FractionCachePolicy
from .pipeline import PipelineConfig, PipelineMetrics, PrefillPipeline
from .restore_graph import RestorationPlan, build_restoration_plan

__all__ = ["InferenceRecord", "LLMTA", "PreemptionGate"]


class PreemptionGate:
    """One request's preemption surface (the serving-scale Fig. 13 path).

    The gateway hands the TA a gate per dispatch; requesting it makes the
    decode loop stop at the next token boundary, after which the TA runs
    its normal release path (data region shrink, cache-policy parameter
    release) and returns a record marked ``preempted``.  Preemption is
    therefore always graceful: the TA stays serviceable and the cached
    parameter prefix survives for the victim's retry.

    The gate is callable so it can be passed directly as the decode
    loop's ``stop_hook``.
    """

    __slots__ = ("requested", "cause", "requested_at")

    def __init__(self):
        self.requested = False
        self.cause = None
        self.requested_at: Optional[float] = None

    def request(self, cause=None, at: Optional[float] = None) -> None:
        """Ask the running request to yield the TA (idempotent)."""
        if self.requested:
            return
        self.requested = True
        self.cause = cause
        self.requested_at = at

    def __call__(self) -> bool:
        return self.requested


@dataclass
class InferenceRecord:
    """What one inference request measured."""

    prompt_tokens: int
    output_tokens: int
    started_at: float
    ttft: float = 0.0
    init_time: float = 0.0
    data_setup_time: float = 0.0
    pipeline: Optional[PipelineMetrics] = None
    decode: Optional[DecodeResult] = None
    cached_groups: int = 0
    cached_bytes: int = 0
    release_time: float = 0.0
    world_switch_time: float = 0.0
    smc_count: int = 0
    #: number of mid-decode KV-region extensions (§4.2 growth).
    kv_growth_extends: int = 0
    #: §8 streaming-decode extension: bytes streamed per token and the
    #: number of prefetch sweeps issued.
    streamed_bytes_per_token: int = 0
    stream_sweeps: int = 0
    #: the request was preempted at a token boundary before finishing its
    #: decode (serving-gateway priority preemption); the partial decode is
    #: in ``decode`` and the TA ran its normal release path.
    preempted: bool = False
    #: gateway identity from the request's TraceContext (None for direct
    #: CA invocations) — keys the profiler's decode-attribution rows.
    request_id: Optional[int] = None

    @property
    def decode_tokens_per_second(self) -> float:
        return self.decode.tokens_per_second if self.decode else 0.0

    @property
    def decode_attribution(self) -> Optional[dict]:
        """Summed per-component decode attribution (None without decode)."""
        if self.decode is None or not self.decode.attribution:
            return None
        return self.decode.attribution_totals()


class LLMTA(TrustedApplication):
    """The inference framework running as a TA (llama.cpp's role)."""

    def __init__(
        self,
        stack: Stack,
        model: ModelSpec,
        container: ModelContainer,
        max_tokens: int = 1024,
        use_checkpoint: bool = True,
        use_npu: Union[bool, str] = True,
        decode_use_npu: Union[bool, str] = "auto",
        pipeline_config: Optional[PipelineConfig] = None,
        cache_policy: Optional[CachePolicy] = None,
        size_obfuscation=None,
        npu_duration_quantum: float = 0.0,
        decode_param_residency: float = 1.0,
        recovery: Optional["RecoveryPolicy"] = None,
    ):
        super().__init__("llm-ta:" + model.model_id)
        #: §6 mitigations: None = off, "uniform" = pad groups to the
        #: largest, int = pad to that quantum; and the secure-job timing
        #: quantum (0 = off).
        self.size_obfuscation = size_obfuscation
        self.npu_duration_quantum = npu_duration_quantum
        #: §8 future-work extension (parameter offloading a la
        #: LLM-in-a-flash): fraction of parameter bytes kept resident
        #: during *decoding*; the rest streams from flash every token,
        #: double-buffered against computation.  1.0 = the paper's
        #: deployed behaviour (everything resident while decoding).
        if not 0.0 < decode_param_residency <= 1.0:
            raise ConfigurationError("decode_param_residency must be in (0, 1]")
        self.decode_param_residency = decode_param_residency
        #: opt-in pipeline tracer (see :mod:`repro.sim.trace`).
        from ..sim.trace import NULL_TRACER

        self.tracer = NULL_TRACER
        #: observability attach points (repro.obs.instrument): a
        #: MetricsRegistry and FlightRecorder threaded into each prefill.
        self.metrics = None
        self.recorder = None
        self.stack = stack
        self.sim = stack.sim
        self.platform: PlatformSpec = stack.spec
        self.model = model
        self.container = container
        self.file_path = container_path(model.model_id)
        self.max_tokens = max_tokens
        self.use_checkpoint = use_checkpoint
        self.use_npu = use_npu
        self.decode_use_npu = decode_use_npu
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.recovery = recovery or RecoveryPolicy()
        self.cache_policy = cache_policy or FractionCachePolicy(0.0)
        self.tokenizer = Tokenizer(model.model_id, model.vocab)
        #: the aggregate big-cluster CPU row for decode-phase execution.
        self.cpu = Resource(stack.sim, capacity=1, priority=True, name="ta-cpu")
        self._initialized = False
        self._checkpoint_saved = False
        self.records: List[InferenceRecord] = []
        # Regions, plan and backend are wired by setup().
        self.plan: Optional[RestorationPlan] = None
        self.params_region: Optional[SecureRegion] = None
        self.data_region: Optional[SecureRegion] = None
        self.backend: Optional[TEERestoreBackend] = None
        self.model_key: Optional[bytes] = None
        self._npu_backend: Optional[NPUBackend] = None

    # ------------------------------------------------------------------
    # one-time setup (TA install + secure regions + key unwrap)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        stack = self.stack
        tee_os = stack.tee_os
        tee_os.install_ta(self)
        granule = stack.kernel.db.granule
        planning_graph = build_prefill_graph(self.model, self.container.tensors, 1, use_npu=False)
        self.plan = build_restoration_plan(planning_graph, granule)
        if self.size_obfuscation is not None:
            from .obfuscation import apply_size_obfuscation

            quantum = None if self.size_obfuscation == "uniform" else int(self.size_obfuscation)
            apply_size_obfuscation(self.plan, quantum)

        params_cma = stack.kernel.cma_regions[self._region_name("params")]
        if params_cma.size_bytes < self.plan.total_alloc_bytes:
            raise ConfigurationError(
                "params CMA region too small: %d < %d"
                % (params_cma.size_bytes, self.plan.total_alloc_bytes)
            )
        self.params_region = tee_os.create_secure_region(
            self,
            self._region_name("params"),
            self._region_name("params"),
            params_cma.base_addr,
            params_cma.size_bytes,
            granule,
        )
        data_cma = stack.kernel.cma_regions[self._region_name("data")]
        self.data_region = tee_os.create_secure_region(
            self,
            self._region_name("data"),
            self._region_name("data"),
            data_cma.base_addr,
            data_cma.size_bytes,
            granule,
        )
        # The NPU may access exactly the two job-context regions (§4.3).
        stack.tee_npu.allowed_slots = [
            self.params_region.tzasc_slot,
            self.data_region.tzasc_slot,
        ]
        self.model_key = tee_os.unwrap_key_for(
            self, self.container.wrapped_key, self.model.model_id
        )
        self.backend = TEERestoreBackend(
            self.sim,
            self.platform,
            self.params_region,
            stack.tz_driver,
            self.container,
            self.file_path,
            self.model_key,
        )

    def _region_name(self, kind: str) -> str:
        return "%s:%s" % (self.model.model_id, kind)

    @staticmethod
    def cma_requirements(
        model: ModelSpec,
        container: ModelContainer,
        granule: int,
        max_tokens: int,
        size_obfuscation=None,
    ):
        """(params_bytes, data_bytes) the kernel must reserve at boot."""
        planning_graph = build_prefill_graph(model, container.tensors, 1, use_npu=False)
        plan = build_restoration_plan(planning_graph, granule)
        if size_obfuscation is not None:
            from .obfuscation import apply_size_obfuscation

            quantum = None if size_obfuscation == "uniform" else int(size_obfuscation)
            apply_size_obfuscation(plan, quantum)
        data = model.kv_bytes(max_tokens) + model.activation_bytes(max_tokens) + 4096
        data = -(-data // granule) * granule
        return plan.total_alloc_bytes, data

    # ------------------------------------------------------------------
    # cache state
    # ------------------------------------------------------------------
    @property
    def cached_groups(self) -> int:
        if self.plan is None or self.params_region is None:
            return 0
        return self.plan.groups_for_bytes(self.params_region.protected)

    # ------------------------------------------------------------------
    # the inference entry point
    # ------------------------------------------------------------------
    def infer(
        self,
        prompt_tokens: int,
        output_tokens: int = 0,
        preempt: Optional[PreemptionGate] = None,
        ctx=None,
    ):
        """Serve one inference request (generator; returns the record).

        ``preempt`` — an optional :class:`PreemptionGate`; when requested
        mid-decode, the request stops at the next token boundary, marks
        its record ``preempted``, and releases transient memory normally.

        ``ctx`` — an optional :class:`~repro.obs.TraceContext`: the
        request's identity from the serving gateway, threaded into the
        prefill pipeline so its flow events link the gateway arrival to
        the TEE-lane spans that served it.
        """
        if self.plan is None:
            raise ConfigurationError("setup() was not called")
        if prompt_tokens + output_tokens > self.max_tokens:
            raise ConfigurationError("request exceeds max_tokens")
        sim = self.sim
        record = InferenceRecord(
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            started_at=sim.now,
            cached_groups=self.cached_groups,
            cached_bytes=self.params_region.protected,
            request_id=None if ctx is None else ctx.request_id,
        )
        switch_t0 = self.stack.tee_npu.world_switch_time
        smc0 = self.stack.board.monitor.smc_count

        # --- framework init -------------------------------------------------
        t0 = sim.now
        yield from self._init_framework()
        record.init_time = sim.now - t0

        # --- KV cache + activations (second TZASC region, §4.2) -------------
        # The region starts sized for the prompt's KV plus the fixed
        # buffers; it *grows during decoding* as tokens are generated and
        # is fully released afterwards (the Fig. 7b data-region pattern).
        t0 = sim.now
        granule = self.data_region.granule
        fixed_bytes = self.model.activation_bytes(max(prompt_tokens, 1)) + 4096
        data_bytes = fixed_bytes + self.model.kv_bytes(prompt_tokens)
        data_bytes = -(-data_bytes // granule) * granule
        yield from self.data_region.extend_allocated(data_bytes, threads=4)
        yield from self.data_region.extend_protected(data_bytes)
        yield sim.timeout(self.platform.timing.kv_activation_alloc)
        record.data_setup_time = sim.now - t0
        act_bytes = self.model.activation_bytes(max(prompt_tokens, 1))
        job_ctx = AddrRange(self.data_region.base_addr + act_bytes, 4096)
        self._npu_backend = TEECoDriverNPUBackend(
            self.stack.tee_npu,
            job_ctx,
            duration_quantum=self.npu_duration_quantum,
            job_timeout=self.recovery.npu_job_timeout,
            max_reissues=self.recovery.npu_max_reissues,
        )

        def grow_kv(kv):
            """Extend the data region as the KV cache outgrows it."""
            needed = fixed_bytes + self.model.kv_bytes(kv.tokens + 1)
            if needed > self.data_region.allocated:
                delta = -(-(needed - self.data_region.allocated) // granule) * granule
                yield from self.data_region.extend_allocated(delta, threads=1)
                yield from self.data_region.extend_protected(delta)
                record.kv_growth_extends += 1

        # --- pipelined prefill ----------------------------------------------
        graph = build_prefill_graph(
            self.model,
            self.container.tensors,
            prompt_tokens,
            use_npu=self.use_npu,
            platform=self.platform,
        )
        pipeline = PrefillPipeline(
            sim,
            self.platform,
            graph,
            self.plan,
            self.backend,
            self._npu_backend,
            cached_groups=record.cached_groups,
            config=self.pipeline_config,
            recovery=self.recovery,
            tracer=self.tracer,
            registry=self.metrics,
            recorder=self.recorder,
            ctx=ctx,
        )
        try:
            record.pipeline = yield from pipeline.run()
            record.ttft = sim.now - record.started_at

            # --- decode -------------------------------------------------------
            if output_tokens > 0:
                executor = GraphExecutor(sim, self.platform, self.cpu, self._npu_backend)
                kv = KVCache(self.model, self.max_tokens)
                kv.init_prompt(prompt_tokens)
                hook = grow_kv
                if self.decode_param_residency < 1.0:
                    hook = yield from self._enter_streaming_decode(record, grow_kv)
                record.decode = yield from decode_tokens(
                    executor,
                    self.model,
                    self.container.tensors,
                    kv,
                    output_tokens,
                    use_npu=self.decode_use_npu,
                    grow_hook=hook,
                    stop_hook=preempt,
                )
                record.preempted = record.decode.stopped_early
        except Exception:
            # Failed restoration (I/O error, Iago detection): release all
            # transient memory so the TA stays serviceable, then surface
            # the error to the CA.
            yield from self._recover()
            raise

        # --- release ----------------------------------------------------------
        t0 = sim.now
        yield from self.data_region.shrink_all()
        keep_bytes = self.cache_policy.bytes_to_keep(self)
        keep_groups = self.plan.groups_for_bytes(keep_bytes)
        keep = self.plan.cached_prefix_bytes(keep_groups)
        yield from self.backend.release_to(keep)
        record.release_time = sim.now - t0

        record.world_switch_time = self.stack.tee_npu.world_switch_time - switch_t0
        record.smc_count = self.stack.board.monitor.smc_count - smc0
        totals = record.decode_attribution
        if totals is not None and self.metrics is not None:
            counter = self.metrics.counter(
                "decode_attribution_seconds_total",
                "Decode latency per component (cpu/npu_compute/smc/sched_wait)",
            )
            for component, value in sorted(totals.items()):
                counter.inc(value, component=component)
        self.records.append(record)
        return record

    def _enter_streaming_decode(self, record: "InferenceRecord", grow_kv):
        """Shrink parameter memory to the residency target and return a
        per-token hook that streams + decrypts the evicted suffix,
        double-buffered against the current token's computation
        (generator; the §8 offloading extension)."""
        sim = self.sim
        plan = self.plan
        target = int(plan.total_alloc_bytes * self.decode_param_residency)
        keep_groups = plan.groups_for_bytes(target)
        keep_bytes = plan.cached_prefix_bytes(keep_groups)
        streamed_nominal = sum(
            g.nominal_bytes for g in plan.groups[keep_groups:]
        )
        t0 = sim.now
        yield from self.backend.release_to(keep_bytes)
        record.release_time += sim.now - t0
        record.streamed_bytes_per_token = streamed_nominal
        fs = self.stack.kernel.fs
        decrypt_seconds = self.backend.decrypt_duration(streamed_nominal, 4)

        def stream_once():
            # Flash I/O for the evicted suffix (one sweep), then decrypt.
            yield from fs.read(self.file_path, 0, 0, nominal=streamed_nominal)
            request = self.cpu.request()
            yield request
            try:
                yield sim.timeout(decrypt_seconds)
            finally:
                self.cpu.release(request)

        state = {"pending": None}

        def streaming_hook(kv):
            yield from grow_kv(kv)
            if streamed_nominal == 0:
                return
            # This token needs its sweep complete before computing: the
            # first token fetches synchronously; later tokens wait on the
            # prefetch issued during the previous token.
            if state["pending"] is None:
                yield sim.process(stream_once(), name="decode-stream")
            else:
                yield state["pending"]
            # Prefetch the next token's sweep so it overlaps computation.
            state["pending"] = sim.process(stream_once(), name="decode-stream")
            record.stream_sweeps += 1

        return streaming_hook

    def _recover(self):
        """Error-path cleanup (generator): drop the data region and all
        parameter memory.  A failed restoration may have protected a
        group whose decryption never ran, so no prefix can be trusted as
        plaintext cache — release everything and start clean."""
        yield from self.data_region.shrink_all()
        yield from self.params_region.release_unprotected_tail()
        yield from self.backend.release_to(0)

    def _init_framework(self):
        timing = self.platform.timing
        fs = self.stack.kernel.fs
        if self.use_checkpoint:
            if not self._checkpoint_saved:
                # First-ever start: cold init, then persist the state.
                yield from cold_init(self.sim, timing)
                yield from save_checkpoint(
                    self.sim,
                    timing,
                    fs,
                    self.model.model_id,
                    self.model_key,
                    len(self.container.tensors),
                )
                self._checkpoint_saved = True
            else:
                attempts = self.recovery.flash_read_attempts
                for attempt in range(1, attempts + 1):
                    try:
                        yield from restore_checkpoint(
                            self.sim, timing, fs, self.model.model_id, self.model_key
                        )
                        break
                    except StorageError:
                        if attempt == attempts:
                            raise
                        if self.recorder is not None:
                            self.recorder.record(
                                "retry", "ta.checkpoint_restore",
                                "retrying checkpoint restore",
                                attempt=attempt, of=attempts,
                            )
                        yield self.sim.timeout(self.recovery.backoff(attempt))
        else:
            yield from cold_init(self.sim, timing)
        self._initialized = True

    # ------------------------------------------------------------------
    # memory-pressure interface (the REE may ask for memory back, §4.1)
    # ------------------------------------------------------------------
    def revoke_cache(self, target_bytes: int):
        """Shrink the cached parameter prefix to ``target_bytes``
        (generator; called on REE memory pressure)."""
        groups = self.plan.groups_for_bytes(target_bytes)
        keep = self.plan.cached_prefix_bytes(groups)
        yield from self.backend.release_to(keep)
