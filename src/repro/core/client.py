"""Client application (CA) API: text in, text out, sessions, queueing.

The REE-facing surface of the system: applications open a session to the
LLM TA, submit *text* prompts (tokenized with the model's tokenizer) and
receive decoded text plus the inference record.  The TA serves one
request at a time — concurrent submissions queue in arrival order, as
the single-TA deployment of the paper would behave — and per-session
statistics aggregate the records.

This is also where the shadow-thread activation cost is charged: each
request enters the TEE through one CA→TA invocation.

For many concurrent tenants with priority classes, admission control and
SLO accounting, see :mod:`repro.serve` — the serving gateway builds on
this same submit path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError
from ..sim import Event, Resource
from ..sim.trace import NULL_TRACER
from .llm_ta import InferenceRecord
from .system import TZLLM

__all__ = ["ChatReply", "ClientSession", "ClientApp"]


@dataclass
class ChatReply:
    session_id: int
    request_id: int
    text: str
    record: Optional[InferenceRecord]
    #: when the request was submitted (entered the CA queue).
    arrived_at: float = 0.0
    #: when the CA→TA invocation actually started (queue grant).
    dispatched_at: float = 0.0
    #: when the last token (or the prefill, for 0-token requests) landed.
    finished_at: float = 0.0
    #: failure provenance: the exception type name that killed the
    #: request and the simulated time it surfaced (None on success).
    error: Optional[str] = None
    failed_at: Optional[float] = None

    @property
    def failed(self) -> bool:
        """The request died inside the TA instead of completing."""
        return self.error is not None

    @property
    def ttft(self) -> float:
        return self.record.ttft if self.record else 0.0

    @property
    def queue_wait(self) -> float:
        """Time spent waiting behind other requests for the TA."""
        return self.dispatched_at - self.arrived_at

    @property
    def e2e_latency(self) -> float:
        """Arrival to completion: queue wait + invocation + inference."""
        return self.finished_at - self.arrived_at

    @property
    def tokens_per_second(self) -> float:
        return self.record.decode_tokens_per_second if self.record else 0.0


class ClientSession:
    """One application's session with the LLM TA."""

    def __init__(self, app: "ClientApp", session_id: int):
        self.app = app
        self.session_id = session_id
        self.replies: List[ChatReply] = []
        self.closed = False

    # ------------------------------------------------------------------
    def ask(self, prompt_text: str, max_new_tokens: int = 32):
        """Submit a prompt (generator; returns a :class:`ChatReply`)."""
        if self.closed:
            raise ConfigurationError("session %d is closed" % self.session_id)
        reply = yield from self.app._submit(self, prompt_text, max_new_tokens)
        return reply

    def ask_blocking(self, prompt_text: str, max_new_tokens: int = 32) -> ChatReply:
        """Convenience wrapper that drives the simulator to completion."""
        proc = self.app.system.sim.process(self.ask(prompt_text, max_new_tokens))
        return self.app.system.sim.run_until(proc)

    def close(self) -> None:
        self.closed = True

    # ------------------------------------------------------------------
    @property
    def total_tokens_generated(self) -> int:
        return sum(len(r.record.decode.token_ids) for r in self.replies if r.record.decode)

    @property
    def mean_ttft(self) -> float:
        if not self.replies:
            return 0.0
        return sum(r.ttft for r in self.replies) / len(self.replies)


class ClientApp:
    """The client application: owns sessions and the TA request queue.

    ``tracer`` (optional) records each request's queue wait and CA→TA
    invocation as spans on the ``gateway`` lane, next to the prefill
    pipeline's hardware-lane spans.
    """

    def __init__(self, system: TZLLM, tracer=None):
        self.system = system
        self.sim = system.sim
        self.tracer = tracer or NULL_TRACER
        self._session_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        #: one request in the TEE at a time (single LLM TA instance).
        self._ta_lock = Resource(self.sim, capacity=1, name="llm-ta-queue")
        self.sessions: List[ClientSession] = []
        self.requests_served = 0
        self.queue_wait_time = 0.0
        #: failure provenance: one record-less :class:`ChatReply` per
        #: request that died in the TA (the exception still propagates).
        self.failed_replies: List[ChatReply] = []

    def open_session(self) -> ClientSession:
        session = ClientSession(self, next(self._session_ids))
        self.sessions.append(session)
        return session

    @property
    def queue_depth(self) -> int:
        return self._ta_lock.queued

    def _submit(self, session: ClientSession, prompt_text: str, max_new_tokens: int):
        if max_new_tokens < 0:
            raise ConfigurationError("max_new_tokens must be non-negative")
        tokenizer = self.system.ta.tokenizer
        prompt_tokens = tokenizer.encode(prompt_text)
        request_id = next(self._request_ids)
        enqueued_at = self.sim.now
        grant = self._ta_lock.request()
        yield grant
        dispatched_at = self.sim.now
        self.queue_wait_time += dispatched_at - enqueued_at
        self.tracer.record(
            "gateway", "queue r%d" % request_id, enqueued_at, lane="gateway"
        )
        try:
            record = yield from self.system.infer(len(prompt_tokens), max_new_tokens)
        except Exception as exc:
            self.failed_replies.append(
                ChatReply(
                    session_id=session.session_id,
                    request_id=request_id,
                    text="",
                    record=None,
                    arrived_at=enqueued_at,
                    dispatched_at=dispatched_at,
                    finished_at=self.sim.now,
                    error=type(exc).__name__,
                    failed_at=self.sim.now,
                )
            )
            raise
        finally:
            self._ta_lock.release(grant)
        self.tracer.record(
            "gateway", "invoke r%d" % request_id, dispatched_at, lane="gateway"
        )
        text = tokenizer.decode(record.decode.token_ids) if record.decode else ""
        reply = ChatReply(
            session_id=session.session_id,
            request_id=request_id,
            text=text,
            record=record,
            arrived_at=enqueued_at,
            dispatched_at=dispatched_at,
            finished_at=self.sim.now,
        )
        session.replies.append(reply)
        self.requests_served += 1
        return reply
