"""TEE-managed synchronization + shadow threads (§3.2).

Traditional TEEs give a TA one thread; TZ-LLM pairs each TA thread with a
*shadow thread* in the client application, scheduled by the REE.  Because
the REE scheduler is untrusted, it may resume TA threads in any order — so
the synchronization primitives (and the thread contexts) live in the TEE
OS.  A TA thread resumed "too early" by a malicious scheduler simply
blocks inside the TEE on the primitive; the execution order the TA
requested is preserved regardless of REE scheduling (the CPU-thread Iago
defense of §6).

The primitives are thin wrappers over simulator resources/events with
holder validation, plus an activation-latency charge for the CA→TA smc
hop on each shadow-thread start.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ProtocolError
from ..sim import Event, Process, Resource, Simulator

__all__ = ["TEEMutex", "TEECondition", "ShadowThreadPool"]


class TEEMutex:
    """Mutual exclusion with TEE-side holder bookkeeping."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)
        self._holder: Optional[object] = None
        self._holder_req = None

    def acquire(self, who: object):
        """Generator: blocks until the mutex is held by ``who``."""
        req = self._res.request()
        yield req
        self._holder = who
        self._holder_req = req

    def release(self, who: object) -> None:
        if self._holder is not who:
            raise ProtocolError(
                "%r releasing mutex %s held by %r" % (who, self.name, self._holder)
            )
        req, self._holder_req = self._holder_req, None
        self._holder = None
        self._res.release(req)

    @property
    def holder(self) -> Optional[object]:
        return self._holder


class TEECondition:
    """Condition variable whose wait queue lives in the TEE."""

    def __init__(self, sim: Simulator, name: str = "cond"):
        self.sim = sim
        self.name = name
        self._waiters: list = []

    def wait(self):
        event = self.sim.event()
        self._waiters.append(event)
        return event  # caller yields it

    def notify_all(self) -> int:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
        return len(waiters)


class ShadowThreadPool:
    """Spawns TA threads, charging the shadow-thread activation smc cost."""

    def __init__(self, sim: Simulator, activation_latency: float):
        self.sim = sim
        self.activation_latency = activation_latency
        self.activations = 0

    def spawn(self, generator, name: str = "ta-thread") -> Process:
        self.activations += 1

        def wrapped():
            yield self.sim.timeout(self.activation_latency)
            result = yield self.sim.process(generator, name=name)
            return result

        return self.sim.process(wrapped(), name="shadow:" + name)
