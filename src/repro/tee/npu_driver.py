"""The TEE data-plane NPU co-driver (§4.3; ~1 kLoC in the prototype).

The minimal closure integrated into the TEE: initializing secure job
execution contexts, launching jobs over MMIO, and handling completion
interrupts.  Everything else (scheduling, power, frequency) is outsourced
to the untrusted REE control plane and *verified*:

* a take-over is accepted only for a job that was **initialized but not
  yet issued to the hardware** (blocks arbitrary-launch and replay);
* each job carries a monotonic sequence number checked against the
  execution counter (blocks reordering);
* the secure-mode switch follows the paper's strict order — ❶ TZPC closes
  the NPU's MMIO to the REE and the GIC reroutes its interrupt, ❷ the
  driver waits for any in-flight non-secure job, ❸ only then does the
  TZASC open the job-context regions to the NPU.  Running steps out of
  order is possible via ``unsafe_skip_wait_idle`` so the security tests
  can demonstrate the DMA attack the ordering prevents.

The driver runs in TEE user mode: its only privileges are the NPU MMIO
mapping and the TZASC grants on the job-context regions it is given.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import IagoViolation, ProtocolError, WatchdogTimeout
from ..hw.common import World
from ..hw.npu import NPU, NPUJob
from ..hw.platform import Board
from ..sim import Event, Simulator
from .watchdog import ServiceWatchdog

__all__ = ["SecureJobState", "SecureJobRecord", "TEENPUDriver"]

#: stale-take-over SMC return code (graceful decline, not a violation).
TAKE_OVER_DECLINED = -1


class SecureJobState(enum.Enum):
    """Lifecycle of a secure NPU job (the replay-prevention state)."""

    INITIALIZED = "initialized"
    ISSUED = "issued"  # shadow job handed to the REE scheduler
    RUNNING = "running"
    DONE = "done"
    #: the watchdog gave up on this shadow hand-off and re-issued the job
    #: under a new shadow id; a late take-over for it is declined.
    ABANDONED = "abandoned"


@dataclass
class SecureJobRecord:
    shadow_id: int
    seq: int
    job: NPUJob
    state: SecureJobState
    completion: Event


class TEENPUDriver:
    """The TEE data-plane co-driver: launch, verify, switch worlds."""

    def __init__(
        self,
        sim: Simulator,
        board: Board,
        allowed_slots: Optional[List[int]] = None,
        reinit_on_switch: bool = False,
    ):
        """``allowed_slots``: TZASC slots the NPU may access during secure
        jobs (the job-context regions of §4.2).  ``reinit_on_switch``
        models the rejected detach-attach design (32 ms per hand-off)."""
        self.sim = sim
        self.board = board
        self.npu: NPU = board.npu
        self.allowed_slots: List[int] = list(allowed_slots or [])
        self.reinit_on_switch = reinit_on_switch
        self._records: Dict[int, SecureJobRecord] = {}
        self._shadow_ids = itertools.count(1)
        self._issue_seq = itertools.count(0)
        self._exec_seq = 0
        self._irq_done: Optional[Event] = None
        self.secure_jobs_completed = 0
        self.take_over_rejections = 0
        self.world_switch_time = 0.0
        self.world_switches = 0
        #: recovery machinery: the watchdog bounds every wait on the REE
        #: scheduler; re-issues stay on the same sequence number.
        self.watchdog = ServiceWatchdog(sim)
        self.reissues = 0
        self.stale_take_over_declines = 0
        #: fault site ``tee.job_hang`` (repro.faults): completion delayed
        #: after the IRQ (device-side hang).
        self.fault_injector = None
        self.job_hangs = 0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None
        #: attack/ablation switches
        self.unsafe_skip_wait_idle = False
        board.gic.attach_handler(World.SECURE, self.npu.irq, self._on_irq)
        board.monitor.register("tee.npu_take_over", self._handle_take_over)

    def _note_job(self, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "tee_npu_jobs_total", "Secure NPU job outcomes at the co-driver"
            ).inc(outcome=outcome)

    def _note_switch(self, elapsed: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "tee_npu_world_switch_seconds_total",
                "Wall time spent entering/leaving secure NPU mode",
            ).inc(elapsed)

    # ------------------------------------------------------------------
    # TA-facing API
    # ------------------------------------------------------------------
    def submit_secure_job(self, job: NPUJob, timeout: Optional[float] = None, max_reissues: int = 2):
        """Run ``job`` securely (generator; returns the completed job).

        Initializes the execution context, issues a paired shadow job to
        the REE scheduler, and waits for the take-over/completion cycle.

        With ``timeout`` set, the wait is watchdog-guarded: if the REE
        never presents the take-over (stalled scheduler, dropped SMC),
        the stale shadow is abandoned and the job re-issued — at the
        *same* sequence number, under a new shadow id — up to
        ``max_reissues`` times before :class:`WatchdogTimeout` surfaces.
        A job already ``RUNNING`` on the device is never re-issued; the
        watchdog keeps waiting (bounded) for its completion instead.
        """
        record = self.init_job(job)
        yield from self.issue_job(record)
        if timeout is None:
            yield record.completion
            return record.job
        reissues = 0
        # Bound RUNNING-state waits too, so a genuinely wedged device
        # cannot hang the simulated clock.
        patience = 2 * (max_reissues + 1)
        while True:
            ok, _value = yield from self.watchdog.guard(
                record.completion, timeout, "ree.npu_scheduler"
            )
            if ok:
                return record.job
            if self.metrics is not None:
                self.metrics.counter(
                    "tee_npu_watchdog_fires_total", "Watchdog expirations on REE waits"
                ).inc()
            if self.recorder is not None:
                self.recorder.record(
                    "retry", "tee.npu_watchdog", "watchdog fired on shadow hand-off",
                    shadow_id=record.shadow_id, seq=record.seq,
                    state=record.state.value, reissues=reissues,
                )
            if record.state is SecureJobState.ISSUED and reissues < max_reissues:
                reissues += 1
                record = self.reissue_job(record)
                yield from self.issue_job(record)
                continue
            if record.state is SecureJobState.RUNNING and patience > 0:
                patience -= 1  # on the device: a hang resolves, wait more
                continue
            raise WatchdogTimeout(
                "secure job %d (seq %d) incomplete after %d re-issues in state %s"
                % (record.shadow_id, record.seq, reissues, record.state.value)
            )

    def init_job(self, job: NPUJob) -> SecureJobRecord:
        """Step 1: register the execution context (not yet schedulable)."""
        record = SecureJobRecord(
            shadow_id=next(self._shadow_ids),
            seq=next(self._issue_seq),
            job=job,
            state=SecureJobState.INITIALIZED,
            completion=self.sim.event(),
        )
        self._records[record.shadow_id] = record
        return record

    def issue_job(self, record: SecureJobRecord):
        """Step 2: hand the paired shadow job to the REE scheduler."""
        if record.state is not SecureJobState.INITIALIZED:
            raise ProtocolError("job %d issued twice" % record.shadow_id)
        record.state = SecureJobState.ISSUED
        yield from self.board.monitor.smc(
            World.SECURE, "ree.npu_submit_shadow", record.shadow_id, record.seq
        )

    def reissue_job(self, record: SecureJobRecord) -> SecureJobRecord:
        """Abandon a lost shadow hand-off; pair the job with a fresh one.

        Replay safety: the new record keeps the job's *original* sequence
        number (the job never executed, so ``_exec_seq`` never advanced)
        and shares its completion event.  The abandoned shadow id stays
        registered so a late take-over for it is *declined* — while a
        replayed take-over for an executed (DONE) job still raises
        :class:`IagoViolation` exactly as before.
        """
        if record.state is not SecureJobState.ISSUED:
            raise ProtocolError(
                "cannot re-issue job %d in state %s"
                % (record.shadow_id, record.state.value)
            )
        record.state = SecureJobState.ABANDONED
        replacement = SecureJobRecord(
            shadow_id=next(self._shadow_ids),
            seq=record.seq,
            job=record.job,
            state=SecureJobState.INITIALIZED,
            completion=record.completion,
        )
        self._records[replacement.shadow_id] = replacement
        self.reissues += 1
        self._note_job("abandoned")
        return replacement

    # ------------------------------------------------------------------
    # take-over path (SMC handler, called by the REE scheduler)
    # ------------------------------------------------------------------
    def _handle_take_over(self, shadow_id: int, seq: int):
        record = self._records.get(shadow_id)
        if record is None:
            self.take_over_rejections += 1
            self._note_job("rejected")
            if self.recorder is not None:
                self.recorder.record(
                    "security", "tee.npu_take_over", "unknown shadow id",
                    shadow_id=shadow_id,
                )
            raise IagoViolation("take-over for unknown secure job %d" % shadow_id)
        if record.state is SecureJobState.ABANDONED:
            # Not an attack: the watchdog re-issued this job and a late
            # REE scheduler is presenting the stale shadow.  Decline
            # without launching anything — the replacement shadow (same
            # seq) drives the job.
            self.stale_take_over_declines += 1
            self._note_job("declined")
            return TAKE_OVER_DECLINED
        if record.state is not SecureJobState.ISSUED:
            self.take_over_rejections += 1
            self._note_job("rejected")
            if self.recorder is not None:
                self.recorder.record(
                    "security", "tee.npu_take_over", "replay or premature launch",
                    shadow_id=shadow_id, state=record.state.value,
                )
            raise IagoViolation(
                "take-over for job %d in state %s (replay or premature launch)"
                % (shadow_id, record.state.value)
            )
        if seq != record.seq or record.seq != self._exec_seq:
            self.take_over_rejections += 1
            self._note_job("rejected")
            if self.recorder is not None:
                self.recorder.record(
                    "security", "tee.npu_take_over", "sequence check failed",
                    shadow_id=shadow_id, presented=seq, expected=self._exec_seq,
                )
            raise IagoViolation(
                "sequence check failed: presented %d, record %d, expected %d"
                % (seq, record.seq, self._exec_seq)
            )
        record.state = SecureJobState.RUNNING
        yield from self._enter_secure_mode()
        self._irq_done = self.sim.event()
        self.npu.launch(World.SECURE, record.job)
        completed = yield self._irq_done
        self._irq_done = None
        if self.fault_injector is not None:
            hang = self.fault_injector.stall_delay("tee.job_hang")
            if hang > 0:
                # Device-side hang: the job finished but the completion
                # path wedges for a while (the record stays RUNNING, so
                # the watchdog waits rather than re-issuing).
                self.job_hangs += 1
                if self.recorder is not None:
                    self.recorder.record(
                        "fault", "tee.job_hang", "completion path wedged",
                        shadow_id=shadow_id, stall=hang,
                    )
                yield self.sim.timeout(hang)
        yield from self._leave_secure_mode()
        self._exec_seq += 1
        record.state = SecureJobState.DONE
        self.secure_jobs_completed += 1
        self._note_job("completed")
        record.completion.succeed(completed)
        return shadow_id

    def _on_irq(self, irq: int, job: NPUJob) -> None:
        if self._irq_done is not None and not self._irq_done.triggered:
            self._irq_done.succeed(job)

    # ------------------------------------------------------------------
    # secure-mode switching (ordering is the security argument)
    # ------------------------------------------------------------------
    def _enter_secure_mode(self):
        sim = self.sim
        tz = self.board.spec.trustzone
        start = sim.now
        if self.reinit_on_switch:
            yield sim.timeout(self.npu.spec.driver_reinit_time)
        # (1) Close the NPU's MMIO to the REE and reroute its interrupt:
        # no *new* non-secure job can be launched from here on.
        self.board.tzpc.set_secure(World.SECURE, self.npu.name, True)
        yield sim.timeout(tz.tzpc_config_time)
        self.board.gic.set_group(World.SECURE, self.npu.irq, World.SECURE)
        yield sim.timeout(tz.gic_config_time)
        if self.unsafe_skip_wait_idle:
            # WRONG ORDER (attack demo): grant the NPU access to secure
            # memory while a previously-launched non-secure job may still
            # be in flight — its DMA will land in secure memory.
            for slot in self.allowed_slots:
                self.board.tzasc.allow_device(World.SECURE, slot, self.npu.name)
            yield sim.timeout(tz.tzasc_config_time)
            yield self.npu.wait_idle()
        else:
            # (2) Drain any job the REE launched before we closed the door.
            yield self.npu.wait_idle()
            # (3) Only now open the job-context regions to the NPU.
            for slot in self.allowed_slots:
                self.board.tzasc.allow_device(World.SECURE, slot, self.npu.name)
            yield sim.timeout(tz.tzasc_config_time)
        elapsed = sim.now - start
        self.world_switch_time += elapsed
        self.world_switches += 1
        self._note_switch(elapsed)

    def _leave_secure_mode(self):
        sim = self.sim
        tz = self.board.spec.trustzone
        start = sim.now
        for slot in self.allowed_slots:
            self.board.tzasc.revoke_device(World.SECURE, slot, self.npu.name)
        yield sim.timeout(tz.tzasc_config_time)
        self.board.gic.set_group(World.SECURE, self.npu.irq, World.NONSECURE)
        yield sim.timeout(tz.gic_config_time)
        self.board.tzpc.set_secure(World.SECURE, self.npu.name, False)
        yield sim.timeout(tz.tzpc_config_time)
        if self.reinit_on_switch:
            yield sim.timeout(self.npu.spec.driver_reinit_time)
        elapsed = sim.now - start
        self.world_switch_time += elapsed
        self._note_switch(elapsed)
