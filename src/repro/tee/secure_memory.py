"""Pipeline-aware secure memory: the "extend and shrink" interface (§4.2).

A :class:`SecureRegion` binds one TZASC slot to one REE CMA region and one
TA.  Its life cycle follows the paper exactly:

* ``extend_allocated`` — the TEE asks the REE TZ driver to allocate the
  next contiguous CMA blocks (memory ballooning).  The TEE *verifies* that
  the address the untrusted REE returned is exactly adjacent to the
  previously allocated blocks — the CMA Iago defense (§6).  The new memory
  is allocated but **not yet protected**, so the REE filesystem can DMA
  encrypted parameters straight into it (no bounce buffer).
* ``extend_protected`` — the TZASC region end moves forward to cover the
  allocated bytes and the range is mapped into the TA's address space.
  From this instant non-secure masters lose access.
* ``shrink`` — from the end only (reverse topological release order keeps
  the region contiguous): sensitive bytes are scrubbed, the range is
  unmapped, the TZASC end moves back, and the blocks return to the CMA.

All sizes are in granule multiples (the CMA's allocation unit).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError, IagoViolation, MemoryError_
from ..hw.common import AddrRange, World
from .ta import TrustedApplication

__all__ = ["SecureRegion"]


class SecureRegion:
    """One TZASC region bound to one CMA region and one TA."""

    def __init__(
        self,
        tee_os,  # TEEOS; untyped to avoid an import cycle
        ta: TrustedApplication,
        name: str,
        tzasc_slot: int,
        cma_name: str,
        base_addr: int,
        capacity: int,
        granule: int,
    ):
        self.tee_os = tee_os
        self.ta = ta
        self.name = name
        self.tzasc_slot = tzasc_slot
        self.cma_name = cma_name
        self.base_addr = base_addr
        self.capacity = capacity
        self.granule = granule
        self.allocated = 0  # bytes ballooned in from the CMA
        self.protected = 0  # bytes covered by the TZASC region (<= allocated)
        self._slot_active = False
        #: memory-timeline attach point (repro.obs.memory): name-level
        #: attribution layered over the raw TZASC slot events.
        self.timeline = None

    # ------------------------------------------------------------------
    @property
    def allocated_end(self) -> int:
        return self.base_addr + self.allocated

    @property
    def protected_end(self) -> int:
        return self.base_addr + self.protected

    @property
    def protected_range(self) -> AddrRange:
        return AddrRange(self.base_addr, self.protected)

    def _check_granule(self, n_bytes: int) -> None:
        if n_bytes <= 0 or n_bytes % self.granule != 0:
            raise ConfigurationError(
                "size %d is not a positive multiple of granule %d" % (n_bytes, self.granule)
            )

    # ------------------------------------------------------------------
    def extend_allocated(self, n_bytes: int, threads: int = 1):
        """Balloon ``n_bytes`` in from the REE CMA (generator).

        Returns the :class:`AddrRange` of the newly allocated (still
        unprotected) memory.
        """
        self._check_granule(n_bytes)
        if self.allocated + n_bytes > self.capacity:
            raise MemoryError_(
                "region %s: %d + %d exceeds capacity %d"
                % (self.name, self.allocated, n_bytes, self.capacity)
            )
        expected = self.allocated_end
        addr = yield from self.tee_os.tz_call(
            "ree.cma_alloc", self.cma_name, expected, n_bytes, threads
        )
        # Iago defense: the untrusted REE chose the address; verify it.
        if addr != expected:
            raise IagoViolation(
                "CMA returned 0x%x, expected contiguous 0x%x" % (addr, expected)
            )
        self.allocated += n_bytes
        return AddrRange(expected, n_bytes)

    def extend_protected(self, n_bytes: int):
        """Move the TZASC end over ``n_bytes`` of allocated memory
        (generator).  Maps the new range into the TA's address space."""
        self._check_granule(n_bytes)
        if self.protected + n_bytes > self.allocated:
            raise MemoryError_(
                "region %s: protecting %d beyond allocated %d"
                % (self.name, self.protected + n_bytes, self.allocated)
            )
        new_range = AddrRange(self.protected_end, n_bytes)
        yield from self.tee_os.program_tzasc(self, self.protected + n_bytes)
        self.protected += n_bytes
        self.tee_os.map_into_ta(self.ta, new_range)
        if self.timeline is not None:
            self.timeline.note_region_named(
                self.name, self.tzasc_slot, "protect", self.protected
            )
        return new_range

    def shrink(self, n_bytes: int):
        """Release ``n_bytes`` from the end back to the REE (generator)."""
        self._check_granule(n_bytes)
        if n_bytes > self.protected:
            raise MemoryError_(
                "region %s: shrinking %d below zero (protected %d)"
                % (self.name, n_bytes, self.protected)
            )
        if self.allocated != self.protected:
            raise MemoryError_(
                "region %s: shrink with unprotected allocated tail" % self.name
            )
        victim = AddrRange(self.protected_end - n_bytes, n_bytes)
        # Clear sensitive data before the REE can see the memory again.
        self.tee_os.scrub(victim)
        self.tee_os.unmap_from_ta(self.ta, victim)
        yield from self.tee_os.program_tzasc(self, self.protected - n_bytes)
        self.protected -= n_bytes
        self.allocated -= n_bytes
        if self.timeline is not None:
            self.timeline.note_region_named(
                self.name, self.tzasc_slot, "shrink", self.protected
            )
        yield from self.tee_os.tz_call("ree.cma_release", self.cma_name, n_bytes)

    def shrink_all(self):
        """Release the whole region (generator)."""
        yield from self.release_unprotected_tail()
        if self.protected:
            yield from self.shrink(self.protected)

    def release_unprotected_tail(self):
        """Return allocated-but-never-protected memory to the CMA
        (generator).  Needed on error paths: a failed restoration leaves
        a ballooned tail the TZASC never covered.  The tail only ever
        held REE-written ciphertext, so no scrub is required."""
        delta = self.allocated - self.protected
        if delta > 0:
            self.allocated -= delta
            yield from self.tee_os.tz_call("ree.cma_release", self.cma_name, delta)

    def offset_range(self, offset: int, size: int) -> AddrRange:
        """Address range at a byte offset within the region."""
        if offset < 0 or offset + size > self.capacity:
            raise ConfigurationError("offset range outside region capacity")
        return AddrRange(self.base_addr + offset, size)
