"""Trusted application base: an isolated address space plus entry points.

A TA owns a set of mapped physical ranges; the TEE OS rejects any TA
access outside them (address-space isolation, §6: a malicious TA cannot
read the LLM TA's parameters).  Real byte access goes through the TEE OS
accessors so the isolation is enforced functionally, not by convention.
"""

from __future__ import annotations

from typing import List

from ..hw.common import AddrRange

__all__ = ["TrustedApplication"]


class TrustedApplication:
    """A TA: a name plus the physical ranges mapped into it."""

    def __init__(self, name: str):
        self.name = name
        self.mapped: List[AddrRange] = []
        self.installed = False

    # The TEE OS mutates these; TAs only read.
    def _map(self, rng: AddrRange) -> None:
        self.mapped.append(rng)

    def _unmap(self, rng: AddrRange) -> None:
        self.mapped.remove(rng)

    def can_access(self, rng: AddrRange) -> bool:
        """True if ``rng`` lies entirely within the TA's mapped ranges.

        Mappings created by successive ``extend_protected`` calls are
        adjacent, so a range may be covered by several mapped pieces.
        """
        remaining = [rng]
        for mapped in self.mapped:
            next_remaining = []
            for piece in remaining:
                if not mapped.overlaps(piece):
                    next_remaining.append(piece)
                    continue
                if piece.base < mapped.base:
                    next_remaining.append(AddrRange(piece.base, mapped.base - piece.base))
                if piece.end > mapped.end:
                    next_remaining.append(AddrRange(mapped.end, piece.end - mapped.end))
            remaining = next_remaining
            if not remaining:
                return True
        return not remaining

    def __repr__(self) -> str:  # pragma: no cover
        return "TrustedApplication(%r, %d mappings)" % (self.name, len(self.mapped))
