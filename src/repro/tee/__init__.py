"""The TEE software stack: TEE OS, TAs, secure memory, NPU co-driver.

See :mod:`repro.tee.os` for the kernel, :mod:`repro.tee.secure_memory`
for the extend-and-shrink interface (§4.2), :mod:`repro.tee.npu_driver`
for the data-plane co-driver (§4.3), and :mod:`repro.tee.sync` for
TEE-managed synchronization (§3.2).
"""

from .attestation import AttestationService, DeviceAttestor, ModelProvider, Quote
from .boot import BootChain, BootImage, TAVerifier
from .ipc import IPCPort, IPCRouter
from .npu_driver import SecureJobRecord, SecureJobState, TEENPUDriver
from .os import TEEOS
from .secure_memory import SecureRegion
from .sync import ShadowThreadPool, TEECondition, TEEMutex
from .ta import TrustedApplication
from .watchdog import ServiceWatchdog

__all__ = [
    "AttestationService",
    "BootChain",
    "BootImage",
    "DeviceAttestor",
    "IPCPort",
    "IPCRouter",
    "ModelProvider",
    "Quote",
    "SecureJobRecord",
    "SecureJobState",
    "SecureRegion",
    "ServiceWatchdog",
    "ShadowThreadPool",
    "TAVerifier",
    "TEECondition",
    "TEEMutex",
    "TEENPUDriver",
    "TEEOS",
    "TrustedApplication",
]
