"""Remote attestation: how the model key reaches the device (§6 context).

The paper assumes the wrapped model key is already on flash; this module
implements the provisioning flow that puts it there, rooted in the same
primitives the paper trusts (secure boot measurements, the hardware key):

1. at the factory, the manufacturer enrolls each device's attestation
   key (derived from the hardware key) with its attestation service;
2. in the field, the TEE produces a *quote* — boot-chain measurements +
   a provider-chosen nonce, MACed under the attestation key;
3. the model provider checks the quote against its golden measurements
   through the attestation service (freshness via the nonce), and only
   then wraps its model key to that specific device.

A jailbroken device (modified boot chain) produces measurements the
provider rejects, so it never receives a key — the supply-chain
complement to the runtime protections.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..crypto.keys import derive_key, wrap_model_key
from ..errors import SecurityViolation
from ..hw.common import World
from .boot import BootChain

__all__ = ["Quote", "DeviceAttestor", "AttestationService", "ModelProvider"]


def _attestation_key(hardware_key: bytes) -> bytes:
    return derive_key(hardware_key, "attestation")


def _mac(key: bytes, *parts: bytes) -> bytes:
    message = b"|".join(parts)
    return hmac.new(key, message, hashlib.sha256).digest()


@dataclass(frozen=True)
class Quote:
    """The device's signed statement of what booted."""

    device_id: str
    measurements: Tuple[bytes, ...]
    nonce: bytes
    mac: bytes


class DeviceAttestor:
    """TEE-side quoting (the hardware key never leaves the secure world)."""

    def __init__(self, device_id: str, keystore, boot_chain: BootChain):
        self.device_id = device_id
        self._keystore = keystore
        self._boot_chain = boot_chain

    def quote(self, nonce: bytes) -> Quote:
        hardware_key = self._keystore.hardware_key(World.SECURE)
        measurements = tuple(self._boot_chain.measurements)
        if not measurements:
            raise SecurityViolation("device has not completed secure boot")
        mac = _mac(
            _attestation_key(hardware_key),
            self.device_id.encode(),
            *measurements,
            nonce,
        )
        return Quote(self.device_id, measurements, nonce, mac)


class AttestationService:
    """Manufacturer-run verifier (knows each device's attestation key)."""

    def __init__(self):
        self._enrolled: Dict[str, bytes] = {}

    def enroll_device(self, device_id: str, keystore) -> None:
        """Factory step: escrow the device's attestation key."""
        hardware_key = keystore.hardware_key(World.SECURE)
        self._enrolled[device_id] = _attestation_key(hardware_key)

    def verify(self, quote: Quote) -> bool:
        key = self._enrolled.get(quote.device_id)
        if key is None:
            return False
        expected = _mac(
            key, quote.device_id.encode(), *quote.measurements, quote.nonce
        )
        return hmac.compare_digest(expected, quote.mac)

    def device_wrap_key(self, device_id: str, model_id: str) -> bytes:
        """Per-(device, model) provisioning key the device can re-derive."""
        key = self._enrolled.get(device_id)
        if key is None:
            raise SecurityViolation("device %r not enrolled" % device_id)
        return derive_key(key, "provision:" + model_id)


class ModelProvider:
    """The model owner: verifies quotes, then releases wrapped keys."""

    def __init__(
        self,
        service: AttestationService,
        golden_measurements: List[bytes],
        model_id: str,
        model_key: bytes,
    ):
        self.service = service
        self.golden = tuple(golden_measurements)
        self.model_id = model_id
        self._model_key = model_key
        self._issued_nonces: Set[bytes] = set()
        self._nonce_counter = 0
        self.provisioned: Set[str] = set()
        self.rejections = 0

    def challenge(self) -> bytes:
        """A fresh nonce for the device to quote against."""
        self._nonce_counter += 1
        nonce = hashlib.sha256(
            ("nonce:%s:%d" % (self.model_id, self._nonce_counter)).encode()
        ).digest()[:16]
        self._issued_nonces.add(nonce)
        return nonce

    def provision(self, quote: Quote) -> bytes:
        """Verify the quote; return the model key wrapped to the device.

        Raises :class:`SecurityViolation` on a stale nonce, an unknown
        device, a bad MAC, or non-golden measurements.
        """
        if quote.nonce not in self._issued_nonces:
            self.rejections += 1
            raise SecurityViolation("stale or foreign nonce")
        self._issued_nonces.discard(quote.nonce)  # single use
        if not self.service.verify(quote):
            self.rejections += 1
            raise SecurityViolation("quote failed verification")
        if quote.measurements != self.golden:
            self.rejections += 1
            raise SecurityViolation(
                "device booted non-golden software; refusing to release the model key"
            )
        wrap = self.service.device_wrap_key(quote.device_id, self.model_id)
        self.provisioned.add(quote.device_id)
        return wrap_model_key(wrap, self._model_key, self.model_id)


def device_unwrap_provisioned_key(keystore, wrapped: bytes, model_id: str) -> bytes:
    """TEE-side unwrap of a provisioned key (re-derives the wrap key)."""
    from ..crypto.keys import unwrap_model_key

    hardware_key = keystore.hardware_key(World.SECURE)
    wrap = derive_key(_attestation_key(hardware_key), "provision:" + model_id)
    return unwrap_model_key(wrap, wrapped, model_id)
