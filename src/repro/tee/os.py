"""The TEE OS: TA isolation, secure-memory scaling, key service.

Modelled on the OpenHarmony TEE the paper extends: a small kernel offering
thread management, IPC and memory management, here extended with exactly
the two facilities §5 describes — CMA page-memory mapping ("extend and
shrink") and dynamic TZASC/TZPC configuration.

Responsibilities:

* **TA address-space isolation** — every TA byte access is checked against
  the TA's mapped ranges (a malicious TA really cannot read the LLM TA's
  parameters; see the security tests).
* **Secure-memory scaling** — owns the TZASC programming for
  :class:`~repro.tee.secure_memory.SecureRegion` objects and scrubs memory
  before returning it to the REE.
* **Model-key service** — unwraps per-model keys under the hardware key
  with a per-TA access-control list.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..crypto.keys import HardwareKeyStore, unwrap_model_key
from ..errors import AccessDenied, ConfigurationError, SecurityViolation
from ..hw.common import AddrRange, World
from ..hw.platform import Board
from ..sim import Simulator
from .secure_memory import SecureRegion
from .ta import TrustedApplication

__all__ = ["TEEOS"]


class TEEOS:
    """The TEE kernel: TA isolation, secure memory, model keys."""

    def __init__(self, sim: Simulator, board: Board, keystore: HardwareKeyStore):
        self.sim = sim
        self.board = board
        self.keystore = keystore
        self._tas: Dict[str, TrustedApplication] = {}
        self._regions: Dict[str, SecureRegion] = {}
        self._key_acl: Dict[str, Set[str]] = {}  # model_id -> TA names
        self._next_slot = 0

    # ------------------------------------------------------------------
    # TA lifecycle and isolation
    # ------------------------------------------------------------------
    def install_ta(self, ta: TrustedApplication) -> None:
        if ta.name in self._tas:
            raise ConfigurationError("TA %r already installed" % ta.name)
        self._tas[ta.name] = ta
        ta.installed = True

    def ta(self, name: str) -> TrustedApplication:
        try:
            return self._tas[name]
        except KeyError:
            raise ConfigurationError("no TA named %r" % name)

    def map_into_ta(self, ta: TrustedApplication, rng: AddrRange) -> None:
        ta._map(rng)

    def unmap_from_ta(self, ta: TrustedApplication, rng: AddrRange) -> None:
        # Unmapping may split across the adjacent pieces created by
        # successive extends; normalize by rebuilding the mapped list.
        covered = [m for m in ta.mapped if m.overlaps(rng)]
        if not covered:
            raise ConfigurationError("range %r not mapped in TA %r" % (rng, ta.name))
        for piece in covered:
            ta._unmap(piece)
        for piece in covered:
            if piece.base < rng.base:
                ta._map(AddrRange(piece.base, rng.base - piece.base))
            if piece.end > rng.end:
                ta._map(AddrRange(rng.end, piece.end - rng.end))

    def ta_read(self, ta: TrustedApplication, addr: int, size: int) -> bytes:
        """TA byte load, checked against its address space."""
        rng = AddrRange(addr, size)
        if not ta.can_access(rng):
            raise AccessDenied("TA %r access to unmapped %r" % (ta.name, rng))
        return self.board.memory.cpu_read(addr, size, World.SECURE)

    def ta_write(self, ta: TrustedApplication, addr: int, data: bytes) -> None:
        rng = AddrRange(addr, len(data))
        if not ta.can_access(rng):
            raise AccessDenied("TA %r access to unmapped %r" % (ta.name, rng))
        self.board.memory.cpu_write(addr, data, World.SECURE)

    def scrub(self, rng: AddrRange) -> None:
        """Zero memory before it leaves the secure world."""
        self.board.memory.scrub(rng.base, rng.size, World.SECURE)

    # ------------------------------------------------------------------
    # secure-memory regions
    # ------------------------------------------------------------------
    def create_secure_region(
        self,
        ta: TrustedApplication,
        name: str,
        cma_name: str,
        base_addr: int,
        capacity: int,
        granule: int,
    ) -> SecureRegion:
        """Bind a fresh TZASC slot to a REE CMA region for ``ta``.

        ``base_addr``/``capacity`` come from boot-time firmware config
        (device tree), which secure boot authenticates — the running REE
        cannot influence them.
        """
        if name in self._regions:
            raise ConfigurationError("secure region %r already exists" % name)
        if self._next_slot >= self.board.tzasc.region_slots:
            raise ConfigurationError("out of TZASC region slots")
        region = SecureRegion(
            tee_os=self,
            ta=ta,
            name=name,
            tzasc_slot=self._next_slot,
            cma_name=cma_name,
            base_addr=base_addr,
            capacity=capacity,
            granule=granule,
        )
        # Program the slot immediately (empty): the co-driver may grant
        # device access on it before the region first grows.
        self.board.tzasc.configure(World.SECURE, region.tzasc_slot, base_addr, 0)
        region._slot_active = True
        self._next_slot += 1
        self._regions[name] = region
        return region

    def region(self, name: str) -> SecureRegion:
        return self._regions[name]

    def program_tzasc(self, region: SecureRegion, new_protected_bytes: int):
        """Reprogram the region's TZASC slot end (generator, timed)."""
        tzasc = self.board.tzasc
        yield self.sim.timeout(tzasc.config_time)
        if not region._slot_active:
            tzasc.configure(World.SECURE, region.tzasc_slot, region.base_addr, new_protected_bytes)
            region._slot_active = True
        else:
            tzasc.resize(World.SECURE, region.tzasc_slot, new_protected_bytes)

    # ------------------------------------------------------------------
    # REE delegation
    # ------------------------------------------------------------------
    def tz_call(self, func: str, *args, **kwargs):
        """SMC from the secure world to an REE service (generator)."""
        result = yield from self.board.monitor.smc(World.SECURE, func, *args, **kwargs)
        return result

    # ------------------------------------------------------------------
    # model-key service
    # ------------------------------------------------------------------
    def grant_model_access(self, model_id: str, ta_name: str) -> None:
        self._key_acl.setdefault(model_id, set()).add(ta_name)

    def unwrap_key_for(self, ta: TrustedApplication, wrapped: bytes, model_id: str) -> bytes:
        """Unwrap a model key for an authorized TA.

        §6: "The TEE OS only allows the LLM TA to access the model key."
        """
        if ta.name not in self._key_acl.get(model_id, set()):
            raise SecurityViolation(
                "TA %r is not authorized for model %r" % (ta.name, model_id)
            )
        hardware_key = self.keystore.hardware_key(World.SECURE)
        return unwrap_model_key(hardware_key, wrapped, model_id)
