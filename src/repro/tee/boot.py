"""Secure boot: the integrity root the threat model leans on (§3.1).

"The integrity of these components can be guaranteed with secure boot" —
the TEE OS, TEE NPU driver, and LLM TA are trusted *because* a measured
boot chain verified them.  This module implements that chain
functionally: each stage carries an image and the signer's digest of the
next stage; boot verifies stage-by-stage from an immutable ROM key, and a
tampered image (or a stage inserted by the attacker) breaks the chain.

TA installation goes through the same machinery: the TEE OS only installs
TAs whose images verify against the vendor digest database.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import IntegrityError, SecurityViolation

__all__ = ["BootImage", "BootChain", "TAVerifier"]


def _digest(data: bytes) -> bytes:
    return hashlib.sha256(b"boot-measure:" + data).digest()


@dataclass(frozen=True)
class BootImage:
    """One stage: name + code bytes + the expected digest of the next."""

    name: str
    code: bytes
    next_digest: Optional[bytes] = None  # None for the last stage

    @property
    def digest(self) -> bytes:
        return _digest(self.code)


class BootChain:
    """BL1 (ROM) → BL2 → EL3 monitor → TEE OS, measured stage by stage."""

    def __init__(self, rom_digest: bytes):
        #: burned into silicon: the digest of the first mutable stage.
        self.rom_digest = rom_digest
        self.measurements: List[bytes] = []
        self.booted_stages: List[str] = []

    @staticmethod
    def sign_chain(stages: List[BootImage]) -> List[BootImage]:
        """Vendor-side: link each stage to the digest of its successor."""
        linked: List[BootImage] = []
        next_digest: Optional[bytes] = None
        for image in reversed(stages):
            linked.append(BootImage(image.name, image.code, next_digest))
            next_digest = linked[-1].digest
        return list(reversed(linked))

    def boot(self, stages: List[BootImage]) -> List[str]:
        """Verify and 'execute' the chain; returns booted stage names.

        Raises :class:`IntegrityError` at the first stage whose
        measurement does not match what its predecessor vouched for.
        """
        if not stages:
            raise IntegrityError("empty boot chain")
        expected = self.rom_digest
        self.measurements = []
        self.booted_stages = []
        for index, image in enumerate(stages):
            measured = image.digest
            if not hmac.compare_digest(measured, expected):
                raise IntegrityError(
                    "stage %r failed verification (tampered or substituted)" % image.name
                )
            self.measurements.append(measured)
            self.booted_stages.append(image.name)
            if image.next_digest is None:
                if index != len(stages) - 1:
                    raise IntegrityError(
                        "stage %r terminates the chain early" % image.name
                    )
                return self.booted_stages
            expected = image.next_digest
        raise IntegrityError("chain ended without a terminal stage")


class TAVerifier:
    """Vendor digest database gating TA installation into the TEE."""

    def __init__(self):
        self._trusted: Dict[str, bytes] = {}
        self.rejections = 0

    def enroll(self, ta_name: str, image: bytes) -> None:
        """Vendor-side: record the shipped TA image digest."""
        self._trusted[ta_name] = _digest(image)

    def verify(self, ta_name: str, image: bytes) -> None:
        """Install-time check; raises on unknown or modified images."""
        expected = self._trusted.get(ta_name)
        if expected is None:
            self.rejections += 1
            raise SecurityViolation("TA %r is not enrolled" % ta_name)
        if not hmac.compare_digest(_digest(image), expected):
            self.rejections += 1
            raise IntegrityError("TA %r image modified" % ta_name)
