"""TEE inter-TA IPC: ports, capabilities, request/reply.

The paper's base TEE OS provides "thread management, IPC, interrupt
dispatching, and memory management" (§5).  This is the IPC piece: TAs
register named ports; other TAs may call a port only if the TEE OS
granted them a capability for it.  Messages are copied by the kernel
(values, never shared secure memory), so IPC cannot be used to bypass
address-space isolation — a malicious TA with no capability gets a
SecurityViolation, and even with one it only sees what the server
chooses to reply.

Calls are synchronous request/reply with a serving process per port,
built on the simulator's event primitives; each hop charges a small
kernel-mediated copy cost.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..errors import ConfigurationError, SecurityViolation
from ..sim import Event, Simulator
from .ta import TrustedApplication

__all__ = ["IPCPort", "IPCRouter"]

#: kernel-mediated message copy latency per hop.
IPC_HOP_LATENCY = 6e-6


class IPCPort:
    """A named service endpoint owned by one TA."""

    def __init__(self, router: "IPCRouter", name: str, owner: TrustedApplication):
        self.router = router
        self.name = name
        self.owner = owner
        self._queue = deque()  # (payload, reply_event, caller)
        self._wake: Optional[Event] = None
        self.served = 0

    # ------------------------------------------------------------------
    def _enqueue(self, payload: Any, reply: Event, caller: TrustedApplication) -> None:
        self._queue.append((payload, reply, caller))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def serve(self, handler: Callable[[TrustedApplication, Any], Any]):
        """Generator: serve requests forever with ``handler(caller, msg)``.

        Run it as a process: ``sim.process(port.serve(handler))``.
        Handler exceptions become the caller's exception (the kernel
        reflects faults back), and the server keeps running.
        """
        sim = self.router.sim
        while True:
            while not self._queue:
                self._wake = sim.event()
                yield self._wake
                self._wake = None
            payload, reply, caller = self._queue.popleft()
            yield sim.timeout(IPC_HOP_LATENCY)  # kernel copies the reply
            self.served += 1
            try:
                result = handler(caller, payload)
            except Exception as exc:  # reflected to the caller
                reply.fail(exc)
                continue
            reply.succeed(result)


class IPCRouter:
    """The TEE OS's IPC layer: port registry + capability table."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._ports: Dict[str, IPCPort] = {}
        self._grants: Set[Tuple[str, str]] = set()  # (ta name, port name)
        self.denied_calls = 0

    # ------------------------------------------------------------------
    def register_port(self, owner: TrustedApplication, name: str) -> IPCPort:
        """A TA creates a service port (implicitly granted to itself)."""
        if name in self._ports:
            raise ConfigurationError("port %r already registered" % name)
        port = IPCPort(self, name, owner)
        self._ports[name] = port
        self._grants.add((owner.name, name))
        return port

    def grant(self, ta: TrustedApplication, port_name: str) -> None:
        """The TEE OS grants ``ta`` the capability to call a port."""
        if port_name not in self._ports:
            raise ConfigurationError("no port %r" % port_name)
        self._grants.add((ta.name, port_name))

    def revoke(self, ta: TrustedApplication, port_name: str) -> None:
        self._grants.discard((ta.name, port_name))

    def call(self, caller: TrustedApplication, port_name: str, payload: Any):
        """Generator: synchronous IPC call; returns the server's reply."""
        port = self._ports.get(port_name)
        if port is None:
            raise ConfigurationError("no port %r" % port_name)
        if (caller.name, port_name) not in self._grants:
            self.denied_calls += 1
            raise SecurityViolation(
                "TA %r has no capability for port %r" % (caller.name, port_name)
            )
        yield self.sim.timeout(IPC_HOP_LATENCY)  # kernel copies the request
        reply = self.sim.event()
        port._enqueue(payload, reply, caller)
        result = yield reply
        return result
