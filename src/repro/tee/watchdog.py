"""TEE-side watchdog: bounded waits on untrusted REE services.

The paper outsources scheduling, power and I/O issue to the REE (§4.3);
correctness is preserved by verification, but *liveness* is not — a
stalled REE scheduler or a dropped SMC would leave a TEE process waiting
forever on a completion that never comes.  :class:`ServiceWatchdog`
turns every such wait into a bounded one on the simulated clock: wait on
the event OR a timeout, whichever fires first, and report which.

Implementation note: the guard waits through ``AnyOf`` deliberately.  An
``AnyOf`` keeps a callback registered on both children, so if the
guarded event *fails* after the timer already fired (the waiter moved
on), the failure is consumed by the composite instead of crashing the
simulator's dispatch loop as an unwaited process failure would.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sim import Event, Simulator

__all__ = ["ServiceWatchdog"]


class ServiceWatchdog:
    """Supervises waits on REE services with sim-clock timeouts."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.waits = 0
        #: per-service expiry counts.
        self.expirations: Dict[str, int] = {}
        #: (sim time, service) per expiry, for post-mortem assertions.
        self.log: List[Tuple[float, str]] = []

    def guard(self, event: Event, timeout: float, service: str):
        """Wait on ``event`` at most ``timeout`` seconds (generator).

        Returns ``(True, value)`` if the event triggered in time, or
        ``(False, None)`` after recording the expiry.  A *failed* guarded
        event re-raises its exception here, exactly as a bare wait would.
        """
        self.waits += 1
        timer = self.sim.timeout(timeout)
        yield self.sim.any_of([event, timer])
        if event.triggered:
            # ``value`` re-raises the guarded failure, as a bare wait would.
            return True, event.value
        self.expirations[service] = self.expirations.get(service, 0) + 1
        self.log.append((self.sim.now, service))
        return False, None
