"""Fleet-scale request traces: tenant mix × devices × session stickiness.

A fleet trace is a stream of *sessions*, not isolated requests: a user
opens the assistant, exchanges a handful of turns (each turn's prompt
carries the whole conversation so far), thinks between turns, and leaves.
That structure is what makes routing interesting — a turn served on the
device that still holds the session's KV skips re-prefilling the context,
and tenants that share a system-prompt prefix benefit from landing where
that prefix is already cached.

Determinism mirrors :func:`~repro.workloads.traces.generate_multitenant_trace`:
every tenant draws from its own RNG keyed by ``(name, seed)``, so adding,
removing or reordering tenants never perturbs the rest of the trace, and
the merged stream is a pure function of ``(duration, tenants, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..faults.plan import FaultSpec
from .prompts import BENCHMARKS

__all__ = [
    "FleetTenantSpec",
    "FleetRequest",
    "generate_fleet_trace",
    "generate_fault_schedule",
    "offered_by_tenant",
]


@dataclass(frozen=True)
class FleetTenantSpec:
    """One tenant population's offered load on the fleet.

    ``sessions_per_hour`` is the Poisson rate of *session starts*; each
    session runs ``~Geometric(1/mean_turns)`` turns with exponential
    think time between them.  ``stickiness`` sets how much conversation
    context each follow-up turn drags along: 1.0 replays the full history
    (every prior turn's prompt and reply), 0.0 makes turns independent.
    ``prefix_pool`` tenants share ``prefix_tokens`` of system prompt
    drawn from that many distinct prefixes — the unit of cross-session
    prefix caching.
    """

    name: str
    model_id: str
    priority: str  # "interactive" | "batch" | "background"
    sessions_per_hour: float
    workload: str = "ultrachat"  # per-turn new-token distribution
    output_tokens: tuple = (8, 48)
    mean_turns: float = 4.0
    mean_think_time: float = 20.0  # seconds between a reply and the next turn
    stickiness: float = 1.0
    prefix_tokens: int = 0
    prefix_pool: int = 1

    def validate(self) -> None:
        if self.sessions_per_hour < 0:
            raise ConfigurationError(
                "tenant %r session rate must be non-negative" % self.name
            )
        if self.priority not in ("interactive", "batch", "background"):
            raise ConfigurationError(
                "tenant %r priority must be interactive/batch/background" % self.name
            )
        if self.workload not in BENCHMARKS:
            raise ConfigurationError(
                "tenant %r has unknown workload %r" % (self.name, self.workload)
            )
        lo, hi = self.output_tokens
        if not 0 <= lo <= hi:
            raise ConfigurationError("tenant %r output_tokens range invalid" % self.name)
        if self.mean_turns < 1:
            raise ConfigurationError("tenant %r mean_turns must be >= 1" % self.name)
        if self.mean_think_time <= 0:
            raise ConfigurationError(
                "tenant %r mean_think_time must be positive" % self.name
            )
        if not 0.0 <= self.stickiness <= 1.0:
            raise ConfigurationError("tenant %r stickiness must be in [0,1]" % self.name)
        if self.prefix_tokens < 0 or self.prefix_pool < 1:
            raise ConfigurationError("tenant %r prefix config invalid" % self.name)


@dataclass(frozen=True)
class FleetRequest:
    """One turn of one session, as the router sees it.

    ``prompt_tokens`` (what the TA must prefill from scratch on a cold
    device) decomposes into the shared prefix, replayed conversation
    context, and this turn's new tokens — the router's cache models
    discount the first two when the target device already holds them.
    """

    at: float
    tenant: str
    session_id: str
    turn: int  # 1-based within the session
    model_id: str
    priority: str
    prefix_id: str  # "" when the tenant has no shared prefix
    prefix_tokens: int
    context_tokens: int  # replayed conversation history (past turns)
    new_tokens: int  # this turn's fresh user tokens
    output_tokens: int

    @property
    def prompt_tokens(self) -> int:
        return self.prefix_tokens + self.context_tokens + self.new_tokens


def generate_fleet_trace(
    duration: float,
    tenants: Sequence[FleetTenantSpec],
    seed: int = 7,
) -> List[FleetRequest]:
    """Merge every tenant's session stream into one sorted fleet trace.

    Sessions that start inside ``duration`` run to completion (their
    later turns may land past the horizon) so multi-turn affinity is
    measurable right up to the end of the trace.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError("duplicate tenant names")
    requests: List[FleetRequest] = []
    for spec in tenants:
        spec.validate()
        if spec.sessions_per_hour == 0:
            continue  # muted tenant: valid, contributes nothing
        workload = BENCHMARKS[spec.workload]
        lo, hi = spec.output_tokens
        rng = random.Random("%s:%d" % (spec.name, seed))
        turn_continue = 1.0 - 1.0 / spec.mean_turns
        start = 0.0
        session_n = 0
        while True:
            start += rng.expovariate(spec.sessions_per_hour / 3600.0)
            if start >= duration:
                break
            session_n += 1
            session_id = "%s/s%06d" % (spec.name, session_n)
            prefix_id = ""
            if spec.prefix_tokens > 0:
                prefix_id = "%s/p%d" % (spec.name, rng.randrange(spec.prefix_pool))
            at = start
            context = 0
            turn = 0
            while True:
                turn += 1
                new_tokens = int(
                    rng.triangular(
                        workload.min_tokens, workload.max_tokens, workload.mode_tokens
                    )
                )
                output = rng.randint(lo, hi)
                requests.append(
                    FleetRequest(
                        at=at,
                        tenant=spec.name,
                        session_id=session_id,
                        turn=turn,
                        model_id=spec.model_id,
                        priority=spec.priority,
                        prefix_id=prefix_id,
                        prefix_tokens=spec.prefix_tokens,
                        context_tokens=context,
                        new_tokens=new_tokens,
                        output_tokens=output,
                    )
                )
                if rng.random() >= turn_continue:
                    break
                context = int(spec.stickiness * (context + new_tokens + output))
                at += rng.expovariate(1.0 / spec.mean_think_time)
    requests.sort(key=lambda r: (r.at, r.tenant, r.session_id, r.turn))
    return requests


def offered_by_tenant(trace: Sequence[FleetRequest]) -> dict:
    """Per-tenant offered load of a trace: request and token totals.

    The ground truth the telemetry accountant's *served* meters are
    compared against — served tokens can only be at or below offered.
    """
    out: dict = {}
    for request in trace:
        row = out.setdefault(
            request.tenant, {"requests": 0, "prompt_tokens": 0, "output_tokens": 0}
        )
        row["requests"] += 1
        row["prompt_tokens"] += request.prompt_tokens
        row["output_tokens"] += request.output_tokens
    return out


def generate_fault_schedule(
    duration: float,
    device_ids: Sequence[str],
    seed: int = 7,
    crashes: int = 2,
    grays: int = 1,
    crash_span: tuple = (0.2, 0.8),
    gray_factor: float = 4.0,
    gray_duration_frac: float = 0.25,
) -> List[FaultSpec]:
    """A deterministic mid-trace fault schedule over a device fleet.

    Picks ``crashes`` distinct devices to crash (one targeted
    ``fleet.device_crash`` spec each, a one-shot window placed inside
    ``crash_span`` of the trace) and ``grays`` further devices to
    gray-degrade (``fleet.gray_slowdown`` with the slowdown factor in
    ``delay``).  Victims and times come from one RNG keyed
    ``("fleet-faults", seed)`` — independent of every tenant stream, so
    arming faults never perturbs the trace itself.  The windows are a
    few seconds wide with probability 1: the resilience tier's fault
    driver checks each site about once a simulated second, so each spec
    fires exactly once, at a time that depends only on ``(seed,
    duration, device order)``.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    ids = sorted(set(device_ids))
    if crashes < 0 or grays < 0 or crashes + grays > len(ids):
        raise ConfigurationError(
            "need %d victims but fleet has %d devices" % (crashes + grays, len(ids))
        )
    lo, hi = crash_span
    if not 0.0 <= lo < hi <= 1.0:
        raise ConfigurationError("crash_span must be a sub-interval of [0, 1]")
    rng = random.Random("fleet-faults:%d" % seed)
    victims = rng.sample(ids, crashes + grays)
    specs: List[FaultSpec] = []
    for device_id in victims[:crashes]:
        at = duration * rng.uniform(lo, hi)
        specs.append(
            FaultSpec(
                "fleet.device_crash",
                probability=1.0,
                window=(at, at + 5.0),
                max_fires=1,
                target=device_id,
            )
        )
    for device_id in victims[crashes:]:
        at = duration * rng.uniform(lo, hi)
        specs.append(
            FaultSpec(
                "fleet.gray_slowdown",
                probability=1.0,
                window=(at, at + duration * gray_duration_frac),
                max_fires=1,
                delay=gray_factor,
                target=device_id,
            )
        )
    return specs
