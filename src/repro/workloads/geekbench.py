"""Geekbench-like CPU benchmark suite (Figs. 2 and 16).

Each sub-benchmark carries two sensitivities:

* ``memory_intensity`` — how TLB-miss-bound it is; drives the S2PT
  stage-2-walk overhead (Fig. 2, where the paper measures up to 9.8%
  and 2.0% on average);
* ``bandwidth_sensitivity`` — how DRAM-bandwidth-bound it is; drives the
  slowdown when CMA page migration steals bus bandwidth (Fig. 16, where
  degradation peaks at 6.7% and is *transient*).

Scores are computed analytically over an observation window: base score
divided by the product of the two slowdowns.  The migration slowdown uses
the CMA regions' actual migration records from the simulated run, so
Fig. 16 reflects what the kernel really migrated, not a canned number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..config import PlatformSpec
from ..errors import ConfigurationError
from ..ree.cma import CMARegion
from ..ree.s2pt import S2PTState, s2pt_slowdown

__all__ = ["GeekbenchApp", "GEEKBENCH_SUITE", "run_suite", "migration_slowdown"]


@dataclass(frozen=True)
class GeekbenchApp:
    name: str
    base_score: float
    memory_intensity: float  # [0, 1]
    bandwidth_sensitivity: float  # multiplier on stolen-bandwidth fraction


#: a Geekbench-6-flavoured single-core suite with plausible sensitivities.
GEEKBENCH_SUITE: List[GeekbenchApp] = [
    GeekbenchApp("File Compression", 1450, 0.28, 0.90),
    GeekbenchApp("Navigation", 1380, 0.10, 0.50),
    GeekbenchApp("HTML5 Browser", 1520, 0.22, 0.80),
    GeekbenchApp("PDF Renderer", 1490, 0.15, 0.70),
    GeekbenchApp("Photo Library", 1400, 0.30, 1.05),
    GeekbenchApp("Clang", 1355, 1.00, 1.10),
    GeekbenchApp("Text Processing", 1430, 0.06, 0.45),
    GeekbenchApp("Asset Compression", 1600, 0.12, 1.30),
    GeekbenchApp("Object Detection", 1580, 0.20, 1.00),
    GeekbenchApp("Background Blur", 1540, 0.08, 1.20),
    GeekbenchApp("Horizon Detection", 1500, 0.05, 0.60),
    GeekbenchApp("Ray Tracer", 1620, 0.03, 0.25),
]


def migration_slowdown(
    app: GeekbenchApp,
    regions: Iterable[CMARegion],
    window_start: float,
    window_end: float,
    platform: PlatformSpec,
) -> float:
    """Slowdown from migration traffic overlapping the app's run window."""
    if window_end <= window_start:
        raise ConfigurationError("empty observation window")
    stolen = sum(r.migrated_bytes_between(window_start, window_end) for r in regions)
    # Migration moves each byte twice over the bus (read + write).
    stolen_bw = 2.0 * stolen / (window_end - window_start)
    fraction = min(1.0, stolen_bw / platform.memory.bus_bandwidth)
    return 1.0 + app.bandwidth_sensitivity * fraction


def run_suite(
    platform: PlatformSpec,
    s2pt: S2PTState,
    regions: Iterable[CMARegion] = (),
    window_start: float = 0.0,
    window_end: float = 1.0,
) -> Dict[str, float]:
    """Score every app under the given S2PT state and migration window."""
    regions = list(regions)
    scores = {}
    for app in GEEKBENCH_SUITE:
        slowdown = s2pt_slowdown(app.memory_intensity, s2pt, platform.s2pt)
        if regions:
            slowdown *= migration_slowdown(app, regions, window_start, window_end, platform)
        scores[app.name] = app.base_score / slowdown
    return scores
