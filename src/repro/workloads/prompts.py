"""Benchmark prompt workloads: UltraChat, PersonaChat, DroidTask (§7).

Real benchmark corpora are not redistributable here, so each benchmark is
a seeded generator reproducing the property the evaluation depends on —
its *prompt-length distribution*:

* **UltraChat** — multi-turn dialogue turns; short prompts (the paper
  attributes TZ-LLM's larger relative overhead on UltraChat to exactly
  this).
* **PersonaChat** — chat-summarization tasks over a persona + history;
  medium prompts.
* **DroidTask** — UI automation with serialized app state in context;
  long prompts.

Prompts are real text (deterministic word salad) so the tokenizer and the
full request path run end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError

__all__ = ["Prompt", "BENCHMARKS", "generate_prompts", "benchmark_names"]

_WORDS = (
    "please summarize the following conversation about travel plans and "
    "budget options then suggest next steps for booking hotels flights "
    "trains schedule meeting notes review document screen tap button open "
    "settings wifi toggle scroll list select item confirm dialog assistant "
    "user agent reply context history persona likes music hiking cooking"
).split()


@dataclass(frozen=True)
class Prompt:
    benchmark: str
    index: int
    text: str
    tokens: int


@dataclass(frozen=True)
class BenchmarkSpec:
    name: str
    description: str
    min_tokens: int
    max_tokens: int
    mode_tokens: int  # triangular-distribution mode


BENCHMARKS = {
    "ultrachat": BenchmarkSpec(
        "ultrachat", "multi-turn dialogues (short turns)", 16, 128, 48
    ),
    "personachat": BenchmarkSpec(
        "personachat", "chat summarization (persona + history)", 128, 448, 256
    ),
    "droidtask": BenchmarkSpec(
        "droidtask", "UI automation (serialized app state)", 256, 640, 448
    ),
}


def benchmark_names() -> List[str]:
    """The available prompt benchmarks, sorted."""
    return sorted(BENCHMARKS)


def generate_prompts(benchmark: str, count: int, seed: int = 2026) -> List[Prompt]:
    """``count`` deterministic prompts drawn from the benchmark's
    length distribution."""
    spec = BENCHMARKS.get(benchmark)
    if spec is None:
        raise ConfigurationError(
            "unknown benchmark %r (have: %s)" % (benchmark, ", ".join(benchmark_names()))
        )
    if count < 1:
        raise ConfigurationError("count must be positive")
    rng = random.Random("%s:%d" % (benchmark, seed))
    prompts = []
    for index in range(count):
        tokens = int(rng.triangular(spec.min_tokens, spec.max_tokens, spec.mode_tokens))
        tokens = max(spec.min_tokens, min(spec.max_tokens, tokens))
        # One word per token beyond BOS.
        words = [rng.choice(_WORDS) for _ in range(tokens - 1)]
        prompts.append(Prompt(benchmark, index, " ".join(words), tokens))
    return prompts
