"""Evaluation workloads: prompts, NN apps, Geekbench, memory stress."""

from .fleet import (
    FleetRequest,
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
    offered_by_tenant,
)
from .geekbench import GEEKBENCH_SUITE, GeekbenchApp, migration_slowdown, run_suite
from .nn_apps import MOBILENET_V1, NNAppRunner, NNAppSpec, YOLOV5S
from .prompts import BENCHMARKS, Prompt, benchmark_names, generate_prompts
from .stress import MemoryStress
from .traces import (
    PressurePhase,
    TenantRequest,
    TenantSpec,
    TraceEvent,
    generate_multitenant_trace,
    generate_pressure_phases,
    generate_trace,
)

__all__ = [
    "BENCHMARKS",
    "FleetRequest",
    "FleetTenantSpec",
    "GEEKBENCH_SUITE",
    "GeekbenchApp",
    "MemoryStress",
    "MOBILENET_V1",
    "NNAppRunner",
    "NNAppSpec",
    "PressurePhase",
    "Prompt",
    "TenantRequest",
    "TenantSpec",
    "TraceEvent",
    "YOLOV5S",
    "benchmark_names",
    "generate_fault_schedule",
    "generate_fleet_trace",
    "generate_multitenant_trace",
    "generate_pressure_phases",
    "generate_prompts",
    "generate_trace",
    "migration_slowdown",
    "offered_by_tenant",
    "run_suite",
]
