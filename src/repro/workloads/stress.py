"""stress-ng-style memory pressure (§7 "Models and deployment").

The stressor maps a configurable amount of movable, *reclaimable* memory
and writes recognizable patterns into it.  When free memory outside the
CMA regions runs out, further pressure spills into the CMA regions —
which is exactly what forces page migration when the TEE later balloons
secure memory (the worst case the paper evaluates).

Two behaviours mirror the real tool:

* **best effort** — under a full system stress-ng maps what it can
  instead of dying on OOM;
* **continuous pressure** — stress-ng's vm workers re-fault reclaimed
  pages and re-map released memory in a loop, so freed memory (e.g. a
  CMA region the TEE just revoked) fills right back up.  Call
  :meth:`refresh` between experiment phases to model one sweep of that
  loop.

Functional checks: the stressor can verify its surviving pages still hold
their patterns after migrations (migration must copy, not corrupt).
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..ree.kernel import REEKernel
from ..ree.pages import Allocation

__all__ = ["MemoryStress"]

_PATTERN_STRIDE = 64


class MemoryStress:
    """stress-ng-style reclaimable memory pressure with pattern checks."""

    def __init__(
        self,
        kernel: REEKernel,
        n_bytes: int,
        tag: str = "stress-ng",
        best_effort: bool = True,
        headroom: int = 64 * 1024 * 1024,
    ):
        if n_bytes <= 0:
            raise ConfigurationError("stress size must be positive")
        self.kernel = kernel
        self.n_bytes = n_bytes
        self.tag = tag
        self.best_effort = best_effort
        self.headroom = headroom
        self.allocs: List[Allocation] = []
        self._running = False

    # ------------------------------------------------------------------
    @property
    def mapped_bytes(self) -> int:
        return sum(a.n_frames for a in self.allocs if not a.freed) * self.kernel.db.granule

    def start(self) -> None:
        """Map the pressure memory and stamp patterns into it."""
        if self._running:
            raise ConfigurationError("stress already running")
        self._running = True
        self._map_up_to(self.n_bytes)

    def refresh(self) -> int:
        """One sweep of stress-ng's mmap/touch/munmap loop: drop the
        current mappings and re-map the full target.  Fresh placement
        follows the kernel's CMA-balancing heuristic, so a CMA region the
        TEE just revoked fills right back up — the *continuous* worst
        case of §7.  Returns the bytes now mapped."""
        if not self._running:
            raise ConfigurationError("stress not running")
        for alloc in self.allocs:
            self.kernel.buddy.unregister_reclaimable(alloc)
            if not alloc.freed:
                self.kernel.free(alloc)
        self.allocs = []
        self._map_up_to(self.n_bytes)
        return self.mapped_bytes

    def _map_up_to(self, target: int) -> None:
        granule = self.kernel.db.granule
        want = target - self.mapped_bytes
        if want < granule:
            return
        if self.best_effort:
            available = self.kernel.free_bytes - self.headroom
            want = min(want, available)
            if want < granule:
                return
        alloc = self.kernel.map_anonymous(want, tag=self.tag)
        self.kernel.buddy.register_reclaimable(alloc)
        self.allocs.append(alloc)
        memory = self.kernel.board.memory
        for frame in alloc.frames:
            memory._raw_write(self.kernel.db.frame_addr(frame), self._pattern(frame))

    def _pattern(self, frame: int) -> bytes:
        return (b"S%07d" % (frame % 10_000_000)) * (_PATTERN_STRIDE // 8)

    # ------------------------------------------------------------------
    def frames_in_cma(self) -> int:
        count = 0
        for region in self.kernel.cma_regions.values():
            for alloc in self.allocs:
                if alloc.freed:
                    continue
                count += sum(
                    1 for f in alloc.frames if region.start_frame <= f < region.end_frame
                )
        return count

    def verify_surviving_pages(self) -> int:
        """Check that every still-mapped page holds a valid stress pattern
        (migration must have copied the data).  Returns pages checked."""
        memory = self.kernel.board.memory
        checked = 0
        for alloc in self.allocs:
            if alloc.freed:
                continue
            for frame in alloc.frames:
                addr = self.kernel.db.frame_addr(frame)
                data = memory._raw_read(addr, _PATTERN_STRIDE)
                if not (data[:1] == b"S" and data[1:8].isdigit()):
                    raise AssertionError(
                        "stress page at frame %d corrupted: %r" % (frame, data[:16])
                    )
                checked += 1
        return checked

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for alloc in self.allocs:
            self.kernel.buddy.unregister_reclaimable(alloc)
            if not alloc.freed:
                self.kernel.free(alloc)
        self.allocs = []
