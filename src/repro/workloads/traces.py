"""Request-arrival traces: a day in the life of an on-device assistant.

Deterministic (seeded) arrival processes for driving multi-request
experiments: bursts of short chat turns, occasional long summarization or
UI-automation requests, and background memory-pressure phases — the
operating regime the partial-caching and pressure policies are designed
for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .prompts import BENCHMARKS

__all__ = [
    "TraceEvent",
    "generate_trace",
    "PressurePhase",
    "generate_pressure_phases",
    "TenantSpec",
    "TenantRequest",
    "generate_multitenant_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    at: float  # arrival time (simulated seconds)
    kind: str  # benchmark name: ultrachat / personachat / droidtask
    prompt_tokens: int
    output_tokens: int


@dataclass(frozen=True)
class PressurePhase:
    start: float
    pressure_bytes: int
    label: str


def generate_trace(
    duration: float,
    rate_per_hour: float,
    seed: int = 7,
    mix: Optional[dict] = None,
) -> List[TraceEvent]:
    """Poisson-ish arrivals over ``duration`` seconds.

    ``mix`` maps benchmark name to weight (default: chat-heavy).
    """
    if duration <= 0 or rate_per_hour <= 0:
        raise ConfigurationError("duration and rate must be positive")
    mix = mix or {"ultrachat": 0.7, "personachat": 0.2, "droidtask": 0.1}
    unknown = set(mix) - set(BENCHMARKS)
    if unknown:
        raise ConfigurationError("unknown benchmarks in mix: %s" % sorted(unknown))
    rng = random.Random(seed)
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    mean_gap = 3600.0 / rate_per_hour
    events: List[TraceEvent] = []
    at = rng.expovariate(1.0 / mean_gap)
    while at < duration:
        kind = rng.choices(kinds, weights=weights)[0]
        spec = BENCHMARKS[kind]
        prompt = int(rng.triangular(spec.min_tokens, spec.max_tokens, spec.mode_tokens))
        output = rng.randint(8, 48)
        events.append(TraceEvent(at, kind, prompt, output))
        at += rng.expovariate(1.0 / mean_gap)
    return events


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load: who asks, what for, and how urgently.

    A tenant is a (session, model, priority-class) stream: the voice
    assistant firing short interactive turns, a mail summarizer batching
    medium prompts, an indexer grinding long background jobs.  Bursts
    model the "everyone asks at once" pattern: for ``burst_duration``
    seconds out of every ``burst_period``, the arrival rate multiplies by
    ``burst_factor``.
    """

    name: str
    model_id: str
    priority: str  # "interactive" | "batch" | "background"
    rate_per_hour: float
    workload: str = "ultrachat"  # prompt-length distribution (BENCHMARKS)
    output_tokens: Tuple[int, int] = (8, 48)
    burst_factor: float = 1.0
    burst_period: float = 0.0  # 0 = no bursts
    burst_duration: float = 0.0


@dataclass(frozen=True)
class TenantRequest:
    """One arrival in a multi-tenant trace."""

    at: float
    tenant: str
    model_id: str
    priority: str
    prompt_tokens: int
    output_tokens: int


def _tenant_rate(spec: TenantSpec, at: float) -> float:
    """Arrivals per hour at time ``at`` (burst windows multiply)."""
    if spec.burst_period > 0 and spec.burst_duration > 0:
        if (at % spec.burst_period) < spec.burst_duration:
            return spec.rate_per_hour * spec.burst_factor
    return spec.rate_per_hour


def generate_multitenant_trace(
    duration: float,
    tenants: Sequence[TenantSpec],
    seed: int = 7,
) -> List[TenantRequest]:
    """Merge every tenant's arrival stream into one sorted trace.

    Each tenant gets an independent RNG keyed by (name, seed), so adding
    a tenant never perturbs the others' arrivals, and the merged trace is
    deterministic for a given (tenants, seed).
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError("duplicate tenant names")
    requests: List[TenantRequest] = []
    for spec in tenants:
        if spec.rate_per_hour < 0:
            raise ConfigurationError("tenant %r rate must be non-negative" % spec.name)
        if spec.priority not in ("interactive", "batch", "background"):
            raise ConfigurationError(
                "tenant %r priority must be interactive/batch/background" % spec.name
            )
        workload = BENCHMARKS.get(spec.workload)
        if workload is None:
            raise ConfigurationError(
                "tenant %r has unknown workload %r" % (spec.name, spec.workload)
            )
        lo, hi = spec.output_tokens
        if not 0 <= lo <= hi:
            raise ConfigurationError("tenant %r output_tokens range invalid" % spec.name)
        if spec.rate_per_hour == 0:
            continue  # a muted tenant contributes no arrivals (fleet mixes
            # parameterize tenants per device and zero some out)
        rng = random.Random("%s:%d" % (spec.name, seed))
        at = 0.0
        while True:
            rate = _tenant_rate(spec, at)
            at += rng.expovariate(rate / 3600.0)
            if at >= duration:
                break
            prompt = int(
                rng.triangular(workload.min_tokens, workload.max_tokens, workload.mode_tokens)
            )
            requests.append(
                TenantRequest(
                    at=at,
                    tenant=spec.name,
                    model_id=spec.model_id,
                    priority=spec.priority,
                    prompt_tokens=prompt,
                    output_tokens=rng.randint(lo, hi),
                )
            )
    requests.sort(key=lambda r: (r.at, r.tenant))
    return requests


def generate_pressure_phases(
    duration: float,
    low_bytes: int,
    high_bytes: int,
    period: float,
    seed: int = 7,
) -> List[PressurePhase]:
    """Alternating background-memory phases (apps opening and closing)."""
    if period <= 0:
        raise ConfigurationError("period must be positive")
    rng = random.Random(seed + 1)
    phases: List[PressurePhase] = []
    at = 0.0
    high = False
    while at < duration:
        phases.append(
            PressurePhase(
                at,
                high_bytes if high else low_bytes,
                "apps-busy" if high else "apps-idle",
            )
        )
        at += period * rng.uniform(0.7, 1.3)
        high = not high
    return phases
