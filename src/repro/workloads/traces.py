"""Request-arrival traces: a day in the life of an on-device assistant.

Deterministic (seeded) arrival processes for driving multi-request
experiments: bursts of short chat turns, occasional long summarization or
UI-automation requests, and background memory-pressure phases — the
operating regime the partial-caching and pressure policies are designed
for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .prompts import BENCHMARKS

__all__ = ["TraceEvent", "generate_trace", "PressurePhase", "generate_pressure_phases"]


@dataclass(frozen=True)
class TraceEvent:
    at: float  # arrival time (simulated seconds)
    kind: str  # benchmark name: ultrachat / personachat / droidtask
    prompt_tokens: int
    output_tokens: int


@dataclass(frozen=True)
class PressurePhase:
    start: float
    pressure_bytes: int
    label: str


def generate_trace(
    duration: float,
    rate_per_hour: float,
    seed: int = 7,
    mix: Optional[dict] = None,
) -> List[TraceEvent]:
    """Poisson-ish arrivals over ``duration`` seconds.

    ``mix`` maps benchmark name to weight (default: chat-heavy).
    """
    if duration <= 0 or rate_per_hour <= 0:
        raise ConfigurationError("duration and rate must be positive")
    mix = mix or {"ultrachat": 0.7, "personachat": 0.2, "droidtask": 0.1}
    unknown = set(mix) - set(BENCHMARKS)
    if unknown:
        raise ConfigurationError("unknown benchmarks in mix: %s" % sorted(unknown))
    rng = random.Random(seed)
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    mean_gap = 3600.0 / rate_per_hour
    events: List[TraceEvent] = []
    at = rng.expovariate(1.0 / mean_gap)
    while at < duration:
        kind = rng.choices(kinds, weights=weights)[0]
        spec = BENCHMARKS[kind]
        prompt = int(rng.triangular(spec.min_tokens, spec.max_tokens, spec.mode_tokens))
        output = rng.randint(8, 48)
        events.append(TraceEvent(at, kind, prompt, output))
        at += rng.expovariate(1.0 / mean_gap)
    return events


def generate_pressure_phases(
    duration: float,
    low_bytes: int,
    high_bytes: int,
    period: float,
    seed: int = 7,
) -> List[PressurePhase]:
    """Alternating background-memory phases (apps opening and closing)."""
    if period <= 0:
        raise ConfigurationError("period must be positive")
    rng = random.Random(seed + 1)
    phases: List[PressurePhase] = []
    at = 0.0
    high = False
    while at < duration:
        phases.append(
            PressurePhase(
                at,
                high_bytes if high else low_bytes,
                "apps-busy" if high else "apps-idle",
            )
        )
        at += period * rng.uniform(0.7, 1.3)
        high = not high
    return phases
