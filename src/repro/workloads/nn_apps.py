"""REE neural-network applications that share the NPU (§7.3, Fig. 15).

YOLOv5s object detection and MobileNetV1 image classification, modelled
as periodic NPU jobs through the full REE driver's unified queue — so
when the LLM runs, both sides genuinely contend for the device and the
co-driver's switching costs show up in both throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import PlatformSpec
from ..errors import ConfigurationError
from ..hw.common import AddrRange
from ..hw.npu import NPUJob
from ..ree.npu_driver import REENPUDriver
from ..sim import Simulator

__all__ = ["NNAppSpec", "YOLOV5S", "MOBILENET_V1", "NNAppRunner"]


@dataclass(frozen=True)
class NNAppSpec:
    name: str
    #: dense FLOPs for one inference (one NPU job per frame).
    flops_per_inference: float
    #: CPU-side pre/post-processing per frame (image decode, NMS, ...).
    cpu_overhead: float = 0.5e-3

    def job_duration(self, platform: PlatformSpec) -> float:
        return self.flops_per_inference / (platform.npu.effective_gflops * 1e9)


YOLOV5S = NNAppSpec("YOLOv5s", flops_per_inference=7.2e9, cpu_overhead=1.5e-3)
MOBILENET_V1 = NNAppSpec("MobileNetV1", flops_per_inference=1.1e9, cpu_overhead=0.5e-3)


class NNAppRunner:
    """Submits frames back to back for a duration; reports throughput."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        driver: REENPUDriver,
        spec: NNAppSpec,
        ctx: AddrRange,
    ):
        self.sim = sim
        self.platform = platform
        self.driver = driver
        self.spec = spec
        self.ctx = ctx
        self.completed = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    def _job(self) -> NPUJob:
        quarter = max(64, self.ctx.size // 4)
        return NPUJob(
            duration=self.spec.job_duration(self.platform),
            commands=AddrRange(self.ctx.base, quarter),
            io_pagetable=AddrRange(self.ctx.base + quarter, quarter),
            inputs=[AddrRange(self.ctx.base + 2 * quarter, quarter)],
            outputs=[AddrRange(self.ctx.base + 3 * quarter, quarter)],
            tag="nn:" + self.spec.name,
        )

    def run_for(self, duration: float):
        """Generator: pump frames until ``duration`` elapses."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.started_at = self.sim.now
        deadline = self.sim.now + duration
        while self.sim.now < deadline:
            yield self.sim.timeout(self.spec.cpu_overhead)
            completion = self.driver.submit(self._job())
            yield completion
            self.completed += 1
        self.stopped_at = self.sim.now
        return self.throughput

    def run_until(self, event):
        """Generator: pump frames until ``event`` triggers (e.g. a
        concurrent LLM request completing), finishing the in-flight
        frame."""
        self.started_at = self.sim.now
        while not event.triggered:
            yield self.sim.timeout(self.spec.cpu_overhead)
            completion = self.driver.submit(self._job())
            yield completion
            self.completed += 1
        self.stopped_at = self.sim.now
        return self.throughput

    @property
    def throughput(self) -> float:
        """Inferences per second over the run window."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.sim.now
        elapsed = end - self.started_at
        return self.completed / elapsed if elapsed > 0 else 0.0
