"""The unit the gateway schedules: one tenant request and its lifecycle.

States: ``queued`` → ``running`` → ``done`` (possibly looping back to
``queued`` through preemption), or ``rejected`` at admission.  Every
timestamp is simulated time; latency properties are derived from them so
serving metrics never have to reconstruct anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.llm_ta import InferenceRecord
from ..sim import Event
from .classes import PriorityClass

__all__ = ["ServeRequest"]


@dataclass
class ServeRequest:
    """One request flowing through the serving gateway."""

    request_id: int
    tenant: str
    model_id: str
    priority: PriorityClass
    prompt_tokens: int
    output_tokens: int
    arrived_at: float
    #: arrival + the class TTFT SLO (None when the class has no SLO).
    deadline: Optional[float] = None
    state: str = "queued"
    #: dispatch count (1 + number of preemptions, once done).
    attempts: int = 0
    preemptions: int = 0
    dispatched_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    record: Optional[InferenceRecord] = None
    rejected_reason: Optional[str] = None
    rejected_at: Optional[float] = None
    #: failure provenance: (sim_time, exception_type, classification)
    #: per failed attempt, in order.  The request only *ends* failed when
    #: the gateway exhausts its retries or the fault is fatal.
    failures: List[Tuple[float, str, str]] = field(default_factory=list)
    failed_at: Optional[float] = None
    #: triggers (with the request as value) when the request completes.
    completion: Optional[Event] = None
    #: cross-world trace context (set by the gateway at admission).
    trace: Optional[object] = None
    #: flight-recorder tail attached when the request ends failed (a
    #: tuple of :class:`~repro.obs.FlightEvent`), None otherwise.
    postmortem: Optional[tuple] = None
    #: the request blocked at the head of its lane on KV admission at
    #: least once (the pool could not cover its worst-case block count).
    kv_blocked: bool = False
    #: when a ``kv_blocked`` request ends failed or cancelled, the last-N
    #: ``memory``-category flight-recorder events — the region/pool
    #: history that explains *why* admission had no headroom.
    postmortem_memory: Optional[tuple] = None
    #: fleet routing provenance: the device that served the request and
    #: the originating :class:`~repro.workloads.fleet.FleetRequest`
    #: (None outside the fleet tier).
    device_id: Optional[str] = None
    fleet_request: Optional[object] = None
    #: fleet resilience provenance: the owning FleetTicket (None outside
    #: the fleet tier), whether this attempt was a speculative hedge, and
    #: whether the router spilled past its first-ranked device to place it.
    ticket: Optional[object] = None
    hedge: bool = False
    spilled_over: bool = False
    #: shareable prompt structure (:class:`~repro.llm.PromptSpec`),
    #: forwarded into the TA's prefix-sharing path and used by dispatch
    #: to budget only the predicted non-shared block count.  None keeps
    #: the legacy worst-case admission.
    prompt_spec: Optional[object] = None
    #: cancellation: the router asked the gateway to abandon this attempt
    #: (a hedge lost the race, or its device is draining).  A cancelled
    #: request ends in state ``cancelled`` — neither done nor failed —
    #: and is excluded from SLO accounting.
    cancel_requested: bool = False
    cancel_reason: Optional[str] = None
    cancelled_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state == "done"

    @property
    def failed(self) -> bool:
        return self.state == "failed"

    @property
    def cancelled(self) -> bool:
        return self.state == "cancelled"

    @property
    def failure_count(self) -> int:
        return len(self.failures)

    def note_failure(self, at: float, kind: str, classification: str) -> None:
        """Record one failed attempt's provenance."""
        self.failures.append((at, kind, classification))

    @property
    def ttft(self) -> float:
        """Arrival to first token of the *successful* attempt.

        Preempted attempts discard their partial decode, so the token the
        user finally sees comes from the last attempt — queue wait and
        any preemption delay are charged, as a real client would feel.
        """
        if self.first_token_at is None:
            raise ValueError("request %d has no first token yet" % self.request_id)
        return self.first_token_at - self.arrived_at

    @property
    def e2e_latency(self) -> float:
        """Arrival to last token (queue wait + all attempts)."""
        if self.finished_at is None:
            raise ValueError("request %d not finished" % self.request_id)
        return self.finished_at - self.arrived_at

    @property
    def queue_wait(self) -> float:
        """Arrival to first dispatch."""
        if self.dispatched_at is None:
            raise ValueError("request %d never dispatched" % self.request_id)
        return self.dispatched_at - self.arrived_at

    @property
    def tbt(self) -> float:
        """Mean time between tokens of the successful decode (0 if none)."""
        if self.record is None or self.record.decode is None:
            return 0.0
        steps = self.record.decode.step_times
        return sum(steps) / len(steps) if steps else 0.0

    @property
    def tokens_generated(self) -> int:
        if self.record is None or self.record.decode is None:
            return 0
        return len(self.record.decode.token_ids)

    @property
    def slo_attained(self) -> Optional[bool]:
        """TTFT within deadline (None when the class has no SLO)."""
        if self.deadline is None:
            return None
        return self.first_token_at is not None and self.first_token_at <= self.deadline

    # ------------------------------------------------------------------
    def log_line(self, verb: str, at: float, extra: str = "") -> str:
        """One deterministic request-log line (the determinism tests
        compare these byte for byte across runs)."""
        line = "%.6f %-8s r%04d %s %s %s prompt=%d out=%d" % (
            at,
            verb,
            self.request_id,
            self.tenant,
            self.model_id,
            self.priority.label,
            self.prompt_tokens,
            self.output_tokens,
        )
        return line + (" " + extra if extra else "")
