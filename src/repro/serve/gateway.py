"""The multi-tenant serving gateway: routing, dispatch, preemption.

The gateway sits between client tenants and the protected models — one
:class:`~repro.core.system.TZLLM` (single model) or
:class:`~repro.core.multi.TZLLMMulti` (one TA per model).  Each model is
a *lane* that serves one request at a time (the single-TA constraint the
paper's deployment has); the gateway's job is deciding **which** request
that is:

* ``scheduling="fifo"`` — global arrival order, the baseline every
  serving paper measures against;
* ``scheduling="priority"`` — most-urgent class first, FIFO within a
  class; with ``preemption=True`` an arriving preemptor-class request
  signals the running victim's :class:`~repro.core.llm_ta.PreemptionGate`
  and the TA yields at the next token boundary (Fig. 13's preemption
  lifted to request granularity).  The victim's partial decode is
  discarded and the request re-queued at the head of its class — its
  cached parameter prefix survives, so the retry skips restoration.

With ``batching=True`` (requires TAs built with a
:class:`~repro.core.batch.BatchConfig`) a lane seats up to the TA's
batch size of concurrently decoding requests: dispatch fills the batch
up to the KV-block budget before queueing, and preemption evicts a
victim from the batch with its blocks *parked* so the resume skips both
prefill and the already-decoded tokens.

Admission (bounded queues + deadline shedding) happens before anything
queues; see :mod:`repro.serve.admission`.  All scheduling state lives in
deques and counters — no RNG — so serving is deterministic end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.llm_ta import PreemptionGate
from ..core.multi import TZLLMMulti
from ..core.system import TZLLM
from ..errors import ConfigurationError
from ..obs import TraceContext
from ..sim.trace import NULL_TRACER
from ..workloads.traces import TenantRequest
from .admission import AdmissionController, ServiceTimePredictor
from .breaker import CircuitBreaker, classify_failure
from .classes import ClassPolicy, PriorityClass, default_policies
from .errors import CircuitOpen
from .request import ServeRequest
from .slo import SLOAccountant

__all__ = ["GatewayConfig", "ServeGateway"]


@dataclass
class GatewayConfig:
    """Gateway behaviour knobs (all orthogonal, for ablations)."""

    scheduling: str = "priority"  # "priority" | "fifo"
    preemption: bool = True
    shedding: bool = True
    #: continuous batching: lanes hold up to the TA's batch size of
    #: concurrently decoding requests, dispatch fills the batch up to the
    #: KV-block budget, and preemption evicts from the batch with the
    #: victim's blocks *parked* for a prefill-free resume.  Requires the
    #: system's TAs to be built with a ``BatchConfig``.
    batching: bool = False
    policies: Dict[PriorityClass, ClassPolicy] = field(default_factory=default_policies)
    predictor_alpha: float = 0.3
    #: failure handling (repro.faults): how many times a request whose
    #: attempt died on a *retryable* fault is re-queued before it fails.
    max_retries: int = 2
    #: per-lane circuit breaker: consecutive failures that open it, and
    #: how long an open lane cools down before probing.
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    #: flight-recorder events attached to a terminally failed request as
    #: its postmortem (repro.obs).
    postmortem_events: int = 32

    def __post_init__(self):
        if self.scheduling not in ("priority", "fifo"):
            raise ConfigurationError("scheduling must be 'priority' or 'fifo'")
        for cls in PriorityClass:
            if cls not in self.policies:
                raise ConfigurationError("missing policy for class %s" % cls.label)
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be at least 1")
        if self.breaker_cooldown <= 0:
            raise ConfigurationError("breaker_cooldown must be positive")
        if self.postmortem_events < 1:
            raise ConfigurationError("postmortem_events must be at least 1")


class _Lane:
    """One model's TA: up to ``capacity`` requests running (1 without
    batching — the paper's single-stream TA)."""

    __slots__ = (
        "model_id", "capacity", "running", "gates", "dispatched_at", "breaker",
        "probe_armed", "kv_blocked_id",
    )

    def __init__(self, model_id: str, breaker: CircuitBreaker, capacity: int = 1):
        self.model_id = model_id
        self.capacity = capacity
        self.running: List[ServeRequest] = []
        self.gates: Dict[int, PreemptionGate] = {}
        self.dispatched_at = 0.0
        self.breaker = breaker
        #: a wake-up process is already scheduled for the cooldown end.
        self.probe_armed = False
        #: last request id seen blocking at the head on KV admission —
        #: dispatch re-evaluates on every lane event, so block accounting
        #: records each blocked head once, not once per poll.
        self.kv_blocked_id = -1

    @property
    def busy(self) -> bool:
        return len(self.running) >= self.capacity

    @property
    def current(self) -> Optional[ServeRequest]:
        return self.running[0] if self.running else None

    def add(self, request: ServeRequest, gate: PreemptionGate) -> None:
        self.running.append(request)
        self.gates[request.request_id] = gate

    def remove(self, request: ServeRequest) -> None:
        if request in self.running:
            self.running.remove(request)
        self.gates.pop(request.request_id, None)


class ServeGateway:
    """Admission, routing and priority-preemptive dispatch for many tenants."""

    def __init__(
        self,
        system: Union[TZLLM, TZLLMMulti],
        config: Optional[GatewayConfig] = None,
        tracer=None,
        observability=None,
        gateway_id: Optional[str] = None,
    ):
        self.system = system
        self.sim = system.sim
        self.config = config or GatewayConfig()
        self.tracer = tracer if tracer is not None else (getattr(system, "tracer", None) or NULL_TRACER)
        #: the repro.obs bundle, if the system was instrument()-ed (or one
        #: is passed explicitly): serving counters land on its registry
        #: and terminal failures snapshot its flight recorder.
        self.observability = (
            observability
            if observability is not None
            else getattr(system, "observability", None)
        )
        if self.observability is not None:
            self.registry = self.observability.registry
            self.recorder = self.observability.recorder
        else:
            from ..obs import MetricsRegistry

            self.registry = MetricsRegistry()
            self.recorder = None
        # Multi-model systems are recognised structurally (a ``tas`` dict
        # of model_id -> TA and a model-id-first ``infer``), so fleet
        # surrogates and future system types route without isinstance
        # checks against the concrete classes.
        self._multi_model = hasattr(system, "tas")
        if self._multi_model:
            model_ids = list(system.tas)
        else:
            model_ids = [system.model.model_id]
        #: stable identity surfaced by health() and fleet rollups: the
        #: explicit ``gateway_id`` wins, then the system's device name,
        #: then a deterministic id derived from the hosted models.
        device_name = getattr(system, "device_name", "")
        self.gateway_id = gateway_id or device_name or "gw:" + "+".join(sorted(model_ids))
        #: batching mode: the TA behind each lane (lane capacity = the
        #: TA's batch size; dispatch consults its KV-block budget).
        self._tas: Dict[str, object] = {}
        if self.config.batching:
            for m in model_ids:
                ta = system.tas[m] if self._multi_model else system.ta
                if ta.batch_engine is None:
                    raise ConfigurationError(
                        "batching=True requires TAs built with a BatchConfig "
                        "(model %r has no batch engine)" % m
                    )
                self._tas[m] = ta
        self.lanes: Dict[str, _Lane] = {}
        for m in model_ids:
            breaker = CircuitBreaker(
                self.sim,
                failure_threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            )
            breaker.lane = m
            breaker.metrics = self.registry
            breaker.recorder = self.recorder
            capacity = 1
            if m in self._tas:
                capacity = self._tas[m].batch_engine.config.max_batch_size
            self.lanes[m] = _Lane(m, breaker, capacity=capacity)
        self.predictor = ServiceTimePredictor(alpha=self.config.predictor_alpha)
        self.admission = AdmissionController(
            model_ids,
            self.config.policies,
            predictor=self.predictor,
            shedding=self.config.shedding,
        )
        self.accountant = SLOAccountant(
            self.sim, self.config.policies, tracer=self.tracer, registry=self.registry
        )
        self._request_ids = itertools.count(1)
        #: deterministic request log, one line per lifecycle transition.
        self.log: List[str] = []
        self.completed: List[ServeRequest] = []
        self.failed: List[ServeRequest] = []
        self.cancelled: List[ServeRequest] = []
        self.preemption_signals = 0
        self.wasted_time = 0.0
        self.wasted_tokens = 0
        #: set by AlertEngine(gateway=...) so health() can report alerts.
        self.alert_engine = None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_tokens: int,
        output_tokens: int = 0,
        model_id: Optional[str] = None,
        priority: Union[PriorityClass, str] = PriorityClass.INTERACTIVE,
        tenant: str = "anon",
        ctx: Optional[TraceContext] = None,
        prompt_spec=None,
    ) -> ServeRequest:
        """Admit a request at the current simulated time.

        Returns the queued :class:`ServeRequest` (its ``completion``
        event triggers when served) or raises a typed
        :class:`~repro.serve.errors.AdmissionRejected` subclass.

        ``ctx`` lets a caller that owns a larger unit of work (the fleet
        router's per-attempt ticket legs) supply the trace identity;
        without it the gateway mints one from its own request id.

        ``prompt_spec`` (a :class:`~repro.llm.PromptSpec`) describes the
        prompt's shareable structure; with a prefix-sharing TA, dispatch
        budgets only the predicted non-shared block count and the TA
        takes matching blocks by reference.
        """
        cls = PriorityClass.parse(priority)
        if model_id is None:
            if len(self.lanes) != 1:
                raise ConfigurationError("model_id required with multiple models")
            model_id = next(iter(self.lanes))
        if model_id not in self.lanes:
            raise ConfigurationError("no TA hosts model %r" % model_id)
        if prompt_tokens < 1 or output_tokens < 0:
            raise ConfigurationError("bad token counts for request")
        now = self.sim.now
        policy = self.config.policies[cls]
        request = ServeRequest(
            request_id=next(self._request_ids),
            tenant=tenant,
            model_id=model_id,
            priority=cls,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            arrived_at=now,
            deadline=None if policy.ttft_slo is None else now + policy.ttft_slo,
            completion=self.sim.event(),
            prompt_spec=prompt_spec,
        )
        request.trace = ctx if ctx is not None else TraceContext(request.request_id, tenant=tenant)
        try:
            if self.lanes[model_id].breaker.state == "open" and not self.lanes[model_id].breaker.allow():
                request.state = "rejected"
                request.rejected_reason = CircuitOpen.reason
                raise CircuitOpen(
                    "lane %s cooling down for another %.3fs"
                    % (model_id, self.lanes[model_id].breaker.remaining_cooldown()),
                    request=request,
                )
            self.admission.admit(request, self._predicted_wait(model_id, cls), self.config.scheduling)
        except Exception as exc:
            # Failure provenance: the rejection's exception type and sim
            # timestamp stay on the request record and in the log.
            reason = getattr(exc, "reason", "rejected")
            request.rejected_at = now
            self.log.append(
                request.log_line("reject", now, "reason=%s error=%s" % (reason, type(exc).__name__))
            )
            self.accountant.note_rejected(cls, reason)
            raise
        self.log.append(
            request.log_line("admit", now, "depth=%d" % self.admission.depth(model_id, cls))
        )
        self.accountant.note_admitted(cls)
        self.accountant.note_queue_depth(cls, self.admission.depth(model_id, cls))
        # Flow start: the arrival instant, inside the request's eventual
        # gateway queue span — the other legs are emitted by the prefill
        # pipeline (TEE lanes) and at completion.
        if self.tracer.enabled:
            self.tracer.flow(
                "s", request.trace.flow_id, request.trace.flow_name, lane="gateway"
            )
        self._maybe_preempt_for(request)
        self._maybe_dispatch(model_id)
        return request

    def submit_trace_request(self, event: TenantRequest) -> ServeRequest:
        """Admit one multi-tenant trace arrival (see workloads.traces)."""
        return self.submit(
            prompt_tokens=event.prompt_tokens,
            output_tokens=event.output_tokens,
            model_id=event.model_id,
            priority=event.priority,
            tenant=event.tenant,
        )

    # ------------------------------------------------------------------
    # cancellation and drain (the fleet tier's failover surface)
    # ------------------------------------------------------------------
    def cancel(self, request: ServeRequest, reason: str = "cancelled") -> bool:
        """Abandon an admitted request: a hedge lost its race or the
        device is going away.

        A still-queued request is pulled out and finalized immediately; a
        running one has its preemption gate signalled and finalizes as
        ``cancelled`` at the next token boundary.  Returns False when the
        request is already terminal (done/failed/cancelled) — the race
        where the winner and the cancel land on the same instant.
        """
        if request.state in ("done", "failed", "cancelled", "rejected"):
            return False
        request.cancel_requested = True
        request.cancel_reason = reason
        if request.state == "queued" and self.admission.remove(request):
            self._finalize_cancelled(request, reason)
            self.accountant.note_queue_depth(
                request.priority,
                self.admission.depth(request.model_id, request.priority),
            )
            return True
        gate = self.lanes[request.model_id].gates.get(request.request_id)
        if gate is not None:
            gate.request(cause="cancel:%s" % reason, at=self.sim.now)
        return True

    def drain_queued(self, reason: str = "drain") -> List[ServeRequest]:
        """Pull every queued request out of admission (device-down path).

        The requests are finalized ``cancelled`` here; the fleet router
        re-routes the live ones to surviving devices.  In-flight requests
        are *not* touched — on a crash the device model itself kills them
        with :class:`~repro.errors.DeviceLost` at the next clock edge.
        """
        drained = self.admission.drain()
        for request in drained:
            request.cancel_requested = True
            request.cancel_reason = reason
            self._finalize_cancelled(request, reason)
        for model_id in self.lanes:
            for cls in PriorityClass:
                self.accountant.note_queue_depth(
                    cls, self.admission.depth(model_id, cls)
                )
        return drained

    def _finalize_cancelled(self, request: ServeRequest, reason: str) -> None:
        now = self.sim.now
        request.state = "cancelled"
        request.cancelled_at = now
        self.cancelled.append(request)
        self.accountant.note_cancelled(request.priority, reason)
        self.log.append(request.log_line("cancel", now, "reason=%s" % reason))
        if self.recorder is not None:
            self.recorder.record(
                "serve", "gateway.cancel", request_id=request.request_id,
                reason=reason,
            )
            if request.kv_blocked:
                request.postmortem_memory = tuple(
                    self.recorder.tail_category(
                        "memory", self.config.postmortem_events
                    )
                )
        if request.completion is not None and not request.completion.triggered:
            request.completion.succeed(request)

    def reset_lanes(self) -> None:
        """Forget per-lane failure history (post-reboot re-admission).

        A device that crashed, rebooted and re-attested starts with
        fresh breakers: the failures that opened them died with the old
        secure world, and a re-admitted device must be dispatchable
        immediately or the router's re-admission is a no-op.
        """
        for lane in self.lanes.values():
            lane.breaker.record_success()

    # ------------------------------------------------------------------
    # prediction (admission input)
    # ------------------------------------------------------------------
    def _predicted_wait(self, model_id: str, cls: PriorityClass) -> float:
        """Estimated time until a new arrival reaches the TA."""
        lane = self.lanes[model_id]
        wait = 0.0
        if lane.busy:
            elapsed = self.sim.now - lane.dispatched_at
            wait += max(0.0, self.predictor.predicted_service(model_id) - elapsed)
        for queued in self.admission.queued_ahead(model_id, cls, self.config.scheduling):
            wait += self.predictor.predicted_service(queued.model_id)
        return wait

    # ------------------------------------------------------------------
    # dispatch and preemption
    # ------------------------------------------------------------------
    def _maybe_preempt_for(self, request: ServeRequest) -> None:
        """Signal the running victim's gate if ``request`` outranks it."""
        if self.config.scheduling != "priority" or not self.config.preemption:
            return
        if not self.config.policies[request.priority].preemptor:
            return
        lane = self.lanes[request.model_id]
        if not lane.busy:
            # A free slot exists: dispatch will seat the arrival.  (A
            # KV-budget shortage never preempts — parking a victim keeps
            # its blocks, so eviction would not free capacity anyway.)
            return
        # Victim: the least urgent preemptible running request whose gate
        # has not been signalled yet; ties broken toward the newest (it
        # has the least sunk decode work).
        victim: Optional[ServeRequest] = None
        for candidate in lane.running:
            gate = lane.gates.get(candidate.request_id)
            if gate is None or gate.requested:
                continue  # one signal is enough; that slot is yielding
            if candidate.priority <= request.priority:
                continue  # equal or more urgent: not a victim
            if not self.config.policies[candidate.priority].preemptible:
                continue
            if victim is None or (candidate.priority, candidate.request_id) > (
                victim.priority,
                victim.request_id,
            ):
                victim = candidate
        if victim is None:
            return
        lane.gates[victim.request_id].request(cause="r%04d" % request.request_id, at=self.sim.now)
        self.preemption_signals += 1
        self.log.append(
            victim.log_line("preempt", self.sim.now, "by=r%04d" % request.request_id)
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                "r%d preempts r%d" % (request.request_id, victim.request_id),
                lane="gateway",
            )

    def _maybe_dispatch(self, model_id: str) -> None:
        """Fill the lane: seat queued requests while there is a free slot
        *and* (in batching mode) KV-block budget for the head request.  A
        head that does not fit blocks the queue — head-of-line order is
        what makes shedding predictions and priority order meaningful."""
        lane = self.lanes[model_id]
        ta = self._tas.get(model_id)
        while not lane.busy:
            if not lane.breaker.allow():
                # Open lane: nothing dispatches until the cooldown elapses.
                # Schedule a wake-up so queued requests get their probe.
                self._arm_probe_timer(lane)
                return
            if lane.breaker.state != "closed" and lane.running:
                return  # half-open: one probe at a time
            request = self.admission.peek_next(model_id, self.config.scheduling)
            if request is None:
                return
            if ta is not None and not ta.kv_can_admit(
                request.prompt_tokens,
                request.output_tokens,
                request.request_id,
                spec=request.prompt_spec,
            ):
                request.kv_blocked = True
                if lane.kv_blocked_id != request.request_id:
                    lane.kv_blocked_id = request.request_id
                    self.registry.counter(
                        "serve_kv_admission_blocked_total",
                        "head-of-line requests blocked on KV-block admission",
                    ).inc(model=model_id)
                    if self.recorder is not None:
                        self.recorder.record(
                            "memory", "gateway.kv_admission_block",
                            request_id=request.request_id, model=model_id,
                            prompt=request.prompt_tokens,
                            output=request.output_tokens,
                        )
                return  # head-of-line block until blocks drain
            lane.kv_blocked_id = -1
            self.admission.pop_next(model_id, self.config.scheduling)
            if ta is not None:
                ta.kv_reserve(
                    request.request_id,
                    request.prompt_tokens,
                    request.output_tokens,
                    spec=request.prompt_spec,
                )
            if lane.breaker.state != "closed":
                lane.breaker.on_dispatch()  # this request is the probe
            self.accountant.note_queue_depth(
                request.priority, self.admission.depth(model_id, request.priority)
            )
            gate = PreemptionGate()
            lane.add(request, gate)
            lane.dispatched_at = self.sim.now
            self.sim.process(
                self._run_attempt(lane, request, gate),
                name="serve-r%d" % request.request_id,
            )

    def _arm_probe_timer(self, lane: _Lane) -> None:
        if lane.probe_armed:
            return
        lane.probe_armed = True
        delay = max(lane.breaker.remaining_cooldown(), 1e-9)

        def waker():
            yield self.sim.timeout(delay)
            lane.probe_armed = False
            self._maybe_dispatch(lane.model_id)

        self.sim.process(waker(), name="breaker-probe:%s" % lane.model_id)

    def _run_attempt(self, lane: _Lane, request: ServeRequest, gate: PreemptionGate):
        """One dispatch of one request on the lane's TA (a process)."""
        now = self.sim.now
        request.attempts += 1
        request.state = "running"
        if request.dispatched_at is None:
            request.dispatched_at = now
        self.log.append(request.log_line("dispatch", now, "attempt=%d" % request.attempts))
        if self.recorder is not None:
            self.recorder.record(
                "serve", "gateway.dispatch", request_id=request.request_id,
                model=lane.model_id, attempt=request.attempts,
            )
        if request.attempts == 1 and self.tracer.enabled:
            self.tracer.record(
                "gateway", "queue r%d" % request.request_id, request.arrived_at, lane="gateway"
            )
        self.accountant.note_dispatch(lane.model_id)
        span_start = now
        try:
            record = yield from self._infer(request, gate)
        except Exception as exc:
            self.accountant.note_release(lane.model_id)
            lane.remove(request)
            self._handle_failure(lane, request, exc, span_start)
            self._maybe_dispatch(lane.model_id)
            return
        lane.breaker.record_success()
        self.accountant.note_release(lane.model_id)
        lane.remove(request)
        elapsed = self.sim.now - span_start
        if self.tracer.enabled:
            self.tracer.record(
                "gateway",
                "serve r%d%s" % (request.request_id, " (preempted)" if record.preempted else ""),
                span_start,
                lane="gateway",
            )
        if record.preempted and request.cancel_requested:
            # The gate was signalled by cancel(), not by a preemptor: the
            # partial decode is abandoned for good, so it is all waste.
            self.wasted_time += elapsed
            self.wasted_tokens += len(record.decode.token_ids) if record.decode else 0
            self._finalize_cancelled(request, request.cancel_reason or "cancelled")
            self._maybe_dispatch(lane.model_id)
            return
        if record.preempted:
            request.preemptions += 1
            request.state = "queued"
            if not record.parked:
                # Parked victims keep their KV blocks and decoded tokens
                # for a prefill-free resume — nothing was wasted.
                self.wasted_time += elapsed
                self.wasted_tokens += len(record.decode.token_ids) if record.decode else 0
            self.accountant.note_preemption(request.priority)
            self.admission.requeue_front(request)
            self.accountant.note_queue_depth(
                request.priority, self.admission.depth(lane.model_id, request.priority)
            )
            self.log.append(
                request.log_line("requeue", self.sim.now, "preemptions=%d" % request.preemptions)
            )
        else:
            request.record = record
            request.state = "done"
            request.first_token_at = (
                record.first_token_at
                if record.first_token_at is not None
                else record.started_at + record.ttft
            )
            request.finished_at = self.sim.now
            if request.trace is not None and self.tracer.enabled:
                # Flow finish: bound to the end of the serve span.
                self.tracer.flow(
                    "f", request.trace.flow_id, request.trace.flow_name, lane="gateway"
                )
            self.predictor.observe(request.model_id, ttft=record.ttft, service_time=elapsed)
            self.accountant.observe(request)
            self.completed.append(request)
            self.log.append(
                request.log_line(
                    "complete",
                    self.sim.now,
                    "ttft=%.6f e2e=%.6f tokens=%d"
                    % (request.ttft, request.e2e_latency, request.tokens_generated),
                )
            )
            request.completion.succeed(request)
        self._maybe_dispatch(lane.model_id)

    def _handle_failure(self, lane: _Lane, request: ServeRequest, exc: BaseException, span_start: float) -> None:
        """A dispatch died inside the TA: classify, retry or fail.

        Failure provenance — the exception type, sim timestamp and
        retryable/fatal classification — lands on the request record, in
        the deterministic log, and in the per-class SLO export.  The
        failed request's completion event *succeeds* with the request
        (state ``failed``): load generators wait on these events with a
        fail-fast :class:`~repro.sim.core.AllOf`, so failing the event
        would tear down the whole workload instead of reporting one
        failed request.
        """
        now = self.sim.now
        if request.cancel_requested:
            # The caller already gave up on this attempt; however it died,
            # it is a cancellation, not a lane failure — the breaker must
            # not open over work nobody is waiting for.
            self.wasted_time += now - span_start
            self._finalize_cancelled(request, request.cancel_reason or "cancelled")
            return
        kind = type(exc).__name__
        classification = classify_failure(exc)
        request.note_failure(now, kind, classification)
        self.wasted_time += now - span_start
        self.accountant.note_failure(request.priority, kind)
        lane.breaker.record_failure()
        if self.tracer.enabled:
            self.tracer.record(
                "gateway", "fail r%d (%s)" % (request.request_id, kind), span_start, lane="gateway"
            )
        retryable = classification == "retryable"
        if retryable and request.failure_count <= self.config.max_retries:
            request.state = "queued"
            self.admission.requeue_front(request)
            self.accountant.note_retry(request.priority)
            if self.recorder is not None:
                self.recorder.record(
                    "retry", "gateway.requeue", "attempt died on retryable fault",
                    request_id=request.request_id, error=kind,
                    retries=request.failure_count,
                )
            self.accountant.note_queue_depth(
                request.priority, self.admission.depth(lane.model_id, request.priority)
            )
            self.log.append(
                request.log_line(
                    "requeue", now, "error=%s retries=%d" % (kind, request.failure_count)
                )
            )
        else:
            request.state = "failed"
            request.failed_at = now
            self.failed.append(request)
            self.accountant.note_failed(request.priority)
            if self.recorder is not None:
                # Postmortem provenance: snapshot the flight recorder's
                # tail onto the request before anything else overwrites
                # the ring — the injected faults and every retry attempt
                # that led here are in these events.
                self.recorder.record(
                    "serve", "gateway.failed", "retries exhausted or fatal fault",
                    request_id=request.request_id, error=kind, klass=classification,
                )
                request.postmortem = self.recorder.tail(self.config.postmortem_events)
                if request.kv_blocked:
                    # The request once stalled on KV admission: keep the
                    # memory-category history (region resizes, block
                    # churn) alongside the generic tail — it explains
                    # why the pool had no headroom.
                    request.postmortem_memory = tuple(
                        self.recorder.tail_category(
                            "memory", self.config.postmortem_events
                        )
                    )
            self.log.append(
                request.log_line("fail", now, "error=%s class=%s" % (kind, classification))
            )
            if request.completion is not None and not request.completion.triggered:
                request.completion.succeed(request)

    def _infer(self, request: ServeRequest, gate: PreemptionGate):
        """Route the CA→TA invocation to the TA hosting the model."""
        # ``prompt=`` is forwarded only when a spec exists: fleet
        # surrogate systems implement the bare infer() signature.
        extra = {} if request.prompt_spec is None else {"prompt": request.prompt_spec}
        if self._multi_model:
            record = yield from self.system.infer(
                request.model_id,
                request.prompt_tokens,
                request.output_tokens,
                preempt=gate,
                ctx=request.trace,
                **extra
            )
        else:
            record = yield from self.system.infer(
                request.prompt_tokens,
                request.output_tokens,
                preempt=gate,
                ctx=request.trace,
                **extra
            )
        return record

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def submit_blocking(self, *args, **kwargs) -> ServeRequest:
        """Submit and drive the simulator until the request completes."""
        request = self.submit(*args, **kwargs)
        return self.sim.run_until(request.completion)

    @property
    def queue_depth(self) -> int:
        return sum(self.admission.total_depth(m) for m in self.lanes)

    def health(self) -> Dict[str, object]:
        """One JSON-stable snapshot of gateway health at the current time:
        per-lane breaker state, busyness and queue depth, total queue
        depth, completion/failure counts, and any alerts firing (when an
        :class:`~repro.obs.AlertEngine` is attached to this gateway)."""
        lanes = {}
        for model_id in sorted(self.lanes):
            lane = self.lanes[model_id]
            lanes[model_id] = {
                "breaker": lane.breaker.state,
                "busy": lane.busy,
                "running": len(lane.running),
                "queue_depth": self.admission.total_depth(model_id),
            }
        firing = [] if self.alert_engine is None else self.alert_engine.firing()
        return {
            "gateway_id": self.gateway_id,
            "at": self.sim.now,
            "lanes": lanes,
            "queue_depth": self.queue_depth,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "cancelled": len(self.cancelled),
            "alerts_firing": firing,
            "healthy": not firing
            and all(l["breaker"] != "open" for l in lanes.values()),
        }

    def request_log(self) -> str:
        """The full deterministic request log, newline-joined."""
        return "\n".join(self.log)
