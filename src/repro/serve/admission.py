"""Admission control: bounded queues, TTFT prediction, load shedding.

Two gates guard the door:

1. **Backpressure** — each (model, class) queue is bounded by the class
   policy's ``queue_capacity``; a full queue rejects with
   :class:`QueueFull` instead of growing without limit.
2. **Deadline shedding** — an EWMA service-time predictor estimates the
   arriving request's TTFT (work ahead of it in queue + the model's
   typical prefill); if that already exceeds the class's TTFT SLO the
   request is rejected with :class:`SLOUnattainable` — rejecting at
   arrival is strictly kinder than letting the request rot in queue past
   its deadline and burning TA time on an answer nobody is waiting for.

Everything here is deterministic: deques, monotonic ids, and an EWMA —
no randomness, so the same trace sheds the same requests every run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .classes import ClassPolicy, PriorityClass
from .errors import QueueFull, SLOUnattainable
from .request import ServeRequest

__all__ = ["ServiceTimePredictor", "AdmissionController"]


class ServiceTimePredictor:
    """EWMA per model of observed TTFT and whole-request service time.

    Warm/cold asymmetry, prompt-length spread and preemption retries all
    fold into the moving average — crude, but it only has to be good
    enough to tell "will blow the SLO by seconds" from "fine", and it
    needs no model-specific calibration.  Unknown models predict 0
    (optimistically admit until the first completion seeds the average).
    """

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._ttft: Dict[str, float] = {}
        self._service: Dict[str, float] = {}
        self.observations = 0

    def observe(self, model_id: str, ttft: float, service_time: float) -> None:
        """Fold one completed request's measurements into the averages."""
        self.observations += 1
        for store, value in ((self._ttft, ttft), (self._service, service_time)):
            if model_id in store:
                store[model_id] += self.alpha * (value - store[model_id])
            else:
                store[model_id] = value

    def predicted_ttft(self, model_id: str) -> float:
        return self._ttft.get(model_id, 0.0)

    def predicted_service(self, model_id: str) -> float:
        return self._service.get(model_id, 0.0)


class AdmissionController:
    """Owns the bounded per-(model, class) queues and the two gates."""

    def __init__(
        self,
        model_ids: Iterable[str],
        policies: Dict[PriorityClass, ClassPolicy],
        predictor: Optional[ServiceTimePredictor] = None,
        shedding: bool = True,
    ):
        self.policies = policies
        self.predictor = predictor or ServiceTimePredictor()
        self.shedding = shedding
        self.queues: Dict[Tuple[str, PriorityClass], Deque[ServeRequest]] = {
            (model_id, cls): deque()
            for model_id in model_ids
            for cls in PriorityClass
        }
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_slo = 0

    # ------------------------------------------------------------------
    def depth(self, model_id: str, cls: PriorityClass) -> int:
        return len(self.queues[(model_id, cls)])

    def total_depth(self, model_id: str) -> int:
        return sum(len(self.queues[(model_id, cls)]) for cls in PriorityClass)

    def queued_ahead(self, model_id: str, cls: PriorityClass, scheduling: str) -> List[ServeRequest]:
        """Requests already queued that would dispatch before a new
        arrival of class ``cls`` under the given scheduling mode."""
        ahead: List[ServeRequest] = []
        for other in PriorityClass:
            if scheduling == "priority" and other > cls:
                continue  # a lower-priority queue never runs first
            ahead.extend(self.queues[(model_id, other)])
        return ahead

    # ------------------------------------------------------------------
    def admit(self, request: ServeRequest, predicted_wait: float, scheduling: str) -> None:
        """Enqueue ``request`` or raise a typed rejection.

        ``predicted_wait`` is the gateway's estimate of time until this
        request would reach the TA (running remainder + queued work
        ahead); the predictor adds the model's typical prefill on top.
        """
        policy = self.policies[request.priority]
        queue = self.queues[(request.model_id, request.priority)]
        if len(queue) >= policy.queue_capacity:
            request.state = "rejected"
            request.rejected_reason = QueueFull.reason
            self.rejected_queue_full += 1
            raise QueueFull(
                "%s queue for %s at capacity (%d)"
                % (request.priority.label, request.model_id, policy.queue_capacity),
                request=request,
            )
        if self.shedding and policy.ttft_slo is not None:
            predicted_ttft = predicted_wait + self.predictor.predicted_ttft(request.model_id)
            if predicted_ttft > policy.ttft_slo:
                request.state = "rejected"
                request.rejected_reason = SLOUnattainable.reason
                self.rejected_slo += 1
                raise SLOUnattainable(
                    "predicted TTFT %.2fs exceeds the %.2fs %s SLO"
                    % (predicted_ttft, policy.ttft_slo, request.priority.label),
                    request=request,
                )
        queue.append(request)
        self.admitted += 1

    def requeue_front(self, request: ServeRequest) -> None:
        """Put a preempted victim back at the head of its class queue
        (it keeps its arrival-order claim within the class)."""
        self.queues[(request.model_id, request.priority)].appendleft(request)

    def remove(self, request: ServeRequest) -> bool:
        """Pull a still-queued request back out (cancellation / drain).

        Returns False when the request is not queued here — already
        dispatched, or never admitted — so callers can fall back to the
        in-flight cancellation path.
        """
        queue = self.queues.get((request.model_id, request.priority))
        if queue is None:
            return False
        try:
            queue.remove(request)
        except ValueError:
            return False
        return True

    def drain(self, model_id: Optional[str] = None) -> List[ServeRequest]:
        """Empty every queue (or one model's) and return the requests in
        deterministic (model, class, FIFO) order — the device-down path:
        the router re-routes them instead of letting them rot."""
        drained: List[ServeRequest] = []
        for (mid, cls) in sorted(self.queues, key=lambda k: (k[0], k[1].value)):
            if model_id is not None and mid != model_id:
                continue
            queue = self.queues[(mid, cls)]
            while queue:
                drained.append(queue.popleft())
        return drained

    def peek_next(self, model_id: str, scheduling: str) -> Optional[ServeRequest]:
        """The request :meth:`pop_next` would return, without removing it
        — batch-aware dispatch checks the KV-block budget before
        committing to the pop."""
        if scheduling == "priority":
            for cls in PriorityClass:
                queue = self.queues[(model_id, cls)]
                if queue:
                    return queue[0]
            return None
        if scheduling != "fifo":
            raise ConfigurationError("scheduling must be 'priority' or 'fifo'")
        best: Optional[ServeRequest] = None
        for cls in PriorityClass:
            queue = self.queues[(model_id, cls)]
            if queue and (best is None or queue[0].request_id < best.request_id):
                best = queue[0]
        return best

    def pop_next(self, model_id: str, scheduling: str) -> Optional[ServeRequest]:
        """The next request the lane should run, or None.

        ``priority``: head of the most urgent non-empty class queue.
        ``fifo``: the globally oldest queued request (by request id, which
        is monotonically assigned at submission).
        """
        if scheduling == "priority":
            for cls in PriorityClass:
                queue = self.queues[(model_id, cls)]
                if queue:
                    return queue.popleft()
            return None
        if scheduling != "fifo":
            raise ConfigurationError("scheduling must be 'priority' or 'fifo'")
        best_cls: Optional[PriorityClass] = None
        best_id: Optional[int] = None
        for cls in PriorityClass:
            queue = self.queues[(model_id, cls)]
            if queue and (best_id is None or queue[0].request_id < best_id):
                best_cls = cls
                best_id = queue[0].request_id
        if best_cls is None:
            return None
        return self.queues[(model_id, best_cls)].popleft()
