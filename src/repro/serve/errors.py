"""Typed admission failures: a rejected request, not a broken gateway.

Load shedding is a *feature* of the serving gateway — a request whose
predicted TTFT already blows its SLO is turned away at the door instead
of rotting in queue — so rejections carry their own exception types that
callers can catch and count, distinct from configuration misuse.
"""

from __future__ import annotations

from ..errors import TZLLMError

__all__ = ["AdmissionRejected", "CircuitOpen", "QueueFull", "SLOUnattainable"]


class AdmissionRejected(TZLLMError):
    """Base class: the gateway refused to enqueue a request.

    ``request`` is the rejected :class:`~repro.serve.request.ServeRequest`
    (state ``rejected``); ``reason`` is a short machine-readable tag.
    """

    reason = "rejected"

    def __init__(self, message: str, request=None):
        super().__init__(message)
        self.request = request


class QueueFull(AdmissionRejected):
    """The priority class's bounded queue is at capacity (backpressure)."""

    reason = "queue-full"


class SLOUnattainable(AdmissionRejected):
    """Predicted TTFT already exceeds the class SLO (deadline shedding)."""

    reason = "slo-unattainable"


class CircuitOpen(AdmissionRejected):
    """The model's lane breaker is open: its TA has been failing and is
    cooling down, so new requests are turned away at the door instead of
    queueing behind a broken dependency."""

    reason = "circuit-open"
