"""Trace-driven load generation: replay a multi-tenant day on the gateway.

The generator walks a :func:`~repro.workloads.traces.generate_multitenant_trace`
arrival list on the DES clock, submits each arrival, collects typed
rejections instead of crashing on them (shedding is expected behaviour
under overload), and finally waits for every admitted request to
complete — so ``run_blocking()`` returns with the full offered load
accounted for: completed, or rejected-with-reason.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..workloads.traces import TenantRequest
from .errors import AdmissionRejected
from .gateway import ServeGateway
from .request import ServeRequest

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Replays a trace against a gateway and gathers the outcomes."""

    def __init__(self, gateway: ServeGateway, trace: Sequence[TenantRequest]):
        self.gateway = gateway
        self.trace = list(trace)
        self.admitted: List[ServeRequest] = []
        self.rejected: List[Tuple[TenantRequest, AdmissionRejected]] = []

    # ------------------------------------------------------------------
    def run(self):
        """The replay process (generator): submit on schedule, then wait."""
        sim = self.gateway.sim
        for event in self.trace:
            if sim.now < event.at:
                yield sim.timeout(event.at - sim.now)
            try:
                self.admitted.append(self.gateway.submit_trace_request(event))
            except AdmissionRejected as exc:
                self.rejected.append((event, exc))
        pending = [r.completion for r in self.admitted if not r.completion.triggered]
        if pending:
            yield sim.all_of(pending)

    def run_blocking(self) -> "LoadGenerator":
        """Drive the simulator until the whole trace is served."""
        sim = self.gateway.sim
        proc = sim.process(self.run(), name="loadgen")
        sim.run_until(proc)
        return self

    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[ServeRequest]:
        return [r for r in self.admitted if r.done]

    @property
    def offered(self) -> int:
        return len(self.trace)

    def rejection_reasons(self) -> dict:
        """Reason-tag → count over the whole replay."""
        reasons: dict = {}
        for _event, exc in self.rejected:
            reasons[exc.reason] = reasons.get(exc.reason, 0) + 1
        return dict(sorted(reasons.items()))
