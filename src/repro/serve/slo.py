"""SLO accounting: per-class latency histograms and utilization gauges.

Everything is sampled on *simulated* time and kept in plain deterministic
containers, so two identical runs produce byte-identical metric exports
(`to_dict` → JSON).  Histograms retain raw values (serving traces here
are thousands of points, not billions) and summarize through the shared
:func:`repro.analysis.metrics.percentile` helpers; gauges are
event-sampled step series (queue depth changes exactly at enqueue /
dispatch instants, so sampling on transitions loses nothing).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..analysis.metrics import LatencySummary
from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..sim.trace import NULL_TRACER
from .classes import ClassPolicy, PriorityClass
from .request import ServeRequest

__all__ = ["LatencyHistogram", "GaugeSeries", "SLOAccountant"]


class LatencyHistogram:
    """Latency samples with percentile summary and log-spaced buckets."""

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError("negative latency sample in %s" % self.name)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def summary(self) -> Optional[LatencySummary]:
        """p50/p95/p99/max, or None when no samples landed."""
        if not self.values:
            return None
        return LatencySummary.from_values(self.values)

    def buckets(self, base: float = 2.0, floor: float = 1e-3) -> List[Tuple[float, int]]:
        """(upper_edge_seconds, count) pairs on log-spaced edges."""
        if base <= 1.0:
            raise ConfigurationError("bucket base must exceed 1")
        counts: Dict[int, int] = {}
        for value in self.values:
            exponent = 0 if value <= floor else int(math.ceil(math.log(value / floor, base) - 1e-12))
            counts[exponent] = counts.get(exponent, 0) + 1
        return [(floor * base ** e, counts[e]) for e in sorted(counts)]


class GaugeSeries:
    """A step-function gauge sampled at state transitions."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def sample(self, at: float, value: float) -> None:
        self.samples.append((at, float(value)))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    def max_value(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def time_weighted_mean(self, until: float) -> float:
        """Mean of the step function over [first sample, until]."""
        if not self.samples or until <= self.samples[0][0]:
            return 0.0
        area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            if t0 >= until:
                break
            area += v0 * (min(t1, until) - t0)
        last_t, last_v = self.samples[-1]
        if until > last_t:
            area += last_v * (until - last_t)
        return area / (until - self.samples[0][0])


class _ClassStats:
    """Per-class view over the accountant's metric registry.

    Latency histograms keep raw values locally (percentile summaries need
    them); every scalar counter reads through to labeled instruments on
    the shared :class:`~repro.obs.MetricsRegistry`, so the same numbers
    appear in ``accountant.to_dict()`` and in the registry's Prometheus
    export without double bookkeeping.
    """

    def __init__(self, cls: PriorityClass, registry: MetricsRegistry):
        self.cls = cls
        self._registry = registry
        self._label = cls.label
        self.ttft = LatencyHistogram("%s:ttft" % cls.label)
        self.tbt = LatencyHistogram("%s:tbt" % cls.label)
        self.e2e = LatencyHistogram("%s:e2e" % cls.label)

    def _value(self, name: str) -> int:
        counter = self._registry.counter(name)
        return int(counter.value(**{"class": self._label}))

    def _by_label(self, name: str, label: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for key, value in self._registry.counter(name).samples():
            labels = dict(key)
            if labels.get("class") == self._label:
                out[labels[label]] = int(value)
        return out

    @property
    def completed(self) -> int:
        return self._value("serve_completed_total")

    @property
    def tokens_out(self) -> int:
        return self._value("serve_tokens_out_total")

    @property
    def preemptions(self) -> int:
        return self._value("serve_preemptions_total")

    @property
    def rejected(self) -> Dict[str, int]:
        return self._by_label("serve_rejected_total", "reason")

    @property
    def slo_attained(self) -> int:
        return int(
            self._registry.counter("serve_slo_total").value(
                **{"class": self._label, "outcome": "attained"}
            )
        )

    @property
    def slo_violated(self) -> int:
        return int(
            self._registry.counter("serve_slo_total").value(
                **{"class": self._label, "outcome": "violated"}
            )
        )

    @property
    def failures(self) -> Dict[str, int]:
        """Per-exception-type counts of failed attempts (repro.faults)."""
        return self._by_label("serve_failures_total", "error")

    @property
    def retries(self) -> int:
        return self._value("serve_retries_total")

    @property
    def failed(self) -> int:
        """Requests that ended in the ``failed`` state."""
        return self._value("serve_failed_total")

    @property
    def cancelled(self) -> Dict[str, int]:
        """Per-reason counts of caller-cancelled requests (fleet tier)."""
        return self._by_label("serve_cancelled_total", "reason")


class SLOAccountant:
    """Collects per-class serving metrics against the simulated clock.

    Also mirrors queue depth into the tracer's counter stream (Chrome
    ``C`` events) and rejections as instant events, so the serving story
    lands in the same trace file as the prefill pipeline's spans.
    """

    def __init__(
        self,
        sim,
        policies: Dict[PriorityClass, ClassPolicy],
        tracer=None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.policies = policies
        self.tracer = tracer or NULL_TRACER
        #: the shared metrics namespace; pass the system-wide registry to
        #: land serving counters next to flash/cma/smc/npu instruments.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.classes: Dict[PriorityClass, _ClassStats] = {
            cls: _ClassStats(cls, self.registry) for cls in PriorityClass
        }
        self.queue_depth: Dict[PriorityClass, GaugeSeries] = {
            cls: GaugeSeries("queue:%s" % cls.label) for cls in PriorityClass
        }
        #: per-model busy-time accumulation for utilization.
        self._busy_since: Dict[str, Optional[float]] = {}
        self._busy_total: Dict[str, float] = {}
        self.utilization_gauge: Dict[str, GaugeSeries] = {}
        self.started_at = sim.now

    # ------------------------------------------------------------------
    # transition hooks (the gateway calls these)
    # ------------------------------------------------------------------
    def note_queue_depth(self, cls: PriorityClass, depth: int) -> None:
        self.queue_depth[cls].sample(self.sim.now, depth)
        self.registry.gauge("serve_queue_depth", "Requests queued per class").set(
            depth, **{"class": cls.label}
        )
        if self.tracer.enabled:
            self.tracer.counter("queue:%s" % cls.label, depth)

    def note_admitted(self, cls: PriorityClass) -> None:
        """A request passed admission control into a lane queue."""
        self.registry.counter("serve_admitted_total", "Requests admitted").inc(
            **{"class": cls.label}
        )

    def note_rejected(self, cls: PriorityClass, reason: str) -> None:
        self.registry.counter("serve_rejected_total", "Requests shed at admission").inc(
            **{"class": cls.label, "reason": reason}
        )
        if self.tracer.enabled:
            self.tracer.instant("admission", "shed %s (%s)" % (cls.label, reason), lane="gateway")

    def note_preemption(self, cls: PriorityClass) -> None:
        self.registry.counter("serve_preemptions_total", "Priority preemptions").inc(
            **{"class": cls.label}
        )

    def note_failure(self, cls: PriorityClass, kind: str) -> None:
        """One failed attempt (``kind`` is the exception type name)."""
        self.registry.counter(
            "serve_failures_total", "Failed attempts by exception type"
        ).inc(**{"class": cls.label, "error": kind})
        if self.tracer.enabled:
            self.tracer.instant("failure", "%s (%s)" % (cls.label, kind), lane="gateway")

    def note_retry(self, cls: PriorityClass) -> None:
        """The gateway re-queued a failed request for another attempt."""
        self.registry.counter("serve_retries_total", "Gateway retry re-queues").inc(
            **{"class": cls.label}
        )

    def note_failed(self, cls: PriorityClass) -> None:
        """A request ended in the ``failed`` state (retries exhausted or
        the fault was fatal)."""
        self.registry.counter("serve_failed_total", "Terminally failed requests").inc(
            **{"class": cls.label}
        )

    def note_cancelled(self, cls: PriorityClass, reason: str) -> None:
        """A request was cancelled by its caller (a fleet hedge lost the
        race, or its device drained) — neither completed nor failed, and
        deliberately *not* an SLO outcome: the fleet tier accounts the
        logical request once, at the ticket level, so a cancelled loser
        must not double-charge the class."""
        self.registry.counter(
            "serve_cancelled_total", "Requests cancelled by the caller"
        ).inc(**{"class": cls.label, "reason": reason})

    def note_dispatch(self, model_id: str) -> None:
        self._busy_since[model_id] = self.sim.now

    def note_release(self, model_id: str) -> None:
        since = self._busy_since.get(model_id)
        if since is None:
            return
        self._busy_total[model_id] = self._busy_total.get(model_id, 0.0) + (self.sim.now - since)
        self._busy_since[model_id] = None
        gauge = self.utilization_gauge.setdefault(
            model_id, GaugeSeries("utilization:%s" % model_id)
        )
        value = self.utilization(model_id)
        gauge.sample(self.sim.now, value)
        if self.tracer.enabled:
            self.tracer.counter("utilization:%s" % model_id, round(value, 6))

    def observe(self, request: ServeRequest) -> None:
        """Fold one completed request into its class's metrics."""
        stats = self.classes[request.priority]
        label = {"class": request.priority.label}
        self.registry.counter("serve_completed_total", "Completed requests").inc(**label)
        self.registry.counter("serve_tokens_out_total", "Tokens generated").inc(
            request.tokens_generated, **label
        )
        self.registry.histogram(
            "serve_ttft_seconds", "Time to first token"
        ).observe(request.ttft, **label)
        stats.ttft.add(request.ttft)
        stats.e2e.add(request.e2e_latency)
        if request.tokens_generated > 1:
            stats.tbt.add(request.tbt)
        attained = request.slo_attained
        if attained is True:
            self.registry.counter("serve_slo_total", "SLO outcomes").inc(
                outcome="attained", **label
            )
        elif attained is False:
            self.registry.counter("serve_slo_total", "SLO outcomes").inc(
                outcome="violated", **label
            )

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def utilization(self, model_id: str, until: Optional[float] = None) -> float:
        """Busy fraction of the model's TA over the accounting window."""
        until = self.sim.now if until is None else until
        window = until - self.started_at
        if window <= 0:
            return 0.0
        busy = self._busy_total.get(model_id, 0.0)
        since = self._busy_since.get(model_id)
        if since is not None:
            busy += until - since
        return busy / window

    def summary(self, cls: PriorityClass, kind: str = "ttft") -> Optional[LatencySummary]:
        stats = self.classes[cls]
        hist = {"ttft": stats.ttft, "tbt": stats.tbt, "e2e": stats.e2e}.get(kind)
        if hist is None:
            raise ConfigurationError("kind must be ttft/tbt/e2e, got %r" % (kind,))
        return hist.summary()

    def throughput_tokens_per_second(self, cls: PriorityClass, until: Optional[float] = None) -> float:
        until = self.sim.now if until is None else until
        window = until - self.started_at
        if window <= 0:
            return 0.0
        return self.classes[cls].tokens_out / window

    def to_dict(self) -> Dict:
        """A JSON-stable export (sorted keys, plain floats) — the
        determinism tests serialize this and compare bytes."""
        out: Dict = {"classes": {}, "utilization": {}}
        for cls in PriorityClass:
            stats = self.classes[cls]
            entry: Dict = {
                "completed": stats.completed,
                "tokens_out": stats.tokens_out,
                "preemptions": stats.preemptions,
                "rejected": dict(sorted(stats.rejected.items())),
                "failures": dict(sorted(stats.failures.items())),
                "failed": stats.failed,
                "retries": stats.retries,
                "slo_attained": stats.slo_attained,
                "slo_violated": stats.slo_violated,
                "queue_depth_max": self.queue_depth[cls].max_value(),
            }
            for kind in ("ttft", "tbt", "e2e"):
                summary = self.summary(cls, kind)
                entry[kind] = (
                    None
                    if summary is None
                    else {
                        "count": summary.count,
                        "mean": round(summary.mean, 9),
                        "p50": round(summary.p50, 9),
                        "p95": round(summary.p95, 9),
                        "p99": round(summary.p99, 9),
                        "max": round(summary.max, 9),
                    }
                )
            out["classes"][cls.label] = entry
        for model_id in sorted(self._busy_total):
            out["utilization"][model_id] = round(self.utilization(model_id), 9)
        return out
