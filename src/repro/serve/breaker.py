"""Per-model-TA circuit breaker and failure classification.

A lane whose TA keeps failing (a wedged NPU path, a storage device
returning errors faster than the recovery policy can absorb) should stop
receiving dispatches for a while instead of burning every queued request
against the same broken dependency.  The breaker is the standard
three-state machine, driven entirely by the simulated clock so serving
stays deterministic:

* **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them open the breaker;
* **open** — dispatches are refused for ``cooldown`` simulated seconds;
* **half_open** — after the cooldown one *probe* request is let through:
  success closes the breaker, failure re-opens it for another cooldown.

:func:`classify_failure` decides what the gateway does with a failed
request: ``"retryable"`` faults (transient storage, watchdog, memory
pressure) re-queue the request at the head of its class, while
``"fatal"`` faults (security violations, protocol bugs, configuration
misuse) fail the request immediately — retrying an Iago detection would
just hand the attacker more attempts.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import (
    ConfigurationError,
    DeviceLost,
    IagoViolation,
    MigrationError,
    OutOfMemory,
    ProtocolError,
    SecurityViolation,
    StorageError,
    WatchdogTimeout,
)

__all__ = ["CircuitBreaker", "classify_failure"]

#: transient faults the hardened stack expects and can absorb: another
#: attempt has a real chance of succeeding.
_RETRYABLE = (StorageError, WatchdogTimeout, MigrationError, OutOfMemory)
#: never retry: an attack detection or a caller bug does not get better
#: with repetition.
#: DeviceLost is fatal *for this lane* — the device's secure state is
#: gone, so the local retry path cannot help; the fleet router owns the
#: failover (and pays the re-warm cost on another device).
_FATAL = (SecurityViolation, IagoViolation, ConfigurationError, ProtocolError, DeviceLost)


def classify_failure(exc: BaseException) -> str:
    """Map an exception from the TA to ``"retryable"`` or ``"fatal"``."""
    if isinstance(exc, _RETRYABLE):
        return "retryable"
    if isinstance(exc, _FATAL):
        return "fatal"
    return "fatal"


class CircuitBreaker:
    """Three-state (closed/open/half-open) breaker on the sim clock."""

    def __init__(self, sim, failure_threshold: int = 3, cooldown: float = 1.0):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: float = 0.0
        self.opens = 0
        self.probes = 0
        #: (sim_time, new_state) per transition, for tests and debugging.
        self.transitions: List[Tuple[float, str]] = []
        #: observability attach points (set by the gateway / instrument()).
        self.lane: str = ""
        self.metrics = None
        self.recorder = None

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the lane dispatch right now?  Pure check, no side effects.

        An open breaker whose cooldown has elapsed moves to half-open
        (that transition is the one side effect — it is idempotent and
        time-driven, not caller-driven).
        """
        if self.state == "open":
            if self.sim.now - self.opened_at >= self.cooldown:
                self._transition("half_open")
            else:
                return False
        if self.state == "half_open":
            # Exactly one probe in flight at a time.
            return self.probes == 0
        return True

    def on_dispatch(self) -> None:
        """The lane dispatched a request while not closed (the probe)."""
        if self.state == "half_open":
            self.probes += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.probes = 0
        if self.state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.consecutive_failures >= self.failure_threshold
        ):
            self.probes = 0
            self.opened_at = self.sim.now
            self.opens += 1
            self._transition("open")

    def remaining_cooldown(self) -> float:
        """Seconds until an open breaker half-opens (0 when not open)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self.cooldown - (self.sim.now - self.opened_at))

    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.sim.now, state))
        if self.metrics is not None:
            self.metrics.counter(
                "serve_breaker_transitions_total",
                "Circuit-breaker state transitions by lane and new state.",
            ).inc(lane=self.lane, state=state)
        if self.recorder is not None:
            self.recorder.record(
                "serve", "breaker.transition", state, lane=self.lane
            )
