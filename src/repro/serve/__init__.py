"""repro.serve — the multi-tenant serving gateway over TZ-LLM.

The scaling layer between client tenants and the protected models: many
sessions, several models, priority classes with token-boundary
preemption (the §5.2/Fig. 13 effect at serving scale), bounded admission
with deadline-based load shedding, and per-class SLO accounting — the
foundation later batching / multi-backend / sharding PRs plug into.

Failure handling (see :mod:`repro.faults` and ``docs/robustness.md``):
a dispatch that dies inside the TA is classified retryable/fatal
(:func:`~repro.serve.breaker.classify_failure`), retryable faults
re-queue the request at the head of its class up to
``GatewayConfig.max_retries`` times, and a per-model-TA
:class:`~repro.serve.breaker.CircuitBreaker` stops dispatching to a lane
that keeps failing.  Per-exception-type failure and retry counters land
in the SLO export.

Quick start::

    from repro import TZLLM, TINYLLAMA
    from repro.serve import GatewayConfig, ServeGateway

    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)                      # cold start
    gateway = ServeGateway(system, GatewayConfig(scheduling="priority"))
    request = gateway.submit_blocking(prompt_tokens=64, output_tokens=16,
                                      priority="interactive")
    print(request.ttft, request.e2e_latency)

See ``docs/serving.md`` for the architecture and
``benchmarks/bench_serve_gateway.py`` for FIFO vs priority-preemptive
dispatch under a mixed multi-tenant trace.
"""

from .admission import AdmissionController, ServiceTimePredictor
from .breaker import CircuitBreaker, classify_failure
from .classes import ClassPolicy, PriorityClass, default_policies
from .errors import AdmissionRejected, CircuitOpen, QueueFull, SLOUnattainable
from .gateway import GatewayConfig, ServeGateway
from .loadgen import LoadGenerator
from .request import ServeRequest
from .slo import GaugeSeries, LatencyHistogram, SLOAccountant

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CircuitBreaker",
    "CircuitOpen",
    "ClassPolicy",
    "GatewayConfig",
    "GaugeSeries",
    "LatencyHistogram",
    "LoadGenerator",
    "PriorityClass",
    "QueueFull",
    "SLOAccountant",
    "SLOUnattainable",
    "ServeGateway",
    "ServeRequest",
    "ServiceTimePredictor",
    "classify_failure",
    "default_policies",
]
