"""Priority classes and per-class serving policy.

Three classes cover the on-device serving mix (the FlexServe taxonomy
mapped onto TZ-LLM's single-TA-per-model deployment):

* ``INTERACTIVE`` — a user is watching (chat turns, UI automation).
  Latency-SLO'd, shed under overload, and allowed to *preempt* a running
  lower-priority decode at a token boundary — the §5.2/Fig. 13
  preemption idea lifted from micro-operators to whole requests.
* ``BATCH`` — deferred-but-expected work (summarize my inbox).  Large
  queue, loose SLO, preemptible.
* ``BACKGROUND`` — opportunistic work (indexing, embeddings).  No
  latency SLO at all; first to be preempted.

Lower enum value = more urgent; the value doubles as the dispatch
priority key, so comparisons read naturally
(``PriorityClass.INTERACTIVE < PriorityClass.BATCH``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Optional, Union

from ..errors import ConfigurationError

__all__ = ["PriorityClass", "ClassPolicy", "default_policies"]


class PriorityClass(IntEnum):
    """Request urgency; lower value dispatches (and preempts) first."""

    INTERACTIVE = 0
    BATCH = 1
    BACKGROUND = 2

    @classmethod
    def parse(cls, value: Union["PriorityClass", str]) -> "PriorityClass":
        """Accept an enum member or its lowercase name (trace files)."""
        if isinstance(value, cls):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            raise ConfigurationError(
                "unknown priority class %r (have: %s)"
                % (value, ", ".join(m.name.lower() for m in cls))
            )

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class ClassPolicy:
    """How the gateway treats one priority class.

    ``queue_capacity`` bounds the class's queue *per model lane* — the
    backpressure guarantee that no queue grows without limit.
    ``ttft_slo`` is the class's time-to-first-token target in simulated
    seconds (``None`` = no latency promise, never shed on deadline);
    admission rejects a request whose predicted TTFT already exceeds it.
    ``preemptor`` classes may interrupt a running preemptible request;
    ``preemptible`` requests yield the TA at the next token boundary.
    """

    queue_capacity: int = 64
    ttft_slo: Optional[float] = None
    preemptor: bool = False
    preemptible: bool = True

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ConfigurationError("ttft_slo must be positive (or None)")


def default_policies() -> Dict[PriorityClass, "ClassPolicy"]:
    """The default three-tier policy table (override per deployment)."""
    return {
        PriorityClass.INTERACTIVE: ClassPolicy(
            queue_capacity=8, ttft_slo=5.0, preemptor=True, preemptible=False
        ),
        PriorityClass.BATCH: ClassPolicy(
            queue_capacity=64, ttft_slo=60.0, preemptor=False, preemptible=True
        ),
        PriorityClass.BACKGROUND: ClassPolicy(
            queue_capacity=128, ttft_slo=None, preemptor=False, preemptible=True
        ),
    }
