"""Model-file confidentiality: a real stream cipher with a timing model.

The paper encrypts model files with OpenSSL (AES) and measures 0.9 s to
decrypt 8 GB of parameters on the big cluster.  Here we implement a real
keystream cipher (SHA-256 in counter mode) so that:

* ciphertext on simulated flash is genuinely unintelligible without the
  key (the "attacker reads flash" test decrypts to garbage), and
* decryption is a real byte transformation on the restoration path — a
  corrupted ciphertext produces corrupted plaintext that the checksum
  layer then catches (the model-loading Iago defense, §6).

The *duration* of a decryption is a separate concern, charged by the
pipeline through :func:`decrypt_duration` using the calibrated per-core
bandwidth (so an 8 GB model costs ~0.9 s of simulated time on 4 cores
regardless of how many real bytes back the scaled-down payload).
"""

from __future__ import annotations

import hashlib
import struct

from ..config import CryptoSpec
from ..errors import ConfigurationError

__all__ = ["KEY_SIZE", "NONCE_SIZE", "keystream_xor", "encrypt", "decrypt", "decrypt_duration"]

KEY_SIZE = 32
NONCE_SIZE = 16
_BLOCK = hashlib.sha256().digest_size


def _check_key(key: bytes) -> None:
    if not isinstance(key, (bytes, bytearray)) or len(key) != KEY_SIZE:
        raise ConfigurationError("key must be %d bytes" % KEY_SIZE)


def keystream_xor(key: bytes, nonce: bytes, data: bytes, offset: int = 0) -> bytes:
    """XOR ``data`` with the keystream starting at byte ``offset``.

    Seekable: encrypting a large file in chunks with the correct offsets
    equals encrypting it in one piece, which lets the restoration
    pipeline decrypt tensors independently and out of order.
    """
    _check_key(key)
    if len(nonce) != NONCE_SIZE:
        raise ConfigurationError("nonce must be %d bytes" % NONCE_SIZE)
    if offset < 0:
        raise ConfigurationError("negative offset")
    out = bytearray(len(data))
    pos = 0
    while pos < len(data):
        absolute = offset + pos
        counter, skip = divmod(absolute, _BLOCK)
        block = hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest()
        take = min(len(data) - pos, _BLOCK - skip)
        for i in range(take):
            out[pos + i] = data[pos + i] ^ block[skip + i]
        pos += take
    return bytes(out)


def encrypt(key: bytes, nonce: bytes, plaintext: bytes, offset: int = 0) -> bytes:
    """Encrypt ``plaintext`` at keystream position ``offset``."""
    return keystream_xor(key, nonce, plaintext, offset)


def decrypt(key: bytes, nonce: bytes, ciphertext: bytes, offset: int = 0) -> bytes:
    """Decrypt ``ciphertext`` that was encrypted at position ``offset``."""
    return keystream_xor(key, nonce, ciphertext, offset)


def decrypt_duration(nominal_bytes: float, threads: int, spec: CryptoSpec) -> float:
    """Simulated seconds to decrypt ``nominal_bytes`` on ``threads`` cores."""
    if threads < 1:
        raise ConfigurationError("threads must be >= 1")
    return nominal_bytes / (spec.decrypt_bw_per_core * threads)
