"""Key hierarchy: hardware-rooted TEE key wrapping per-model keys.

The model provider encrypts the model file with a *model key*.  The model
key itself is stored on flash wrapped (encrypted) under a device-unique
*hardware key* that only the TEE can read (§6: "The model key in flash is
encrypted with a hardware-protected TEE key.  It can only be decrypted by
the TEE OS.").  The simulated key store enforces the world check, and the
TEE OS additionally enforces per-TA access control on unwrapped keys.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import IntegrityError, SecurityViolation
from ..hw.common import World
from .cipher import KEY_SIZE, NONCE_SIZE, keystream_xor

__all__ = ["derive_key", "HardwareKeyStore", "wrap_model_key", "unwrap_model_key"]

_WRAP_NONCE = b"tzllm-key-wrap!!"
assert len(_WRAP_NONCE) == NONCE_SIZE


def derive_key(seed: bytes, label: str) -> bytes:
    """Deterministic KEY_SIZE-byte key from a seed and a label."""
    return hashlib.sha256(b"tzllm-kdf:" + seed + b":" + label.encode()).digest()[:KEY_SIZE]


class HardwareKeyStore:
    """Device-unique root key, readable only from the secure world."""

    def __init__(self, device_seed: bytes):
        self._root = derive_key(device_seed, "hardware-root")
        self.reads = 0

    def hardware_key(self, world: World) -> bytes:
        if not world.is_secure:
            raise SecurityViolation("hardware key read from non-secure world")
        self.reads += 1
        return self._root


def wrap_model_key(hardware_key: bytes, model_key: bytes, model_id: str) -> bytes:
    """Encrypt + authenticate ``model_key`` under the hardware key."""
    wrap_key = derive_key(hardware_key, "wrap:" + model_id)
    body = keystream_xor(wrap_key, _WRAP_NONCE, model_key)
    mac = hmac.new(wrap_key, body, hashlib.sha256).digest()[:16]
    return body + mac


def unwrap_model_key(hardware_key: bytes, wrapped: bytes, model_id: str) -> bytes:
    """Recover the model key; raises :class:`IntegrityError` on tamper."""
    if len(wrapped) != KEY_SIZE + 16:
        raise IntegrityError("wrapped key blob has wrong length")
    wrap_key = derive_key(hardware_key, "wrap:" + model_id)
    body, mac = wrapped[:KEY_SIZE], wrapped[KEY_SIZE:]
    expect = hmac.new(wrap_key, body, hashlib.sha256).digest()[:16]
    if not hmac.compare_digest(mac, expect):
        raise IntegrityError("wrapped model key failed authentication")
    return keystream_xor(wrap_key, _WRAP_NONCE, body)
