"""Checksums for delegated model loading (the model-loading Iago defense).

The TA delegates flash I/O to the untrusted REE, so every loaded chunk is
verified against a checksum carried in the (authenticated) model header
(§6: "TZ-LLM counters this by verifying the returned content using
checksums").  We use truncated SHA-256; the timing model charges
verification at the calibrated per-core bandwidth.
"""

from __future__ import annotations

import hashlib
import hmac

from ..config import CryptoSpec

__all__ = ["CHECKSUM_SIZE", "checksum", "verify", "checksum_duration"]

CHECKSUM_SIZE = 16


def checksum(data: bytes) -> bytes:
    """Truncated-SHA-256 checksum of ``data``."""
    return hashlib.sha256(b"tzllm-sum:" + data).digest()[:CHECKSUM_SIZE]


def verify(data: bytes, expected: bytes) -> bool:
    """Constant-time check of ``data`` against an ``expected`` checksum."""
    return hmac.compare_digest(checksum(data), expected)


def checksum_duration(nominal_bytes: float, threads: int, spec: CryptoSpec) -> float:
    """Simulated seconds to checksum ``nominal_bytes`` on ``threads`` cores."""
    return nominal_bytes / (spec.checksum_bw_per_core * max(1, threads))
