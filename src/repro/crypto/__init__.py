"""Cryptographic primitives for model confidentiality and integrity.

Real byte transformations (stream cipher, key wrapping, checksums) with
separate calibrated timing helpers — see module docstrings.
"""

from .checksum import CHECKSUM_SIZE, checksum, checksum_duration, verify
from .cipher import (
    KEY_SIZE,
    NONCE_SIZE,
    decrypt,
    decrypt_duration,
    encrypt,
    keystream_xor,
)
from .keys import HardwareKeyStore, derive_key, unwrap_model_key, wrap_model_key

__all__ = [
    "CHECKSUM_SIZE",
    "KEY_SIZE",
    "NONCE_SIZE",
    "HardwareKeyStore",
    "checksum",
    "checksum_duration",
    "decrypt",
    "decrypt_duration",
    "derive_key",
    "encrypt",
    "keystream_xor",
    "unwrap_model_key",
    "verify",
    "wrap_model_key",
]
