"""Recovery policy: how hard the TEE fights before surfacing a failure.

The default policy is *legacy*: no retries, no watchdog — exactly the
behaviour the rest of the test-suite (and the paper's prototype) assumes,
where a single injected flash error surfaces to the CA.  Hardened
deployments pass :meth:`RecoveryPolicy.hardened` (or their own tuning)
into ``TZLLM``/``TZLLMMulti``; the chaos suite and the fault-recovery
benchmark run hardened.

Knob-by-knob mapping to the recovery sites:

* ``flash_read_attempts`` — the prefill I/O driver's bounded retry on
  :class:`~repro.errors.StorageError` (exponential backoff).
* ``decrypt_refetch_attempts`` — corrupted-chunk recovery: a checksum
  failure re-fetches the group's ciphertext over a bounce buffer instead
  of aborting the prefill.  Persistent corruption still raises
  :class:`~repro.errors.IagoViolation` — an attacker must not be able to
  hide behind the retry loop.
* ``npu_job_timeout`` / ``npu_max_reissues`` — the TEE co-driver's
  watchdog on the REE scheduler: an un-taken shadow job is abandoned and
  re-issued at the *same* sequence number (replay-safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-recovery knobs threaded through the TA and its pipeline."""

    #: total load attempts per restore group (1 = legacy, no retry).
    flash_read_attempts: int = 1
    #: ciphertext re-fetches after a checksum failure (0 = legacy abort).
    decrypt_refetch_attempts: int = 0
    #: base backoff before retry ``n`` (doubles each attempt), seconds.
    retry_backoff: float = 2e-3
    #: TEE watchdog timeout on a secure job's completion (None = legacy,
    #: wait forever on the untrusted REE scheduler).
    npu_job_timeout: Optional[float] = None
    #: shadow-job re-issues before the watchdog gives up.
    npu_max_reissues: int = 2

    def __post_init__(self):
        if self.flash_read_attempts < 1:
            raise ConfigurationError("flash_read_attempts must be >= 1")
        if self.decrypt_refetch_attempts < 0:
            raise ConfigurationError("decrypt_refetch_attempts must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be non-negative")
        if self.npu_job_timeout is not None and self.npu_job_timeout <= 0:
            raise ConfigurationError("npu_job_timeout must be positive")
        if self.npu_max_reissues < 0:
            raise ConfigurationError("npu_max_reissues must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): base * 2^(n-1)."""
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        return self.retry_backoff * (2 ** (attempt - 1))

    @classmethod
    def hardened(cls) -> "RecoveryPolicy":
        """The chaos-suite posture: every recovery mechanism on, bounded."""
        return cls(
            flash_read_attempts=4,
            decrypt_refetch_attempts=3,
            retry_backoff=1e-3,
            npu_job_timeout=0.25,
            npu_max_reissues=3,
        )
