"""repro.faults — deterministic fault injection and recovery policy.

The robustness subsystem: the paper's trust model (§4.3) leaves flash
I/O, CMA migration and NPU scheduling in the untrusted REE, so the TEE
must survive not only a *malicious* normal world (the security suite)
but a *failing* one.  This package provides:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, declarative
  description of which fault sites fire, with what probability, inside
  which sim-time window;
* :class:`FaultInjector` — the runtime evaluator, armed onto a stack's
  fault sites (flash errors and bit-flips, CMA migration failures, REE
  NPU stalls and dropped SMC hand-offs, TEE job hangs);
* :class:`RecoveryPolicy` — how hard the TEE fights back: bounded flash
  retry, corrupted-chunk re-fetch, and the co-driver watchdog with
  replay-safe shadow-job re-issue.

Quick start::

    from repro import TZLLM, TINYLLAMA
    from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy

    system = TZLLM(TINYLLAMA, recovery=RecoveryPolicy.hardened())
    system.run_infer(8, 0)                      # cold start, fault-free
    plan = FaultPlan(7, [FaultSpec("flash.read_error", probability=0.05)])
    injector = plan.injector(system.sim).arm(system)
    record = system.run_infer(128, 16)          # survives injected errors
    print(injector.summary())

Everything is deterministic per seed: two runs under the same plan make
identical fault decisions and produce byte-identical outcomes (the
``tests/chaos`` suite asserts this).  See ``docs/robustness.md``.
"""

from .injector import FaultInjector
from .plan import KNOWN_SITES, FaultPlan, FaultSpec
from .recovery import RecoveryPolicy

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "RecoveryPolicy",
]
