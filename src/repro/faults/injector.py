"""The runtime half of fault injection: per-site fire decisions.

Components expose a ``fault_injector`` attribute (None by default) and
consult it at their fault sites; :meth:`FaultInjector.arm` attaches one
injector to every site-bearing component of a stack.  The injector keeps
per-site checked/fired counters so chaos tests can assert that a plan
actually exercised the paths it claims to.

Nothing here touches wall clocks or global RNG state: every decision
comes from the plan's per-site streams against the simulated clock, so a
seeded plan replays bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import ConfigurationError
from .plan import KNOWN_SITES, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` at fault sites."""

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self._streams: Dict[str, random.Random] = {
            site: plan.stream(site) for site in plan.specs
        }
        #: per-site decision counts (every consult, fired or not).
        self.checked: Dict[str, int] = {site: 0 for site in plan.specs}
        #: per-site fire counts.
        self.fired: Dict[str, int] = {site: 0 for site in plan.specs}

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def fires(self, site: str, target: Optional[str] = None) -> bool:
        """One fault decision at ``site`` (advances the site's stream).

        ``target`` scopes the check to one named entity (a fleet device);
        an exact-target spec shadows an untargeted one, and each keeps
        its own stream so targeted chaos never reshuffles ambient chaos.
        """
        if site not in KNOWN_SITES:
            raise ConfigurationError("unknown fault site %r" % site)
        spec = self.plan.spec(site, target)
        if spec is None:
            return False
        key = spec.key
        self.checked[key] += 1
        if spec.max_fires is not None and self.fired[key] >= spec.max_fires:
            return False
        # Draw even outside the window so the stream position depends only
        # on the per-site check count, never on when checks happened.
        draw = self._streams[key].random()
        if spec.window is not None:
            start, end = spec.window
            if not start <= self.sim.now < end:
                return False
        if draw >= spec.probability:
            return False
        self.fired[key] += 1
        return True

    def stall_delay(self, site: str, target: Optional[str] = None) -> float:
        """Injected stall seconds at ``site`` (0.0 when it does not fire)."""
        spec = self.plan.spec(site, target)
        if spec is None:
            return 0.0
        if not self.fires(site, target):
            return 0.0
        key = spec.key
        extra = spec.jitter * self._streams[key].random() if spec.jitter else 0.0
        return spec.delay + extra

    def severity(self, site: str, target: Optional[str] = None) -> float:
        """``delay + jitter * U[0,1)`` drawn *without* a fire decision.

        Fleet sites reuse the stall parameters as severity knobs (a gray
        slowdown factor); callers that already know the site fired use
        this to draw the magnitude from the same stream.
        """
        spec = self.plan.spec(site, target)
        if spec is None:
            return 0.0
        key = spec.key
        extra = spec.jitter * self._streams[key].random() if spec.jitter else 0.0
        return spec.delay + extra

    def corrupt(self, site: str, data: bytes) -> bytes:
        """Flip one deterministic bit of ``data`` if ``site`` fires.

        Returns ``data`` unchanged (same object) when the site is quiet,
        so callers can detect injection by identity.
        """
        if not data or not self.fires(site):
            return data
        stream = self._streams[site]
        index = stream.randrange(len(data))
        bit = stream.randrange(8)
        corrupted = bytearray(data)
        corrupted[index] ^= 1 << bit
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, target) -> "FaultInjector":
        """Attach this injector to every fault site of ``target``.

        ``target`` may be a :class:`~repro.stack.Stack` or any system
        object exposing one via ``.stack`` (``TZLLM``, ``TZLLMMulti``,
        ``REELLM``).  Returns self for chaining.
        """
        stack = getattr(target, "stack", target)
        stack.kernel.fs.flash.fault_injector = self
        for region in stack.kernel.cma_regions.values():
            region.fault_injector = self
        stack.ree_npu.fault_injector = self
        stack.tee_npu.fault_injector = self
        return self

    def disarm(self, target) -> None:
        """Detach from ``target``'s fault sites (counters are kept)."""
        stack = getattr(target, "stack", target)
        stack.kernel.fs.flash.fault_injector = None
        for region in stack.kernel.cma_regions.values():
            region.fault_injector = None
        stack.ree_npu.fault_injector = None
        stack.tee_npu.fault_injector = None

    # ------------------------------------------------------------------
    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Deterministic per-site ``{checked, fired}`` export."""
        return {
            site: {"checked": self.checked[site], "fired": self.fired[site]}
            for site in sorted(self.plan.specs)
        }
