"""Declarative, seeded fault plans: *what* can fail, *when*, *how often*.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` entries,
one per armed fault site.  Every site draws from its own RNG stream
(``random.Random("<seed>:<site>")``), so decisions at one site never
perturb another's — adding a flash-error spec does not reshuffle the NPU
stalls — and the whole plan is reproducible from ``(seed, specs)`` alone.
Determinism then rests on one invariant the simulator already provides:
fault-site checks happen in deterministic event order, so the i-th draw
at a site is the same draw in every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["KNOWN_SITES", "FaultSpec", "FaultPlan"]

#: Every fault site wired into the stack.  A spec naming anything else is
#: a typo, and typos in chaos configs silently test nothing — so reject.
KNOWN_SITES = frozenset(
    {
        "flash.read_error",  # hw/flash.py: the read fails with StorageError
        "flash.bit_flip",  # hw/flash.py: returned bytes silently corrupted
        "cma.migration_fail",  # ree/cma.py: movable page transiently pinned
        "ree.npu_stall",  # ree/npu_driver.py: scheduler stalls before an item
        "ree.smc_drop",  # ree/npu_driver.py: shadow hand-off SMC never sent
        "tee.job_hang",  # tee/npu_driver.py: completion delayed after the IRQ
        # Fleet-scope sites (fleet/resilience.py): whole-device failures the
        # routing tier must survive, not per-request faults the TA retries.
        "fleet.device_crash",  # device dies; secure state (KV, params) lost
        "fleet.reboot_loop",  # reboot fails and restarts instead of attesting
        "fleet.attest_fail",  # secure-world attestation rejects; re-reboot
        "fleet.gray_slowdown",  # latencies inflate silently; no errors raised
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault site: fire with ``probability`` per check.

    ``window`` restricts firing to a ``[start, end)`` sim-time interval;
    ``max_fires`` caps the total count (both optional).  ``delay`` and
    ``jitter`` only matter for stall/hang sites: the injected stall is
    ``delay + jitter * U[0,1)`` seconds, drawn from the site's stream.

    ``target`` scopes the spec to one named entity (a fleet device id);
    a targeted spec owns its own RNG stream keyed ``site@target`` and
    shadows any untargeted spec for checks against that target, so
    "crash hub-0 at t=4000" and "crash 0.1% of everything" compose.
    """

    site: str
    probability: float = 1.0
    window: Optional[Tuple[float, float]] = None
    max_fires: Optional[int] = None
    delay: float = 0.0
    jitter: float = 0.0
    target: Optional[str] = None

    @property
    def key(self) -> str:
        """The plan/stream key: ``site`` or ``site@target``."""
        return self.site if self.target is None else "%s@%s" % (self.site, self.target)

    def __post_init__(self):
        if self.site not in KNOWN_SITES:
            raise ConfigurationError(
                "unknown fault site %r (known: %s)" % (self.site, sorted(KNOWN_SITES))
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        if self.window is not None and self.window[0] >= self.window[1]:
            raise ConfigurationError("window start must precede end")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigurationError("max_fires must be non-negative")
        if self.delay < 0 or self.jitter < 0:
            raise ConfigurationError("delay and jitter must be non-negative")


class FaultPlan:
    """A seed plus the list of armed sites — the unit chaos tests share.

    Two runs armed with equal plans make byte-identical fault decisions;
    the chaos suite's determinism assertions rest on exactly this.
    """

    def __init__(self, seed: int, specs: Sequence[FaultSpec]):
        self.seed = int(seed)
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.key in self.specs:
                raise ConfigurationError("duplicate spec for site %r" % spec.key)
            self.specs[spec.key] = spec

    def __contains__(self, site: str) -> bool:
        return site in self.specs

    def spec(self, site: str, target: Optional[str] = None) -> Optional[FaultSpec]:
        """The spec arming ``site`` (exact-target match wins), or None."""
        if target is not None:
            targeted = self.specs.get("%s@%s" % (site, target))
            if targeted is not None:
                return targeted
        return self.specs.get(site)

    def stream(self, site: str) -> random.Random:
        """The site's private RNG stream (string-seeded, deterministic)."""
        return random.Random("%d:%s" % (self.seed, site))

    def injector(self, sim):
        """Build a :class:`~repro.faults.injector.FaultInjector` bound to
        ``sim``'s clock, ready to arm on a stack."""
        from .injector import FaultInjector

        return FaultInjector(sim, self)
