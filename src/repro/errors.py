"""Exception hierarchy for the TZ-LLM reproduction.

Every model-level failure derives from :class:`TZLLMError` so callers can
distinguish "the simulated system rejected this" from Python-level bugs.
Security-relevant denials derive from :class:`SecurityViolation`; the
security test-suite asserts these are raised when attacks run.
"""

from __future__ import annotations

__all__ = [
    "TZLLMError",
    "ConfigurationError",
    "SecurityViolation",
    "AccessDenied",
    "DMAViolation",
    "MMIODenied",
    "IagoViolation",
    "IntegrityError",
    "MemoryError_",
    "OutOfMemory",
    "ContiguityError",
    "MigrationError",
    "DeviceError",
    "StorageError",
    "WatchdogTimeout",
    "DeviceLost",
    "ProtocolError",
    "ModelFormatError",
]


class TZLLMError(Exception):
    """Base class for all model-level errors."""


class ConfigurationError(TZLLMError):
    """Invalid platform or system configuration."""


class SecurityViolation(TZLLMError):
    """An access-control or integrity check rejected an operation."""


class AccessDenied(SecurityViolation):
    """CPU memory access blocked (TZASC or address-space isolation)."""


class DMAViolation(SecurityViolation):
    """Device DMA to memory it may not touch (TZASC DMA filter)."""


class MMIODenied(SecurityViolation):
    """MMIO to a secure device from a non-secure master (TZPC)."""


class IagoViolation(SecurityViolation):
    """The untrusted REE returned results that failed TEE validation."""


class IntegrityError(SecurityViolation):
    """Checksum or sequence-number verification failed."""


class MemoryError_(TZLLMError):
    """Base for simulated memory-management failures."""


class OutOfMemory(MemoryError_):
    """Allocation failed: not enough (suitable) page frames."""


class ContiguityError(MemoryError_):
    """A contiguity requirement (TZASC region, CMA range) was violated."""


class MigrationError(MemoryError_):
    """CMA page migration failed at runtime (e.g. a transiently pinned
    page).  Retryable: the pin is usually released within microseconds,
    so the allocator backs off and tries the frame again."""


class DeviceError(TZLLMError):
    """Simulated device misuse (e.g. launching a job on a busy NPU)."""


class StorageError(DeviceError):
    """A runtime storage I/O failure (flash read error, missing file at
    request time).  Distinct from :class:`ConfigurationError`, which is
    reserved for setup mistakes: a storage error is something a hardened
    caller may retry, a configuration error never is."""


class WatchdogTimeout(DeviceError):
    """A TEE-side watchdog expired waiting on an untrusted REE service
    (scheduler stall, dropped SMC) and bounded recovery was exhausted."""


class DeviceLost(DeviceError):
    """The whole device died beneath an in-flight request (fleet-tier
    crash/reboot).  Secure-world state — parked KV, resident parameters,
    the attested TA — is gone, so the request cannot be retried on the
    same device; the routing tier must fail it over elsewhere and pay
    the re-warm cost there."""


class ProtocolError(TZLLMError):
    """REE/TEE co-driver protocol misuse that is not an attack."""


class ModelFormatError(TZLLMError):
    """Malformed model container file."""
