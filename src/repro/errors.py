"""Exception hierarchy for the TZ-LLM reproduction.

Every model-level failure derives from :class:`TZLLMError` so callers can
distinguish "the simulated system rejected this" from Python-level bugs.
Security-relevant denials derive from :class:`SecurityViolation`; the
security test-suite asserts these are raised when attacks run.
"""

from __future__ import annotations

__all__ = [
    "TZLLMError",
    "ConfigurationError",
    "SecurityViolation",
    "AccessDenied",
    "DMAViolation",
    "MMIODenied",
    "IagoViolation",
    "IntegrityError",
    "MemoryError_",
    "OutOfMemory",
    "ContiguityError",
    "DeviceError",
    "ProtocolError",
    "ModelFormatError",
]


class TZLLMError(Exception):
    """Base class for all model-level errors."""


class ConfigurationError(TZLLMError):
    """Invalid platform or system configuration."""


class SecurityViolation(TZLLMError):
    """An access-control or integrity check rejected an operation."""


class AccessDenied(SecurityViolation):
    """CPU memory access blocked (TZASC or address-space isolation)."""


class DMAViolation(SecurityViolation):
    """Device DMA to memory it may not touch (TZASC DMA filter)."""


class MMIODenied(SecurityViolation):
    """MMIO to a secure device from a non-secure master (TZPC)."""


class IagoViolation(SecurityViolation):
    """The untrusted REE returned results that failed TEE validation."""


class IntegrityError(SecurityViolation):
    """Checksum or sequence-number verification failed."""


class MemoryError_(TZLLMError):
    """Base for simulated memory-management failures."""


class OutOfMemory(MemoryError_):
    """Allocation failed: not enough (suitable) page frames."""


class ContiguityError(MemoryError_):
    """A contiguity requirement (TZASC region, CMA range) was violated."""


class DeviceError(TZLLMError):
    """Simulated device misuse (e.g. launching a job on a busy NPU)."""


class ProtocolError(TZLLMError):
    """REE/TEE co-driver protocol misuse that is not an attack."""


class ModelFormatError(TZLLMError):
    """Malformed model container file."""
