"""Tensor metadata: full-size semantics over scaled-down real payloads.

Every tensor carries its *nominal* byte size (what the real q8 model would
occupy — this drives all timing and memory-footprint accounting) and a
small *payload* of real bytes (what is actually stored, encrypted,
checksummed and copied — this keeps the functional data path honest
without materializing gigabytes).  Payload content is deterministic in
(model, tensor), so decryption results are verifiable end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from .models import ModelSpec

__all__ = ["TensorRole", "TensorMeta", "build_tensor_table", "tensor_plaintext"]


class TensorRole:
    """Role labels for tensors in the container's table."""

    EMBED = "embed"
    ATTN_NORM = "attn_norm"
    ATTN = "attn"
    FFN_NORM = "ffn_norm"
    FFN = "ffn"
    OUTPUT_NORM = "output_norm"
    LM_HEAD = "lm_head"


#: one payload byte per this many nominal bytes (bounded below/above).
PAYLOAD_SCALE = 1 << 17
PAYLOAD_MIN = 64
PAYLOAD_MAX = 8192


def payload_size(nominal_bytes: int) -> int:
    return max(PAYLOAD_MIN, min(PAYLOAD_MAX, nominal_bytes // PAYLOAD_SCALE))


@dataclass
class TensorMeta:
    """One tensor (or fused tensor group) in the model file."""

    name: str
    role: str
    layer: int  # -1 for global tensors
    nominal_bytes: int
    payload_bytes: int = 0
    #: byte offset of the payload within the container's payload section
    #: (also the cipher keystream offset), filled at pack time.
    offset: int = -1
    #: index in topological load order, filled at table build time.
    index: int = -1
    #: MoE expert id (-1 for dense tensors).
    expert: int = -1

    def __post_init__(self):
        if self.payload_bytes == 0:
            self.payload_bytes = payload_size(self.nominal_bytes)


def build_tensor_table(spec: ModelSpec) -> List[TensorMeta]:
    """Tensor table in topological (load) order.

    Tensors are fused at operator granularity — one attention group and
    one FFN group (or one per expert for MoE) per layer — matching the
    restoration granularity of §4.1.
    """
    bpp = spec.bytes_per_param
    table: List[TensorMeta] = [
        TensorMeta("token_embd", TensorRole.EMBED, -1, int(spec.embed_params * bpp))
    ]
    for layer in range(spec.n_layers):
        table.append(
            TensorMeta(
                "blk.%d.attn_norm" % layer,
                TensorRole.ATTN_NORM,
                layer,
                int(spec.hidden * bpp),
            )
        )
        table.append(
            TensorMeta(
                "blk.%d.attn" % layer, TensorRole.ATTN, layer, int(spec.attn_params * bpp)
            )
        )
        table.append(
            TensorMeta(
                "blk.%d.ffn_norm" % layer,
                TensorRole.FFN_NORM,
                layer,
                int(spec.hidden * bpp),
            )
        )
        if spec.n_experts == 1:
            table.append(
                TensorMeta(
                    "blk.%d.ffn" % layer,
                    TensorRole.FFN,
                    layer,
                    int(spec.ffn_params_per_expert * bpp),
                )
            )
        else:
            for expert in range(spec.n_experts):
                table.append(
                    TensorMeta(
                        "blk.%d.ffn.expert.%d" % (layer, expert),
                        TensorRole.FFN,
                        layer,
                        int(spec.ffn_params_per_expert * bpp),
                        expert=expert,
                    )
                )
    table.append(
        TensorMeta("output_norm", TensorRole.OUTPUT_NORM, -1, int(spec.hidden * bpp))
    )
    if not spec.tied_embeddings:
        table.append(
            TensorMeta("output", TensorRole.LM_HEAD, -1, int(spec.lm_head_params * bpp))
        )
    for index, tensor in enumerate(table):
        tensor.index = index
    return table


def tensor_plaintext(model_id: str, tensor: TensorMeta) -> bytes:
    """The deterministic "weights" of a tensor (real payload bytes)."""
    seed = hashlib.sha256(
        ("weights:%s:%s" % (model_id, tensor.name)).encode()
    ).digest()
    reps = tensor.payload_bytes // len(seed) + 1
    return (seed * reps)[: tensor.payload_bytes]
