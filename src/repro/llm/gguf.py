"""Model container: a GGUF-like file with encrypted tensor payloads.

Layout::

    b"TZLM" | u32 header_len | header (JSON) | payload section

The header is plaintext metadata (the paper notes tensor sizes already
leak through secure-memory scaling and treats that as an acceptable,
mitigable side channel).  It carries the tensor table — names, roles,
nominal sizes, payload offsets — plus per-tensor checksums **of the
ciphertext** (so the TA can verify REE-delegated reads before paying for
decryption) and the model key wrapped under the device hardware key.

Payloads are encrypted with the model key using the seekable stream
cipher at the payload's container offset, so tensors decrypt independently
and in any order — exactly what out-of-order pipelined restoration needs.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto import checksum, encrypt, wrap_model_key
from ..crypto.cipher import NONCE_SIZE
from ..errors import ModelFormatError
from .models import ModelSpec
from .tensors import TensorMeta, build_tensor_table, tensor_plaintext

__all__ = ["ModelContainer", "pack_model", "parse_container", "container_path"]

MAGIC = b"TZLM"
_DEFAULT_NONCE = b"tzllm-modelfile!"
assert len(_DEFAULT_NONCE) == NONCE_SIZE


def container_path(model_id: str) -> str:
    """Filesystem path of a model's encrypted container."""
    return "/models/%s.tzlm" % model_id


@dataclass
class ModelContainer:
    """Parsed view of a model file."""

    model_id: str
    display_name: str
    nonce: bytes
    wrapped_key: bytes
    tensors: List[TensorMeta]
    header_bytes: int  # offset of the payload section within the file
    total_payload_bytes: int

    @property
    def nominal_param_bytes(self) -> int:
        return sum(t.nominal_bytes for t in self.tensors)

    def tensor(self, name: str) -> TensorMeta:
        for tensor in self.tensors:
            if tensor.name == name:
                return tensor
        raise ModelFormatError("no tensor %r in %s" % (name, self.model_id))

    def file_offset(self, tensor: TensorMeta) -> int:
        """Absolute offset of a tensor's payload within the file."""
        return self.header_bytes + tensor.offset


def pack_model(
    spec: ModelSpec,
    model_key: bytes,
    hardware_key: bytes,
    nonce: bytes = _DEFAULT_NONCE,
) -> bytes:
    """Build the encrypted container for ``spec``.

    The provider-side operation: lay out payloads, encrypt each with the
    model key, checksum the ciphertext, and wrap the model key under the
    device's hardware key.
    """
    table = build_tensor_table(spec)
    offset = 0
    payloads: List[bytes] = []
    entries: List[Dict] = []
    for tensor in table:
        tensor.offset = offset
        plaintext = tensor_plaintext(spec.model_id, tensor)
        ciphertext = encrypt(model_key, nonce, plaintext, offset=offset)
        payloads.append(ciphertext)
        entries.append(
            {
                "name": tensor.name,
                "role": tensor.role,
                "layer": tensor.layer,
                "expert": tensor.expert,
                "nominal": tensor.nominal_bytes,
                "offset": tensor.offset,
                "size": tensor.payload_bytes,
                "checksum": checksum(ciphertext).hex(),
            }
        )
        offset += tensor.payload_bytes
    header = {
        "model_id": spec.model_id,
        "display_name": spec.display_name,
        "nonce": nonce.hex(),
        "wrapped_key": wrap_model_key(hardware_key, model_key, spec.model_id).hex(),
        "tensors": entries,
    }
    header_json = json.dumps(header, separators=(",", ":")).encode()
    return MAGIC + struct.pack("<I", len(header_json)) + header_json + b"".join(payloads)


def parse_container(data: bytes) -> ModelContainer:
    """Parse a container file (header only; payloads stay on flash)."""
    if len(data) < 8 or data[:4] != MAGIC:
        raise ModelFormatError("bad magic")
    (header_len,) = struct.unpack("<I", data[4:8])
    if 8 + header_len > len(data):
        raise ModelFormatError("truncated header")
    try:
        header = json.loads(data[8 : 8 + header_len])
    except ValueError as exc:
        raise ModelFormatError("malformed header JSON: %s" % exc)
    tensors: List[TensorMeta] = []
    for index, entry in enumerate(header["tensors"]):
        tensor = TensorMeta(
            name=entry["name"],
            role=entry["role"],
            layer=entry["layer"],
            nominal_bytes=entry["nominal"],
            payload_bytes=entry["size"],
            offset=entry["offset"],
            index=index,
            expert=entry.get("expert", -1),
        )
        tensor.checksum = bytes.fromhex(entry["checksum"])  # type: ignore[attr-defined]
        tensors.append(tensor)
    total_payload = sum(t.payload_bytes for t in tensors)
    if 8 + header_len + total_payload > len(data):
        raise ModelFormatError("truncated payload section")
    return ModelContainer(
        model_id=header["model_id"],
        display_name=header["display_name"],
        nonce=bytes.fromhex(header["nonce"]),
        wrapped_key=bytes.fromhex(header["wrapped_key"]),
        tensors=tensors,
        header_bytes=8 + header_len,
        total_payload_bytes=total_payload,
    )
