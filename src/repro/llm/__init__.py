"""The llama.cpp-like inference substrate.

Model zoo (:mod:`repro.llm.models`), tensor tables with scaled payloads
(:mod:`repro.llm.tensors`), the encrypted container format
(:mod:`repro.llm.gguf`), the computation DAG (:mod:`repro.llm.graph`), the
roofline cost model (:mod:`repro.llm.ops`), graph execution and decoding
(:mod:`repro.llm.runtime`), framework checkpointing
(:mod:`repro.llm.checkpoint`), the tokenizer and KV cache.
"""

from .checkpoint import checkpoint_path, cold_init, restore_checkpoint, save_checkpoint
from .gguf import ModelContainer, container_path, pack_model, parse_container
from .graph import (
    ComputationGraph,
    ComputeOp,
    build_batched_decode_graph,
    build_chunked_prefill_graph,
    build_decode_step_graph,
    build_prefill_graph,
)
from .kv_cache import (
    BlockCheckpoint,
    KVBlockPool,
    KVCache,
    PagedKVCache,
    PrefixTree,
    PromptSpec,
    ShareResult,
)
from .models import LLAMA3_8B, MODELS, PHI3_MINI, QWEN25_3B, TINYLLAMA, ModelSpec, get_model
from .ops import Engine, op_duration, op_duration_with_launch
from .quantization import dequantize_q8, quantize_q8
from .sampler import Sampler, SamplerConfig
from .runtime import (
    DecodeResult,
    DirectNPUBackend,
    GraphExecutor,
    NPUBackend,
    REEDriverNPUBackend,
    TEECoDriverNPUBackend,
    decode_tokens,
    sample_token,
)
from .tensors import TensorMeta, TensorRole, build_tensor_table, tensor_plaintext
from .tokenizer import Tokenizer

__all__ = [
    "LLAMA3_8B",
    "MODELS",
    "PHI3_MINI",
    "QWEN25_3B",
    "TINYLLAMA",
    "ComputationGraph",
    "ComputeOp",
    "BlockCheckpoint",
    "DecodeResult",
    "DirectNPUBackend",
    "Engine",
    "GraphExecutor",
    "KVBlockPool",
    "KVCache",
    "PagedKVCache",
    "ModelContainer",
    "ModelSpec",
    "NPUBackend",
    "PrefixTree",
    "PromptSpec",
    "REEDriverNPUBackend",
    "Sampler",
    "ShareResult",
    "SamplerConfig",
    "TEECoDriverNPUBackend",
    "TensorMeta",
    "TensorRole",
    "Tokenizer",
    "build_batched_decode_graph",
    "build_chunked_prefill_graph",
    "build_decode_step_graph",
    "build_prefill_graph",
    "build_tensor_table",
    "checkpoint_path",
    "cold_init",
    "container_path",
    "decode_tokens",
    "dequantize_q8",
    "get_model",
    "quantize_q8",
    "op_duration",
    "op_duration_with_launch",
    "pack_model",
    "parse_container",
    "restore_checkpoint",
    "sample_token",
    "save_checkpoint",
    "tensor_plaintext",
]
