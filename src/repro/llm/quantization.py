"""Block quantization (llama.cpp q8_0-style) with real arithmetic.

The paper's compatibility claim (Table 1) is that TZ-LLM supports
quantized models *as-is*, unlike obfuscation-based TSLP schemes that
break under quantization.  This module implements the actual q8_0
scheme — 32-element blocks, one fp16-ish scale per block, int8 codes —
so the claim rests on real math: weights quantize, dequantize within the
scheme's error bound, and the byte layout matches the 1.0625 bytes per
weight that the container sizes assume (scale amortized per block).

NumPy-based; used by tests and examples, and available to users who want
to push real tensors through the functional data path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["QBlock", "QuantizedTensor", "quantize_q8", "dequantize_q8", "BLOCK_SIZE"]

BLOCK_SIZE = 32
#: bytes per weight: 1 int8 code + 2 scale bytes per 32-element block.
BYTES_PER_WEIGHT = 1.0 + 2.0 / BLOCK_SIZE


@dataclass
class QBlock:
    scale: float
    codes: np.ndarray  # int8, length <= BLOCK_SIZE


@dataclass
class QuantizedTensor:
    """Quantized weights: per-block scales + int8 codes."""

    shape: tuple
    scales: np.ndarray  # float32, one per block
    codes: np.ndarray  # int8, flattened

    @property
    def n_weights(self) -> int:
        return int(np.prod(self.shape))

    @property
    def n_blocks(self) -> int:
        return len(self.scales)

    @property
    def nbytes(self) -> int:
        """Serialized size: int8 codes + fp16 scale per block."""
        return self.codes.size + 2 * self.n_blocks

    def to_bytes(self) -> bytes:
        return (
            self.scales.astype(np.float16).tobytes() + self.codes.astype(np.int8).tobytes()
        )


def quantize_q8(weights: np.ndarray) -> QuantizedTensor:
    """Quantize float weights to q8_0 blocks.

    Each 32-element block stores ``round(w / scale)`` with
    ``scale = max(|w|) / 127``; an all-zero block gets scale 0.
    """
    if weights.size == 0:
        raise ConfigurationError("cannot quantize an empty tensor")
    flat = np.asarray(weights, dtype=np.float32).reshape(-1)
    pad = (-len(flat)) % BLOCK_SIZE
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
    blocks = flat.reshape(-1, BLOCK_SIZE)
    amax = np.abs(blocks).max(axis=1)
    scales = np.where(amax > 0, amax / 127.0, 0.0).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0)
    codes = np.clip(np.rint(blocks / safe[:, None]), -127, 127).astype(np.int8)
    codes[scales == 0] = 0
    return QuantizedTensor(shape=weights.shape, scales=scales, codes=codes.reshape(-1))


def dequantize_q8(tensor: QuantizedTensor) -> np.ndarray:
    """Reconstruct float weights from q8_0 blocks."""
    codes = tensor.codes.astype(np.float32).reshape(-1, BLOCK_SIZE)
    out = codes * tensor.scales[:, None]
    return out.reshape(-1)[: tensor.n_weights].reshape(tensor.shape)


def quantization_error_bound(tensor: QuantizedTensor) -> float:
    """Worst-case absolute reconstruction error: half a code step."""
    return float(tensor.scales.max() / 2.0) if tensor.n_blocks else 0.0
