"""Transformer computation DAG (the object pipelined restoration extends).

The prefill graph is a chain of operators in topological order — exactly
the structure llama.cpp schedules and the property §4.1 exploits: each
operator touches a known parameter group, so the restoration planner
knows precisely which tensors the pipeline must prefetch next.

Operator placement follows the paper: layer norms and self-attention run
on the CPU; projections / matmuls run on the NPU when one is available
(``use_npu``), or the CPU otherwise.  With ``use_npu="auto"``, each
matmul picks the cheaper engine analytically — which is how decode ends
up CPU-bound for tiny models (NPU launch latency eats the gain, §7.1.2)
and NPU-bound for large ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..config import PlatformSpec
from ..errors import ConfigurationError
from .models import ModelSpec
from .ops import Engine, op_duration_with_launch
from .tensors import TensorMeta, TensorRole

__all__ = [
    "ComputeOp",
    "ComputationGraph",
    "build_prefill_graph",
    "build_chunked_prefill_graph",
    "build_decode_step_graph",
    "build_batched_decode_graph",
]


@dataclass
class ComputeOp:
    """One node of the DAG."""

    op_id: int
    name: str
    engine: str  # Engine.CPU or Engine.NPU
    layer: int
    flops: float
    bytes_touched: float
    tensors: List[TensorMeta] = field(default_factory=list)
    deps: List[int] = field(default_factory=list)

    @property
    def param_bytes(self) -> int:
        return sum(t.nominal_bytes for t in self.tensors)


class ComputationGraph:
    """Operators in topological order (a chain, plus explicit deps)."""

    def __init__(self, model: ModelSpec, ops: List[ComputeOp]):
        self.model = model
        self.ops = ops
        self._by_id = {op.op_id: op for op in ops}

    def __len__(self) -> int:
        return len(self.ops)

    def op(self, op_id: int) -> ComputeOp:
        return self._by_id[op_id]

    def total_flops(self) -> float:
        return sum(op.flops for op in self.ops)

    def total_param_bytes(self) -> int:
        return sum(op.param_bytes for op in self.ops)

    def tensors_in_order(self) -> List[TensorMeta]:
        """Parameter tensors in first-use (topological) order."""
        seen = set()
        ordered: List[TensorMeta] = []
        for op in self.ops:
            for tensor in op.tensors:
                if tensor.name not in seen:
                    seen.add(tensor.name)
                    ordered.append(tensor)
        return ordered

    def validate(self) -> None:
        """Check topological order and dependency sanity."""
        position = {op.op_id: index for index, op in enumerate(self.ops)}
        for op in self.ops:
            for dep in op.deps:
                if dep not in position:
                    raise ConfigurationError("op %d depends on unknown %d" % (op.op_id, dep))
                if position[dep] >= position[op.op_id]:
                    raise ConfigurationError(
                        "op %d depends on later op %d (not topological)" % (op.op_id, dep)
                    )


def _pick_engine(
    use_npu: Union[bool, str],
    flops: float,
    bytes_touched: float,
    platform: Optional[PlatformSpec],
) -> str:
    if use_npu is False:
        return Engine.CPU
    if use_npu is True:
        return Engine.NPU
    if use_npu == "auto":
        if platform is None:
            raise ConfigurationError("use_npu='auto' requires a platform spec")
        cpu = op_duration_with_launch(flops, bytes_touched, platform, Engine.CPU)
        npu = op_duration_with_launch(flops, bytes_touched, platform, Engine.NPU)
        return Engine.NPU if npu < cpu else Engine.CPU
    raise ConfigurationError("use_npu must be True, False or 'auto'")


def _tensor_map(tensors: Sequence[TensorMeta]) -> Dict[str, TensorMeta]:
    return {t.name: t for t in tensors}


def build_prefill_graph(
    model: ModelSpec,
    tensors: Sequence[TensorMeta],
    prompt_tokens: int,
    use_npu: Union[bool, str] = True,
    platform: Optional[PlatformSpec] = None,
) -> ComputationGraph:
    """The prefill chain over ``prompt_tokens`` tokens.

    ``tensors`` is the container's tensor table (so ops reference the
    *file's* tensor objects, offsets and all).
    """
    if prompt_tokens < 1:
        raise ConfigurationError("prompt must have at least one token")
    by_name = _tensor_map(tensors)
    T = prompt_tokens
    h = model.hidden
    ops: List[ComputeOp] = []

    def add(name, engine, layer, flops, bytes_touched, tensor_names):
        group = [by_name[n] for n in tensor_names]
        op = ComputeOp(
            op_id=len(ops),
            name=name,
            engine=engine,
            layer=layer,
            flops=flops,
            bytes_touched=bytes_touched,
            tensors=group,
            deps=[len(ops) - 1] if ops else [],
        )
        ops.append(op)
        return op

    embed = by_name["token_embd"]
    add("embed", Engine.CPU, -1, 2.0 * T * h, T * h, ["token_embd"])
    for layer in range(model.n_layers):
        norm_flops = 4.0 * T * h  # rmsnorm: square, mean, scale
        attn_tensor = by_name["blk.%d.attn" % layer]
        attn_flops = 2.0 * model.attn_params * T
        eng = _pick_engine(use_npu, attn_flops, attn_tensor.nominal_bytes, platform)
        add("blk.%d.attn_norm" % layer, Engine.CPU, layer, norm_flops, T * h, ["blk.%d.attn_norm" % layer])
        add("blk.%d.attn_proj" % layer, eng, layer, attn_flops, attn_tensor.nominal_bytes, ["blk.%d.attn" % layer])
        # Self-attention proper (softmax(QK^T)V): quadratic in T, CPU-resident.
        attn_core_flops = 4.0 * T * T * h
        add("blk.%d.attention" % layer, Engine.CPU, layer, attn_core_flops, T * model.kv_dim * 2, [])
        add("blk.%d.ffn_norm" % layer, Engine.CPU, layer, norm_flops, T * h, ["blk.%d.ffn_norm" % layer])
        if model.n_experts == 1:
            ffn_names = ["blk.%d.ffn" % layer]
        else:
            ffn_names = ["blk.%d.ffn.expert.%d" % (layer, e) for e in range(model.n_experts)]
        ffn_flops = 2.0 * model.ffn_params_per_expert * model.experts_per_token * T
        ffn_bytes = sum(by_name[n].nominal_bytes for n in ffn_names)
        eng = _pick_engine(use_npu, ffn_flops, ffn_bytes, platform)
        add("blk.%d.ffn_proj" % layer, eng, layer, ffn_flops, ffn_bytes, ffn_names)
    add("output_norm", Engine.CPU, -1, 4.0 * T * h, T * h, ["output_norm"])
    if not model.tied_embeddings:
        # Logits only for the final position during prefill.
        head = by_name["output"]
        head_flops = 2.0 * model.lm_head_params
        eng = _pick_engine(use_npu, head_flops, head.nominal_bytes, platform)
        add("lm_head", eng, -1, head_flops, head.nominal_bytes, ["output"])
    else:
        head_flops = 2.0 * model.embed_params
        eng = _pick_engine(use_npu, head_flops, embed.nominal_bytes, platform)
        add("lm_head", eng, -1, head_flops, embed.nominal_bytes, ["token_embd"])
    graph = ComputationGraph(model, ops)
    graph.validate()
    return graph


def build_chunked_prefill_graph(
    model: ModelSpec,
    tensors: Sequence[TensorMeta],
    chunk_tokens: int,
    context_tokens: int = 0,
    use_npu: Union[bool, str] = True,
    platform: Optional[PlatformSpec] = None,
) -> ComputationGraph:
    """Prefill ``chunk_tokens`` new tokens on top of ``context_tokens``
    of already-resident KV (shared-prefix hits, or earlier chunks).

    The matmul/norm work scales with the *chunk* (only new positions
    project), while self-attention attends from the chunk's queries over
    the full resident context — flops ``4 * chunk * (context + chunk) *
    hidden`` and KV bytes over ``context + chunk`` positions.  With
    ``context_tokens=0`` this degenerates exactly to
    :func:`build_prefill_graph` on ``chunk_tokens``, which is what makes
    the miss-suffix prefill of a shared prompt priceable as "a prompt
    that starts mid-stream"."""
    if chunk_tokens < 1:
        raise ConfigurationError("chunk must have at least one token")
    if context_tokens < 0:
        raise ConfigurationError("context_tokens must be >= 0")
    graph = build_prefill_graph(
        model, tensors, chunk_tokens, use_npu=use_npu, platform=platform
    )
    if context_tokens:
        total = context_tokens + chunk_tokens
        for op in graph.ops:
            if op.name.endswith(".attention"):
                op.flops = 4.0 * chunk_tokens * total * model.hidden
                op.bytes_touched = total * model.kv_dim * 2
    return graph


def build_decode_step_graph(
    model: ModelSpec,
    tensors: Sequence[TensorMeta],
    kv_tokens: int,
    use_npu: Union[bool, str] = "auto",
    platform: Optional[PlatformSpec] = None,
) -> ComputationGraph:
    """One decode iteration with ``kv_tokens`` of context (single token).

    Decode is bandwidth-bound: each matmul streams its weights once; the
    attention op additionally streams the KV cache.
    """
    graph = build_prefill_graph(model, tensors, 1, use_npu=use_npu, platform=platform)
    # Patch the attention ops to read the accumulated KV cache.
    kv_bytes = kv_tokens * model.kv_dim * 2 * model.kv_bytes_per_element
    for op in graph.ops:
        if op.name.endswith(".attention"):
            op.flops = 4.0 * kv_tokens * model.hidden
            op.bytes_touched = kv_bytes
    return graph


#: decode-graph op classification by name suffix: matmuls stream their
#: weights once per step regardless of how many sequences share it.
_WEIGHT_OP_SUFFIXES = (".attn_proj", ".ffn_proj", "lm_head")


def build_batched_decode_graph(
    model: ModelSpec,
    tensors: Sequence[TensorMeta],
    kv_token_counts: Sequence[int],
    use_npu: Union[bool, str] = "auto",
    platform: Optional[PlatformSpec] = None,
) -> ComputationGraph:
    """One *fused* decode iteration over a batch of sequences.

    ``kv_token_counts`` holds the per-sequence context length; the batch
    size is its length.  This is where batching pays: per step the
    weight matmuls stream their parameters **once** (the setup cost, a
    fixed per-step charge) while their flops scale with the batch (the
    per-token marginal cost) — decode is bandwidth-bound, so the roofline
    ``max(flops/rate, bytes/bandwidth)`` barely moves until the batch is
    large enough to make compute dominate.  Attention reads every
    sequence's own KV blocks, so both its flops and bytes are sums over
    the batch.  Activation-bound ops (embed, norms) scale in both terms.

    Engines are re-picked against the *batched* costs: a matmul that is
    CPU-cheapest for one token can cross the NPU's launch-latency
    break-even once four sequences share the launch (§7.1.2 inverted).
    """
    if not kv_token_counts:
        raise ConfigurationError("batch must contain at least one sequence")
    batch = len(kv_token_counts)
    graph = build_prefill_graph(model, tensors, 1, use_npu=False)
    kv_flops = sum(4.0 * t * model.hidden for t in kv_token_counts)
    kv_bytes = sum(
        t * model.kv_dim * 2 * model.kv_bytes_per_element for t in kv_token_counts
    )
    for op in graph.ops:
        if op.name.endswith(".attention"):
            op.flops = kv_flops
            op.bytes_touched = kv_bytes
            op.engine = Engine.CPU
        elif op.name.endswith(_WEIGHT_OP_SUFFIXES):
            op.flops *= batch  # weights stream once; activations per sequence
            op.engine = _pick_engine(use_npu, op.flops, op.bytes_touched, platform)
        else:
            op.flops *= batch
            op.bytes_touched *= batch
            op.engine = Engine.CPU
    return graph
