"""A deterministic toy tokenizer (the functional stand-in for the real one).

Word/punctuation segmentation with hashed ids into the model's vocab.
Round-trips exactly (ids decode back to the original text) because the
decoder keeps a reverse map per instance.  Token *counts* — the only
property the evaluation depends on — behave like a real tokenizer's:
roughly one token per short word plus punctuation.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List

from ..errors import ConfigurationError

__all__ = ["Tokenizer"]

_SPLIT = re.compile(r"\s+|([^\w\s])")

BOS_ID = 1
_RESERVED = 8  # ids below this are special tokens

#: decode fallback for ids this instance never produced (e.g. sampled
#: output tokens): a deterministic pseudo-vocabulary keeps generated
#: text readable instead of emitting <unk> markers.
_FALLBACK_WORDS = (
    "the and for with from this that have will would could about where "
    "model device secure memory token layer prompt answer context reply "
    "system request schedule result detail option update follow check"
).split()


class Tokenizer:
    """Deterministic word-level tokenizer with exact round-tripping."""

    def __init__(self, model_id: str, vocab_size: int):
        if vocab_size <= _RESERVED:
            raise ConfigurationError("vocab too small")
        self.model_id = model_id
        self.vocab_size = vocab_size
        self._reverse: Dict[int, str] = {}

    def _token_id(self, piece: str) -> int:
        digest = hashlib.sha256(("tok:%s:%s" % (self.model_id, piece)).encode()).digest()
        token_id = _RESERVED + int.from_bytes(digest[:4], "big") % (self.vocab_size - _RESERVED)
        existing = self._reverse.get(token_id)
        if existing is not None and existing != piece:
            # Hash collision: salt linearly until a free slot appears.
            salt = 0
            while True:
                salted = hashlib.sha256(
                    ("tok:%s:%s:%d" % (self.model_id, piece, salt)).encode()
                ).digest()
                token_id = _RESERVED + int.from_bytes(salted[:4], "big") % (
                    self.vocab_size - _RESERVED
                )
                other = self._reverse.get(token_id)
                if other is None or other == piece:
                    break
                salt += 1
        self._reverse[token_id] = piece
        return token_id

    def encode(self, text: str, add_bos: bool = True) -> List[int]:
        pieces = [p for p in _SPLIT.split(text) if p]
        ids = [BOS_ID] if add_bos else []
        ids.extend(self._token_id(piece) for piece in pieces)
        return ids

    def decode(self, ids: List[int]) -> str:
        words = []
        for token_id in ids:
            if token_id < _RESERVED:
                continue
            piece = self._reverse.get(token_id)
            if piece is None:
                piece = _FALLBACK_WORDS[token_id % len(_FALLBACK_WORDS)]
            words.append(piece)
        return " ".join(words)

    def count(self, text: str) -> int:
        return len(self.encode(text))
