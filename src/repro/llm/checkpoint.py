"""Framework-state checkpointing (§3.2 "other techniques").

Cold framework initialization — parsing model metadata, building the
tokenizer, sizing buffers — costs 2.3 s on the testbed.  TZ-LLM saves a
checkpoint of the initialized state to flash once and restores it on each
inference request, cutting TTFT by up to 36.8% (§7.1.1).

The checkpoint is encrypted under the model key (it embeds model
metadata) and carries a checksum so a tampering REE is detected — the
same delegated-I/O trust posture as parameter loading.
"""

from __future__ import annotations

import json
from typing import Optional

from ..config import TimingSpec
from ..crypto import checksum, decrypt, encrypt, verify
from ..errors import IntegrityError
from ..ree.filesystem import FileSystem
from ..sim import Simulator

__all__ = ["checkpoint_path", "save_checkpoint", "restore_checkpoint", "cold_init"]

_NONCE = b"tzllm-checkpnt!!"


def checkpoint_path(model_id: str) -> str:
    """Filesystem path of a model's framework-state checkpoint."""
    return "/models/%s.ckpt" % model_id


def _state_blob(model_id: str, n_tensors: int) -> bytes:
    state = {"model_id": model_id, "n_tensors": n_tensors, "initialized": True}
    return json.dumps(state, separators=(",", ":")).encode()


def cold_init(sim: Simulator, timing: TimingSpec):
    """The full framework initialization (generator; 2.3 s class)."""
    yield sim.timeout(timing.framework_init)


def save_checkpoint(
    sim: Simulator,
    timing: TimingSpec,
    fs: FileSystem,
    model_id: str,
    model_key: bytes,
    n_tensors: int,
):
    """Persist the initialized state (generator; one-time cost)."""
    blob = _state_blob(model_id, n_tensors)
    ciphertext = encrypt(model_key, _NONCE, blob)
    payload = checksum(ciphertext) + ciphertext
    yield sim.timeout(timing.checkpoint_save)
    yield from fs.write(checkpoint_path(model_id), 0, payload)


def restore_checkpoint(
    sim: Simulator,
    timing: TimingSpec,
    fs: FileSystem,
    model_id: str,
    model_key: bytes,
):
    """Restore the initialized state (generator); returns the state dict.

    Raises :class:`IntegrityError` if the REE returned a forged blob.
    """
    size = fs.stat(checkpoint_path(model_id))
    payload = yield from fs.read(checkpoint_path(model_id), 0, size)
    yield sim.timeout(timing.checkpoint_restore)
    digest, ciphertext = payload[:16], payload[16:]
    if not verify(ciphertext, digest):
        raise IntegrityError("checkpoint failed checksum verification")
    blob = decrypt(model_key, _NONCE, ciphertext)
    try:
        state = json.loads(blob)
    except ValueError:
        raise IntegrityError("checkpoint decrypted to garbage (wrong key?)")
    if not state.get("initialized"):
        raise IntegrityError("checkpoint state invalid")
    return state
