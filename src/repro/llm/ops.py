"""Operator cost model: a roofline over calibrated engine rates.

Every computation operator carries its FLOPs and the bytes it must touch
(weights streamed once, plus KV-cache reads for attention).  An engine
(CPU big cluster or NPU) is a (compute rate, memory bandwidth) pair; an
operator's duration is the roofline maximum of its compute time and its
streaming time.  This single model reproduces both regimes the paper
reports: prefill is FLOP-bound (NPU 12.5x), decode is bandwidth-bound
(NPU only 1.3x, paper §2.3), with small decode matmuls additionally
penalized by the per-job NPU launch latency (§7.1.2's explanation for
the modest decode gains).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformSpec
from ..errors import ConfigurationError

__all__ = ["Engine", "CPU_ENGINE", "NPU_ENGINE", "op_duration"]


class Engine:
    """Compute engine names used in operator placement."""

    CPU = "cpu"
    NPU = "npu"


CPU_ENGINE = Engine.CPU
NPU_ENGINE = Engine.NPU


def engine_rates(platform: PlatformSpec, engine: str):
    """(flops/s, bytes/s, fixed per-op latency) for an engine."""
    if engine == Engine.CPU:
        return platform.cpu.effective_gflops * 1e9, platform.cpu.mem_bandwidth, 0.0
    if engine == Engine.NPU:
        return (
            platform.npu.effective_gflops * 1e9,
            platform.npu.mem_bandwidth,
            platform.npu.job_launch_latency,
        )
    raise ConfigurationError("unknown engine %r" % engine)


def op_duration(flops: float, bytes_touched: float, platform: PlatformSpec, engine: str) -> float:
    """Roofline duration of one operator on one engine.

    The NPU's fixed launch latency is charged by the device itself at
    launch time, so it is *not* included here; use
    :func:`op_duration_with_launch` for analytic engine choice.
    """
    rate, bandwidth, _launch = engine_rates(platform, engine)
    return max(flops / rate, bytes_touched / bandwidth)


def op_duration_with_launch(
    flops: float, bytes_touched: float, platform: PlatformSpec, engine: str
) -> float:
    """Roofline duration plus the engine's fixed per-op launch cost."""
    rate, bandwidth, launch = engine_rates(platform, engine)
    return launch + max(flops / rate, bytes_touched / bandwidth)
