"""KV-cache bookkeeping for the second TZASC region (§4.2).

Three layouts share this module:

* :class:`KVCache` — the paper's deployed layout: one contiguous KV
  range per request, initialized to the prompt size at prefill, grown by
  one token per decode step, and fully released after the inference —
  which is what lets it share a contiguous region with the fixed-size
  activation buffers without fragmenting it.
* :class:`KVBlockPool` + :class:`PagedKVCache` — the continuous-batching
  extension (vLLM/Orca-style): the same data region carved into
  fixed-size *token blocks*; each in-flight sequence holds a list of
  block ids instead of a contiguous range, and a free list recycles
  blocks between sequences.  The TZASC range itself stays a single
  contiguous, end-grown span (``docs/batching.md`` explains why this
  preserves the §4.2 no-fragmentation claim).
* :class:`PrefixTree` over the same pool — shared-prefix KV reuse with
  per-block refcounts and copy-on-write.  Whole blocks of a prompt that
  hash to content a previous request already prefilled (the tenant's
  system prompt, or an earlier turn of the same session) are *referenced*
  instead of recomputed; only the cache-miss suffix pays prefill.  Block
  keys mirror :mod:`repro.analysis.prefix_share` exactly, so the online
  hit rate is directly comparable to the offline analyzer's projection.

Accounting is strict by design: reservation underflow, double release,
and unheld-block operations raise :class:`~repro.errors
.ConfigurationError` instead of clamping — once blocks are shared, a
silent ``max(0, ...)`` would mask exactly the refcount corruption the
conservation invariant (``free + active + parked + cached == total``)
exists to catch.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, OutOfMemory
from .models import ModelSpec

__all__ = [
    "KVCache",
    "KVBlockPool",
    "PagedKVCache",
    "BlockCheckpoint",
    "PromptSpec",
    "PrefixTree",
    "ShareResult",
]

# Per-block category indices (the pool's accounting buckets).  A block
# is *active* while any live sequence references it, *parked* while only
# preempted sequences do, and *cached* while nobody references it but
# the prefix tree keeps its content resident for future reuse.
_ACTIVE, _PARKED, _CACHED = 0, 1, 2
_CATEGORY_NAMES = ("active", "parked", "cached")


class KVCache:
    """Token-count bookkeeping for the KV cache's memory footprint."""

    def __init__(self, model: ModelSpec, capacity_tokens: int):
        if capacity_tokens < 1:
            raise ConfigurationError("capacity must be positive")
        self.model = model
        self.capacity_tokens = capacity_tokens
        self.tokens = 0

    @property
    def bytes_used(self) -> int:
        return self.model.kv_bytes(self.tokens)

    @property
    def capacity_bytes(self) -> int:
        return self.model.kv_bytes(self.capacity_tokens)

    def init_prompt(self, prompt_tokens: int) -> None:
        if self.tokens:
            # A retried prefill must go through reset() first; silently
            # overwriting would leak the prior tokens from accounting.
            raise ConfigurationError(
                "init_prompt on a non-empty KV cache (%d tokens live)" % self.tokens
            )
        if prompt_tokens > self.capacity_tokens:
            raise OutOfMemory(
                "prompt of %d tokens exceeds KV capacity %d"
                % (prompt_tokens, self.capacity_tokens)
            )
        self.tokens = prompt_tokens

    def append_token(self) -> None:
        if self.tokens + 1 > self.capacity_tokens:
            raise OutOfMemory("KV cache full at %d tokens" % self.tokens)
        self.tokens += 1

    def reset(self) -> None:
        self.tokens = 0


@dataclass(frozen=True)
class BlockCheckpoint:
    """A parked sequence's KV state: exactly which blocks hold its cache.

    Frozen so the checkpoint taken at eviction is byte-identical to the
    one restore sees — the determinism tests compare the tuples.
    """

    block_ids: Tuple[int, ...]
    tokens: int


@dataclass(frozen=True)
class PromptSpec:
    """Content identity of a prompt, for shared-prefix KV reuse.

    The token *count* alone cannot say what is reusable; this carries
    the same identity fields the fleet trace does (:class:`~repro
    .workloads.fleet.FleetRequest`): a content-addressed shared prefix
    (the tenant's system prompt) and a session-private stream (replayed
    conversation context plus this turn's new tokens).  The layout
    matches :mod:`repro.analysis.prefix_share` block hashing exactly.
    """

    prefix_id: str = ""
    prefix_tokens: int = 0
    session_id: str = ""
    context_tokens: int = 0
    new_tokens: int = 0

    def __post_init__(self):
        if min(self.prefix_tokens, self.context_tokens, self.new_tokens) < 0:
            raise ConfigurationError("PromptSpec token counts must be >= 0")
        if self.prefix_tokens and not self.prefix_id:
            raise ConfigurationError("prefix_tokens without a prefix_id")

    @property
    def prompt_tokens(self) -> int:
        return self.prefix_tokens + self.context_tokens + self.new_tokens

    @classmethod
    def from_fleet_request(cls, request) -> "PromptSpec":
        """Build the spec a :class:`~repro.workloads.fleet.FleetRequest`
        implies (same fields, same meaning)."""
        return cls(
            prefix_id=request.prefix_id,
            prefix_tokens=request.prefix_tokens if request.prefix_id else 0,
            session_id=request.session_id,
            context_tokens=request.context_tokens,
            new_tokens=request.new_tokens,
        )

    def worst_case_blocks(self, block_tokens: int, output_tokens: int = 0) -> int:
        """Physical blocks if *nothing* hits: the two streams round up
        independently (the prefix tail block is padded so the session
        stream starts block-aligned — that is what makes prefix blocks
        content-addressable across prompts of different lengths)."""
        blocks = 0
        if self.prefix_tokens:
            blocks += -(-self.prefix_tokens // block_tokens)
        stream = self.context_tokens + self.new_tokens + output_tokens
        blocks += -(-stream // block_tokens)
        return blocks


@dataclass
class ShareResult:
    """What ``init_prompt_shared`` found in the prefix tree."""

    hit_tokens: int = 0
    prefix_hit_tokens: int = 0
    session_hit_tokens: int = 0
    #: tokens recovered by copy-on-write from partial tail blocks — kept
    #: separate from ``hit_tokens`` so the online rate stays directly
    #: comparable to the analyzer (which models whole-block hits only).
    cow_tokens: int = 0
    #: tokens that must actually be prefilled (the cache-miss suffix).
    miss_tokens: int = 0
    hit_blocks: int = 0
    cow_blocks: int = 0


class KVBlockPool:
    """Fixed-size token blocks over the data region's KV span.

    The pool owns a budget of ``total_blocks`` block slots.  Allocation
    always hands out the *lowest-numbered* free block (a min-heap free
    list): freed blocks are recycled before the span grows, which keeps
    the high-water mark — and therefore the protected TZASC range — as
    low as the live working set allows.  ``reserved`` is the admission
    side's hold: the gateway reserves a request's worst-case block count
    at dispatch, and each allocation made on behalf of that request
    consumes one unit of the hold (check-then-reserve is race-free
    because dispatch never yields).

    Every held block carries a refcount split by holder state
    (active/parked) plus a cached flag; the conservation identity is
    ``free + active + parked + cached == total`` where each category
    counts *blocks* (a block shared by a live and a parked sequence is
    active — the stricter holder wins).  Reservation and refcount
    underflow raise instead of clamping.
    """

    def __init__(self, model: ModelSpec, block_tokens: int, total_blocks: int):
        if block_tokens < 1:
            raise ConfigurationError("block_tokens must be positive")
        if total_blocks < 1:
            raise ConfigurationError("total_blocks must be positive")
        self.model = model
        self.block_tokens = block_tokens
        self.total_blocks = total_blocks
        self._free: List[int] = list(range(total_blocks))  # already a heap
        #: block id -> [active_refs, parked_refs, cached_flag]
        self._blocks: Dict[int, List[int]] = {}
        #: blocks per category, kept incrementally: [active, parked, cached]
        self._cats = [0, 0, 0]
        #: total holder references (cached residency is not a reference)
        self.total_refs = 0
        self.reserved = 0
        #: one past the highest block id ever handed out since the last
        #: full drain: the number of block slots the secure region must
        #: back.  TZASC shrink is end-only, so this only resets when the
        #: pool is completely empty (cached blocks keep the span backed).
        self.backing_blocks = 0
        #: copy-on-write count since construction.
        self.cows = 0
        #: prefix-tree attach point (set by :class:`PrefixTree`).
        self.tree: Optional["PrefixTree"] = None
        #: memory-timeline attach point (repro.obs.memory).
        self.timeline = None

    @property
    def block_bytes(self) -> int:
        return self.model.kv_bytes(self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - len(self._free)

    @property
    def active_blocks(self) -> int:
        """Blocks referenced by at least one live (unparked) sequence."""
        return self._cats[_ACTIVE]

    @property
    def parked_blocks(self) -> int:
        """Blocks whose only references belong to parked sequences."""
        return self._cats[_PARKED]

    @property
    def cached_blocks(self) -> int:
        """Unreferenced blocks the prefix tree keeps resident.  These
        are reclaimable on demand, so admission counts them as head
        room, but they still occupy backed span until evicted."""
        return self._cats[_CACHED]

    @property
    def shared_saved_blocks(self) -> int:
        """Block allocations avoided by sharing right now: holder
        references in excess of the physical blocks backing them."""
        return self.total_refs - (self._cats[_ACTIVE] + self._cats[_PARKED])

    @property
    def shared_saved_bytes(self) -> int:
        return self.shared_saved_blocks * self.block_bytes

    @property
    def bytes_used(self) -> int:
        return self.used_blocks * self.block_bytes

    def blocks_for_tokens(self, tokens: int) -> int:
        return -(-tokens // self.block_tokens)

    def can_admit(self, blocks: int) -> bool:
        """Would ``blocks`` fit on top of every existing hold?  Cached
        blocks count as free headroom — allocation evicts them."""
        return (self.free_blocks + self.cached_blocks) - self.reserved >= blocks

    def reserve(self, blocks: int, owner: str = "") -> None:
        if not self.can_admit(blocks):
            raise OutOfMemory(
                "cannot reserve %d KV blocks (%d free, %d cached, %d already reserved)"
                % (blocks, self.free_blocks, self.cached_blocks, self.reserved)
            )
        self.reserved += blocks
        if self.timeline is not None:
            self.timeline.note_reserve(self, blocks, owner)

    def cancel_reservation(self, blocks: int, owner: str = "") -> None:
        if blocks < 0 or blocks > self.reserved:
            raise ConfigurationError(
                "cancel of %d reserved KV blocks but only %d are held"
                % (blocks, self.reserved)
            )
        self.reserved -= blocks
        if self.timeline is not None:
            self.timeline.note_cancel(self, blocks, owner)

    # -- allocation and reference lifecycle ----------------------------
    def alloc_block(self, from_reservation: bool = False, owner: str = "") -> int:
        if not self._free and self.tree is not None:
            # Under pressure the prefix tree's unreferenced residents
            # are the first to go (they are pure opportunity, not state).
            self.tree.evict_for(1)
        if not self._free:
            raise OutOfMemory("KV block pool exhausted (%d blocks)" % self.total_blocks)
        if from_reservation:
            if self.reserved <= 0:
                raise ConfigurationError(
                    "allocation drains a reservation but none is held"
                )
            self.reserved -= 1
        block = heapq.heappop(self._free)
        self._blocks[block] = [1, 0, 0]
        self._cats[_ACTIVE] += 1
        self.total_refs += 1
        self.backing_blocks = max(self.backing_blocks, block + 1)
        if self.timeline is not None:
            self.timeline.note_alloc(self, block, owner, from_reservation)
        return block

    def _state(self, block: int) -> List[int]:
        state = self._blocks.get(block)
        if state is None:
            raise ConfigurationError("operation on unheld KV block %d" % block)
        return state

    @staticmethod
    def _category(state: List[int]) -> int:
        if state[_ACTIVE] > 0:
            return _ACTIVE
        if state[_PARKED] > 0:
            return _PARKED
        return _CACHED

    def _recategorize(self, state: List[int], before: int) -> bool:
        after = self._category(state)
        if after != before:
            self._cats[before] -= 1
            self._cats[after] += 1
            return True
        return False

    def ref_block(self, block: int, owner: str = "") -> None:
        """Take one more live reference on an already-held block — the
        sharing fast path (zero compute, zero copy)."""
        state = self._state(block)
        before = self._category(state)
        state[_ACTIVE] += 1
        self.total_refs += 1
        self._recategorize(state, before)
        if self.timeline is not None:
            self.timeline.note_ref(self, block, owner, _CATEGORY_NAMES[before])

    def cow_block(
        self,
        src: int,
        owner: str = "",
        from_reservation: bool = False,
        tokens: int = 0,
    ) -> int:
        """Copy-on-write: allocate a private block seeded from ``src``
        (``tokens`` of its content survive the divergence)."""
        self._state(src)  # the source must still be held/resident
        block = self.alloc_block(from_reservation=from_reservation, owner=owner)
        self.cows += 1
        if self.timeline is not None:
            self.timeline.note_cow(self, src, block, owner, tokens)
        return block

    def release_block(self, block: int, owner: str = "", parked: bool = False) -> None:
        """Drop one reference; the block frees only when the last
        reference goes and the prefix tree holds no residency."""
        state = self._state(block)
        idx = _PARKED if parked else _ACTIVE
        if state[idx] <= 0:
            raise ConfigurationError(
                "release of a %s reference not held on block %d"
                % (_CATEGORY_NAMES[idx], block)
            )
        before = self._category(state)
        state[idx] -= 1
        self.total_refs -= 1
        if state[_ACTIVE] == 0 and state[_PARKED] == 0 and not state[_CACHED]:
            self._free_block(block, owner, _CATEGORY_NAMES[before])
        else:
            changed = self._recategorize(state, before)
            if self.timeline is not None:
                after = self._category(state)
                self.timeline.note_unref(
                    self,
                    block,
                    owner,
                    _CATEGORY_NAMES[before],
                    _CATEGORY_NAMES[after] if changed else _CATEGORY_NAMES[before],
                )

    def _free_block(self, block: int, owner: str, category: str) -> None:
        del self._blocks[block]
        self._cats[_CATEGORY_NAMES.index(category)] -= 1
        heapq.heappush(self._free, block)
        if self.used_blocks == 0:
            self.backing_blocks = 0
        if self.timeline is not None:
            self.timeline.note_release(self, block, owner, category)

    # -- park/restore (per-reference, shared-safe) ---------------------
    def park_block(self, block: int) -> bool:
        """Move one reference active -> parked; True if the block's
        accounting category changed (last active holder left)."""
        state = self._state(block)
        if state[_ACTIVE] <= 0:
            raise ConfigurationError("park of an unheld active reference")
        before = self._category(state)
        state[_ACTIVE] -= 1
        state[_PARKED] += 1
        return self._recategorize(state, before)

    def restore_block(self, block: int) -> bool:
        """Move one reference parked -> active; True on category change."""
        state = self._state(block)
        if state[_PARKED] <= 0:
            raise ConfigurationError("restore of an unheld parked reference")
        before = self._category(state)
        state[_PARKED] -= 1
        state[_ACTIVE] += 1
        return self._recategorize(state, before)

    # -- prefix-tree residency -----------------------------------------
    def cache_block(self, block: int, owner: str = "") -> None:
        state = self._state(block)
        if state[_CACHED]:
            return
        before = self._category(state)
        state[_CACHED] = 1
        self._recategorize(state, before)
        if self.timeline is not None:
            self.timeline.note_cache(self, block, owner)

    def uncache_block(self, block: int, owner: str = "") -> None:
        state = self._state(block)
        if not state[_CACHED]:
            return
        before = self._category(state)
        state[_CACHED] = 0
        if state[_ACTIVE] == 0 and state[_PARKED] == 0:
            self._free_block(block, owner, _CATEGORY_NAMES[before])
        else:
            self._recategorize(state, before)
        if self.timeline is not None:
            self.timeline.note_uncache(self, block, owner)

    def refcount(self, block: int) -> int:
        state = self._blocks.get(block)
        return 0 if state is None else state[_ACTIVE] + state[_PARKED]

    def check_conservation(self) -> None:
        """Raise unless every accounting identity holds (test hook)."""
        if self.free_blocks + sum(self._cats) != self.total_blocks:
            raise ConfigurationError(
                "pool conservation violated: %d free + %s categorized != %d total"
                % (self.free_blocks, self._cats, self.total_blocks)
            )
        if len(self._blocks) != sum(self._cats):
            raise ConfigurationError("category counts diverge from held blocks")
        refs = sum(s[_ACTIVE] + s[_PARKED] for s in self._blocks.values())
        if refs != self.total_refs:
            raise ConfigurationError(
                "refcount sum %d != tracked total %d" % (refs, self.total_refs)
            )
        for block, state in self._blocks.items():
            if self._category(state) == _CACHED and not state[_CACHED]:
                raise ConfigurationError("refless block %d not cached" % block)


class PrefixTree:
    """Content-addressed residency over a :class:`KVBlockPool`.

    Keys mirror :mod:`repro.analysis.prefix_share` exactly: shared
    prefixes hash by content — ``("p", model_id, prefix_id, i)`` — so
    any request carrying the same system prompt hits blocks a previous
    request already prefilled; conversation streams hash by position —
    ``("s", session_id, i)`` — so only a later turn of the same session
    reuses them.  Cross-tenant sharing never happens because prefix ids
    are minted per tenant upstream (the paper's §3.1 isolation stance).

    Entries are MRU-ordered; eviction walks from the LRU end and only
    reclaims blocks nobody references (pure cache, not live state).
    """

    def __init__(self, pool: KVBlockPool):
        self.pool = pool
        pool.tree = self
        #: key -> [block, valid_tokens], ordered by recency.
        self._entries: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        self._by_block: Dict[int, Tuple] = {}
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def prefix_key(self, prefix_id: str, index: int) -> Tuple:
        return ("p", self.pool.model.model_id, prefix_id, index)

    @staticmethod
    def session_key(session_id: str, index: int) -> Tuple:
        return ("s", session_id, index)

    def lookup(self, key: Tuple) -> Optional[List[int]]:
        """Resident entry for ``key`` (MRU touch), else None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def peek(self, key: Tuple) -> Optional[List[int]]:
        """Like :meth:`lookup` but without perturbing recency — the
        admission probe may poll the same head many times."""
        return self._entries.get(key)

    def probe(self, spec: PromptSpec) -> int:
        """Predicted whole-block hits for ``spec``: what admission may
        subtract from the worst-case block budget.  COW opportunities
        are deliberately excluded — they still consume a fresh block."""
        block_tokens = self.pool.block_tokens
        hits = 0
        if spec.prefix_tokens and spec.prefix_id:
            for i in range(spec.prefix_tokens // block_tokens):
                entry = self.peek(self.prefix_key(spec.prefix_id, i))
                if entry is not None and entry[1] >= block_tokens:
                    hits += 1
        if spec.session_id:
            stream = spec.context_tokens + spec.new_tokens
            for i in range(stream // block_tokens):
                if i * block_tokens >= spec.context_tokens:
                    break  # beyond the replayed span: new content
                entry = self.peek(self.session_key(spec.session_id, i))
                if entry is not None and entry[1] >= block_tokens:
                    hits += 1
        return hits

    def insert(self, key: Tuple, block: int, valid_tokens: int) -> None:
        """Publish ``block`` as the resident content for ``key``.

        First-published wins unless the newcomer carries strictly more
        valid tokens (a grown tail block replaces its shorter past)."""
        entry = self._entries.get(key)
        if entry is not None:
            if valid_tokens <= entry[1]:
                self._entries.move_to_end(key)
                return
            self._drop_entry(key, owner="tree")
        stale = self._by_block.get(block)
        if stale is not None:
            # One block backs one key: republishing under a new key
            # (a COW-adopted tail) retires the old mapping first.
            self._drop_entry(stale, owner="tree")
        self.pool.cache_block(block, owner="tree")
        self._entries[key] = [block, valid_tokens]
        self._by_block[block] = key
        self.inserts += 1

    def remove(self, key: Tuple) -> None:
        if key in self._entries:
            self._drop_entry(key, owner="tree")

    def _drop_entry(self, key: Tuple, owner: str) -> None:
        block, _ = self._entries.pop(key)
        del self._by_block[block]
        self.pool.uncache_block(block, owner=owner)

    def evict_for(self, blocks: int) -> int:
        """Free at least ``blocks`` unreferenced cached blocks (LRU
        first); referenced entries are skipped — their content is live
        state, reclaimed naturally when the holders release."""
        freed = 0
        for key in list(self._entries):
            if freed >= blocks:
                break
            block = self._entries[key][0]
            if self.pool.refcount(block) == 0:
                self._drop_entry(key, owner="tree-evict")
                self.evictions += 1
                freed += 1
        return freed

    def flush(self) -> int:
        """Drop every residency (refless blocks free immediately;
        referenced blocks merely lose their cached flag)."""
        dropped = len(self._entries)
        for key in list(self._entries):
            self._drop_entry(key, owner="tree-flush")
        return dropped

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> Dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "inserts": self.inserts,
            "evictions": self.evictions,
        }


class PagedKVCache:
    """One sequence's KV cache as a list of pool blocks.

    Duck-compatible with :class:`KVCache` where the decode loop cares
    (``tokens``, ``bytes_used``, ``init_prompt``, ``append_token``,
    ``reset``), but growth allocates whole blocks from the shared pool
    on boundary crossings instead of assuming a private contiguous
    range.  ``release()`` (and its alias ``reset()``) is idempotent:
    the TA's try/finally may race the engine's cleanup, and blocks must
    go back to the free list exactly once.

    With a :class:`PrefixTree`, :meth:`init_prompt_shared` walks the
    tree instead of allocating blindly: whole-block hits take references
    (zero compute), partial tail blocks copy-on-write at the divergence
    point, and only the miss suffix needs real prefill.  On success the
    sequence :meth:`publish`\\ es its prompt-span blocks back into the
    tree for the next request.
    """

    def __init__(self, pool: KVBlockPool, reserved_blocks: int = 0, owner: str = ""):
        self.pool = pool
        self.model = pool.model
        self.block_ids: List[int] = []
        self.tokens = 0
        #: unconsumed admission hold; each block allocation drains one.
        self.reserved_blocks = reserved_blocks
        self.released = False
        self.parked = False
        #: timeline attribution (``tenant/rNNN``); set by the TA from the
        #: request's trace context before the first allocation.
        self.owner = owner
        #: dead tokens padding the shared-prefix tail block so the
        #: session stream starts block-aligned; zero without sharing.
        self.waste_tokens = 0
        #: (key, block, valid_tokens) publications deferred until the
        #: prefill actually succeeded — a faulted attempt must not
        #: poison the tree with never-computed content.
        self._pending: List[Tuple[Tuple, int, int]] = []

    @property
    def bytes_used(self) -> int:
        """Physical footprint: whole blocks, not just live tokens."""
        return len(self.block_ids) * self.pool.block_bytes

    @property
    def capacity_tokens(self) -> int:
        return self.pool.total_blocks * self.pool.block_tokens

    def _alloc_one(self) -> int:
        use_hold = self.reserved_blocks > 0
        block = self.pool.alloc_block(from_reservation=use_hold, owner=self.owner)
        if use_hold:
            self.reserved_blocks -= 1
        return block

    def ensure_capacity(self, tokens: int) -> None:
        """Allocate blocks (without advancing ``tokens``) so the cache
        can hold ``tokens`` — the engine pre-allocates a step's growth
        before extending the region backing it."""
        needed = self.pool.blocks_for_tokens(tokens + self.waste_tokens)
        while len(self.block_ids) < needed:
            self.block_ids.append(self._alloc_one())

    def _grow_to(self, tokens: int) -> None:
        self.ensure_capacity(tokens)
        self.tokens = tokens

    def _check_fresh(self) -> None:
        if self.released:
            raise ConfigurationError("init_prompt on a released KV cache")
        if self.block_ids or self.tokens:
            # Re-initializing would orphan the held blocks: a retried
            # prefill after a fault must build a fresh cache (or call
            # release() first) so blocks cannot be double-held.
            raise ConfigurationError(
                "init_prompt on a non-empty paged KV cache (%d blocks live)"
                % len(self.block_ids)
            )

    def init_prompt(self, prompt_tokens: int) -> None:
        self._check_fresh()
        self._grow_to(prompt_tokens)

    def init_prompt_shared(self, spec: PromptSpec, tree: PrefixTree) -> ShareResult:
        """Take the prompt's blocks through the prefix tree: reference
        whole-block hits, COW partial tails, allocate the misses.

        Returns the :class:`ShareResult`; ``tokens`` is set to the full
        prompt immediately (the blocks all exist), the caller schedules
        real prefill compute for ``miss_tokens`` only.
        """
        self._check_fresh()
        if tree.pool is not self.pool:
            raise ConfigurationError("prefix tree belongs to a different pool")
        block_tokens = self.pool.block_tokens
        result = ShareResult()

        def take_hit(entry: List[int], tokens: int) -> None:
            self.pool.ref_block(entry[0], owner=self.owner)
            self.block_ids.append(entry[0])
            result.hit_tokens += tokens
            result.hit_blocks += 1
            tree.hits += 1

        def take_cow(key: Optional[Tuple], entry: List[int], publish_valid: int) -> None:
            src, valid = entry
            if self.pool.refcount(src) == 0:
                # Exclusively cached: adopt in place and retire the tree
                # entry — we will republish it longer on success.
                self.pool.ref_block(src, owner=self.owner)
                if key is not None:
                    tree.remove(key)
                self.block_ids.append(src)
            else:
                # Referenced by someone else: diverging writes get a
                # private copy seeded with the shared prefix of content.
                self.block_ids.append(
                    self.pool.cow_block(src, owner=self.owner, tokens=valid)
                )
                if self.reserved_blocks > 0:
                    self.reserved_blocks -= 1
                    self.pool.cancel_reservation(1, owner=self.owner)
            result.cow_tokens += valid
            result.cow_blocks += 1
            if key is not None:
                self._pending.append((key, self.block_ids[-1], publish_valid))

        def take_miss(key: Optional[Tuple], publish_valid: int) -> None:
            self.block_ids.append(self._alloc_one())
            tree.misses += 1
            if key is not None:
                self._pending.append((key, self.block_ids[-1], publish_valid))

        # --- shared-prefix stream: content-addressed whole blocks -----
        if spec.prefix_tokens and spec.prefix_id:
            for i in range(spec.prefix_tokens // block_tokens):
                key = tree.prefix_key(spec.prefix_id, i)
                entry = tree.lookup(key)
                if entry is not None and entry[1] >= block_tokens:
                    take_hit(entry, block_tokens)
                    result.prefix_hit_tokens += block_tokens
                else:
                    take_miss(key, block_tokens)
            pad = spec.prefix_tokens % block_tokens
            if pad:
                # The prefix tail is never shareable (its KV depends on
                # what follows); pad it so the session stream aligns.
                self.block_ids.append(self._alloc_one())
                self.waste_tokens = block_tokens - pad

        # --- session stream: position-addressed, replay-covered only --
        stream = spec.context_tokens + spec.new_tokens
        for i in range(stream // block_tokens):
            key = tree.session_key(spec.session_id, i) if spec.session_id else None
            entry = tree.lookup(key) if key is not None else None
            start = i * block_tokens
            if (
                entry is not None
                and entry[1] >= block_tokens
                and start < spec.context_tokens
            ):
                # Only hits inside the replayed context span save work;
                # beyond it this turn's tokens are new content and the
                # stale entry gets republished from the fresh block.
                take_hit(entry, block_tokens)
                result.session_hit_tokens += block_tokens
            elif (
                entry is not None
                and 0 < entry[1] < block_tokens
                and start + entry[1] <= spec.context_tokens
            ):
                take_cow(key, entry, block_tokens)
            else:
                take_miss(key, block_tokens)
        tail = stream % block_tokens
        if tail:
            key = (
                tree.session_key(spec.session_id, stream // block_tokens)
                if spec.session_id
                else None
            )
            entry = tree.lookup(key) if key is not None else None
            start = (stream // block_tokens) * block_tokens
            if (
                entry is not None
                and 0 < entry[1] <= tail
                and start + entry[1] <= spec.context_tokens
            ):
                take_cow(key, entry, tail)
            else:
                take_miss(key, tail)

        self.tokens = spec.prompt_tokens
        result.miss_tokens = spec.prompt_tokens - result.hit_tokens - result.cow_tokens
        return result

    def publish(self, tree: Optional[PrefixTree]) -> int:
        """Insert the deferred prompt-span entries into the tree — call
        only after the miss suffix really prefilled (success path)."""
        if tree is None or self.released:
            self._pending = []
            return 0
        published = 0
        for key, block, valid in self._pending:
            tree.insert(key, block, valid)
            published += 1
        self._pending = []
        return published

    def append_token(self) -> None:
        self._grow_to(self.tokens + 1)

    def release(self) -> None:
        """Return every block and any leftover hold to the pool (once)."""
        if self.released:
            return
        self.released = True
        was_parked = self.parked
        self.parked = False
        for block in self.block_ids:
            self.pool.release_block(block, owner=self.owner, parked=was_parked)
        self.block_ids = []
        self.tokens = 0
        self._pending = []
        if self.reserved_blocks:
            self.pool.cancel_reservation(self.reserved_blocks, owner=self.owner)
            self.reserved_blocks = 0

    # The legacy decode paths call ``reset()``; same exactly-once release.
    reset = release

    def park(self) -> BlockCheckpoint:
        """Checkpoint the block list for an evicted-but-resumable
        sequence.  Blocks and the leftover hold stay owned."""
        checkpoint = BlockCheckpoint(tuple(self.block_ids), self.tokens)
        if not self.parked:
            self.parked = True
            moved = 0
            for block in self.block_ids:
                if self.pool.park_block(block):
                    moved += 1
            if self.pool.timeline is not None:
                self.pool.timeline.note_park(
                    self.pool, checkpoint.block_ids, self.tokens, self.owner, moved
                )
        return checkpoint

    def restore(self, checkpoint: BlockCheckpoint) -> None:
        """Validate the resume against the parked checkpoint."""
        if tuple(self.block_ids) != checkpoint.block_ids or self.tokens != checkpoint.tokens:
            raise ConfigurationError("parked block list diverged from its checkpoint")
        if self.parked:
            self.parked = False
            moved = 0
            for block in self.block_ids:
                if self.pool.restore_block(block):
                    moved += 1
            if self.pool.timeline is not None:
                self.pool.timeline.note_restore(
                    self.pool, checkpoint.block_ids, self.owner, moved
                )
