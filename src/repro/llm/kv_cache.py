"""KV-cache bookkeeping for the second TZASC region (§4.2).

Two layouts share this module:

* :class:`KVCache` — the paper's deployed layout: one contiguous KV
  range per request, initialized to the prompt size at prefill, grown by
  one token per decode step, and fully released after the inference —
  which is what lets it share a contiguous region with the fixed-size
  activation buffers without fragmenting it.
* :class:`KVBlockPool` + :class:`PagedKVCache` — the continuous-batching
  extension (vLLM/Orca-style): the same data region carved into
  fixed-size *token blocks*; each in-flight sequence holds a list of
  block ids instead of a contiguous range, and a free list recycles
  blocks between sequences.  The TZASC range itself stays a single
  contiguous, end-grown span (``docs/batching.md`` explains why this
  preserves the §4.2 no-fragmentation claim).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError, OutOfMemory
from .models import ModelSpec

__all__ = ["KVCache", "KVBlockPool", "PagedKVCache", "BlockCheckpoint"]


class KVCache:
    """Token-count bookkeeping for the KV cache's memory footprint."""

    def __init__(self, model: ModelSpec, capacity_tokens: int):
        if capacity_tokens < 1:
            raise ConfigurationError("capacity must be positive")
        self.model = model
        self.capacity_tokens = capacity_tokens
        self.tokens = 0

    @property
    def bytes_used(self) -> int:
        return self.model.kv_bytes(self.tokens)

    @property
    def capacity_bytes(self) -> int:
        return self.model.kv_bytes(self.capacity_tokens)

    def init_prompt(self, prompt_tokens: int) -> None:
        if prompt_tokens > self.capacity_tokens:
            raise OutOfMemory(
                "prompt of %d tokens exceeds KV capacity %d"
                % (prompt_tokens, self.capacity_tokens)
            )
        self.tokens = prompt_tokens

    def append_token(self) -> None:
        if self.tokens + 1 > self.capacity_tokens:
            raise OutOfMemory("KV cache full at %d tokens" % self.tokens)
        self.tokens += 1

    def reset(self) -> None:
        self.tokens = 0


@dataclass(frozen=True)
class BlockCheckpoint:
    """A parked sequence's KV state: exactly which blocks hold its cache.

    Frozen so the checkpoint taken at eviction is byte-identical to the
    one restore sees — the determinism tests compare the tuples.
    """

    block_ids: Tuple[int, ...]
    tokens: int


class KVBlockPool:
    """Fixed-size token blocks over the data region's KV span.

    The pool owns a budget of ``total_blocks`` block slots.  Allocation
    always hands out the *lowest-numbered* free block (a min-heap free
    list): freed blocks are recycled before the span grows, which keeps
    the high-water mark — and therefore the protected TZASC range — as
    low as the live working set allows.  ``reserved`` is the admission
    side's hold: the gateway reserves a request's worst-case block count
    at dispatch, and each allocation made on behalf of that request
    consumes one unit of the hold (check-then-reserve is race-free
    because dispatch never yields).
    """

    def __init__(self, model: ModelSpec, block_tokens: int, total_blocks: int):
        if block_tokens < 1:
            raise ConfigurationError("block_tokens must be positive")
        if total_blocks < 1:
            raise ConfigurationError("total_blocks must be positive")
        self.model = model
        self.block_tokens = block_tokens
        self.total_blocks = total_blocks
        self._free: List[int] = list(range(total_blocks))  # already a heap
        self.reserved = 0
        #: blocks held by parked (preempted) sequences: a subset of the
        #: used blocks, kept explicit so conservation is checkable as
        #: ``free + active + parked == total``.
        self.parked_blocks = 0
        #: one past the highest block id ever handed out since the last
        #: full drain: the number of block slots the secure region must
        #: back.  TZASC shrink is end-only, so this only resets when the
        #: pool is completely empty.
        self.backing_blocks = 0
        #: memory-timeline attach point (repro.obs.memory).
        self.timeline = None

    @property
    def block_bytes(self) -> int:
        return self.model.kv_bytes(self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - len(self._free)

    @property
    def active_blocks(self) -> int:
        """Used blocks excluding the parked (preempted) holdings."""
        return self.used_blocks - self.parked_blocks

    @property
    def bytes_used(self) -> int:
        return self.used_blocks * self.block_bytes

    def blocks_for_tokens(self, tokens: int) -> int:
        return -(-tokens // self.block_tokens)

    def can_admit(self, blocks: int) -> bool:
        """Would ``blocks`` fit on top of every existing hold?"""
        return self.free_blocks - self.reserved >= blocks

    def reserve(self, blocks: int, owner: str = "") -> None:
        if not self.can_admit(blocks):
            raise OutOfMemory(
                "cannot reserve %d KV blocks (%d free, %d already reserved)"
                % (blocks, self.free_blocks, self.reserved)
            )
        self.reserved += blocks
        if self.timeline is not None:
            self.timeline.note_reserve(self, blocks, owner)

    def cancel_reservation(self, blocks: int, owner: str = "") -> None:
        self.reserved = max(0, self.reserved - blocks)
        if self.timeline is not None:
            self.timeline.note_cancel(self, blocks, owner)

    def alloc_block(self, from_reservation: bool = False, owner: str = "") -> int:
        if not self._free:
            raise OutOfMemory("KV block pool exhausted (%d blocks)" % self.total_blocks)
        block = heapq.heappop(self._free)
        if from_reservation:
            self.reserved = max(0, self.reserved - 1)
        self.backing_blocks = max(self.backing_blocks, block + 1)
        if self.timeline is not None:
            self.timeline.note_alloc(self, block, owner, from_reservation)
        return block

    def release_block(self, block: int, owner: str = "", parked: bool = False) -> None:
        heapq.heappush(self._free, block)
        if parked:
            self.parked_blocks -= 1
        if self.used_blocks == 0:
            self.backing_blocks = 0
        if self.timeline is not None:
            self.timeline.note_release(self, block, owner, parked)


class PagedKVCache:
    """One sequence's KV cache as a list of pool blocks.

    Duck-compatible with :class:`KVCache` where the decode loop cares
    (``tokens``, ``bytes_used``, ``init_prompt``, ``append_token``,
    ``reset``), but growth allocates whole blocks from the shared pool
    on boundary crossings instead of assuming a private contiguous
    range.  ``release()`` (and its alias ``reset()``) is idempotent:
    the TA's try/finally may race the engine's cleanup, and blocks must
    go back to the free list exactly once.
    """

    def __init__(self, pool: KVBlockPool, reserved_blocks: int = 0, owner: str = ""):
        self.pool = pool
        self.model = pool.model
        self.block_ids: List[int] = []
        self.tokens = 0
        #: unconsumed admission hold; each block allocation drains one.
        self.reserved_blocks = reserved_blocks
        self.released = False
        self.parked = False
        #: timeline attribution (``tenant/rNNN``); set by the TA from the
        #: request's trace context before the first allocation.
        self.owner = owner

    @property
    def bytes_used(self) -> int:
        """Physical footprint: whole blocks, not just live tokens."""
        return len(self.block_ids) * self.pool.block_bytes

    @property
    def capacity_tokens(self) -> int:
        return self.pool.total_blocks * self.pool.block_tokens

    def ensure_capacity(self, tokens: int) -> None:
        """Allocate blocks (without advancing ``tokens``) so the cache
        can hold ``tokens`` — the engine pre-allocates a step's growth
        before extending the region backing it."""
        needed = self.pool.blocks_for_tokens(tokens)
        while len(self.block_ids) < needed:
            use_hold = self.reserved_blocks > 0
            block = self.pool.alloc_block(from_reservation=use_hold, owner=self.owner)
            if use_hold:
                self.reserved_blocks -= 1
            self.block_ids.append(block)

    def _grow_to(self, tokens: int) -> None:
        self.ensure_capacity(tokens)
        self.tokens = tokens

    def init_prompt(self, prompt_tokens: int) -> None:
        self._grow_to(prompt_tokens)

    def append_token(self) -> None:
        self._grow_to(self.tokens + 1)

    def release(self) -> None:
        """Return every block and any leftover hold to the pool (once)."""
        if self.released:
            return
        self.released = True
        was_parked = self.parked
        self.parked = False
        for block in self.block_ids:
            self.pool.release_block(block, owner=self.owner, parked=was_parked)
        self.block_ids = []
        self.tokens = 0
        if self.reserved_blocks:
            self.pool.cancel_reservation(self.reserved_blocks, owner=self.owner)
            self.reserved_blocks = 0

    # The legacy decode paths call ``reset()``; same exactly-once release.
    reset = release

    def park(self) -> BlockCheckpoint:
        """Checkpoint the block list for an evicted-but-resumable
        sequence.  Blocks and the leftover hold stay owned."""
        checkpoint = BlockCheckpoint(tuple(self.block_ids), self.tokens)
        if not self.parked:
            self.parked = True
            self.pool.parked_blocks += len(self.block_ids)
            if self.pool.timeline is not None:
                self.pool.timeline.note_park(
                    self.pool, checkpoint.block_ids, self.tokens, self.owner
                )
        return checkpoint

    def restore(self, checkpoint: BlockCheckpoint) -> None:
        """Validate the resume against the parked checkpoint."""
        if tuple(self.block_ids) != checkpoint.block_ids or self.tokens != checkpoint.tokens:
            raise ConfigurationError("parked block list diverged from its checkpoint")
        if self.parked:
            self.parked = False
            self.pool.parked_blocks -= len(self.block_ids)
            if self.pool.timeline is not None:
                self.pool.timeline.note_restore(
                    self.pool, checkpoint.block_ids, self.owner
                )
