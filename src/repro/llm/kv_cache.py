"""KV-cache bookkeeping for the second TZASC region (§4.2).

The KV cache is initialized to the prompt size at prefill, grows by one
token per decode step, and is fully released after the inference — which
is what lets it share a contiguous region with the fixed-size activation
buffers without fragmenting it.
"""

from __future__ import annotations

from ..errors import ConfigurationError, OutOfMemory
from .models import ModelSpec

__all__ = ["KVCache"]


class KVCache:
    """Token-count bookkeeping for the KV cache's memory footprint."""

    def __init__(self, model: ModelSpec, capacity_tokens: int):
        if capacity_tokens < 1:
            raise ConfigurationError("capacity must be positive")
        self.model = model
        self.capacity_tokens = capacity_tokens
        self.tokens = 0

    @property
    def bytes_used(self) -> int:
        return self.model.kv_bytes(self.tokens)

    @property
    def capacity_bytes(self) -> int:
        return self.model.kv_bytes(self.capacity_tokens)

    def init_prompt(self, prompt_tokens: int) -> None:
        if prompt_tokens > self.capacity_tokens:
            raise OutOfMemory(
                "prompt of %d tokens exceeds KV capacity %d"
                % (prompt_tokens, self.capacity_tokens)
            )
        self.tokens = prompt_tokens

    def append_token(self) -> None:
        if self.tokens + 1 > self.capacity_tokens:
            raise OutOfMemory("KV cache full at %d tokens" % self.tokens)
        self.tokens += 1

    def reset(self) -> None:
        self.tokens = 0
