"""Deterministic logit sampling: greedy, temperature, and top-k.

The reproduction's decode loop emits tokens from a synthetic logit model
(a hash-seeded distribution over the vocabulary) so end-to-end output is
reproducible without weights.  The sampler implements the standard
decoding strategies over those logits with a counter-based deterministic
"randomness" — same request, same text, every run — which is what the
deterministic-simulation discipline requires.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SamplerConfig", "Sampler"]

_LOGIT_SPAN = 64  # synthetic logits concentrate mass on a small window


@dataclass(frozen=True)
class SamplerConfig:
    temperature: float = 1.0
    top_k: int = 0  # 0 = disabled
    greedy: bool = False

    def __post_init__(self):
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        if self.top_k < 0:
            raise ConfigurationError("top_k must be non-negative")


class Sampler:
    """Counter-based deterministic sampler over synthetic logits."""

    def __init__(self, model_id: str, vocab: int, config: Optional[SamplerConfig] = None):
        if vocab < _LOGIT_SPAN:
            raise ConfigurationError("vocab too small for the logit model")
        self.model_id = model_id
        self.vocab = vocab
        self.config = config or SamplerConfig()

    # ------------------------------------------------------------------
    def _digest(self, label: str, step: int, context: List[int]) -> bytes:
        tail = ",".join(str(t) for t in context[-8:])
        seed = "%s:%s:%d:%s" % (self.model_id, label, step, tail)
        return hashlib.sha256(seed.encode()).digest()

    def logits_window(self, step: int, context: List[int]):
        """(candidate token ids, their logits) for this step.

        Real logits are vocab-wide; the synthetic model gives every token
        a floor logit and lifts a deterministic window of candidates, so
        sampling behaviour (temperature spread, top-k truncation) is
        faithful without a vocab-size array per step.
        """
        digest = self._digest("logits", step, context)
        base = int.from_bytes(digest[:4], "big") % self.vocab
        ids = [(base + 7 * i) % self.vocab for i in range(_LOGIT_SPAN)]
        raw = np.frombuffer(
            hashlib.sha256(digest).digest() * ((_LOGIT_SPAN * 2) // 32 + 1),
            dtype=np.uint8,
        )[:_LOGIT_SPAN].astype(np.float64)
        # Deterministic tie-break jitter keeps the argmax unique and
        # separates tied raw values enough for low temperatures to
        # concentrate on it.
        logits = raw / 16.0 + np.arange(_LOGIT_SPAN) * 0.02
        return np.array(ids), logits

    def sample(self, step: int, context: List[int]) -> int:
        ids, logits = self.logits_window(step, context)
        config = self.config
        if config.greedy:
            return int(ids[int(np.argmax(logits))])
        if config.top_k:
            keep = np.argsort(logits)[-config.top_k:]
            ids, logits = ids[keep], logits[keep]
        scaled = logits / config.temperature
        scaled -= scaled.max()
        probs = np.exp(scaled)
        probs /= probs.sum()
        # Deterministic "uniform draw" from the step digest.
        draw_bytes = self._digest("draw", step, context)
        draw = int.from_bytes(draw_bytes[:8], "big") / 2 ** 64
        cumulative = np.cumsum(probs)
        index = int(np.searchsorted(cumulative, draw, side="right"))
        index = min(index, len(ids) - 1)
        return int(ids[index])

    def generate(self, n_tokens: int, prompt_ids: Optional[List[int]] = None) -> List[int]:
        """Sample ``n_tokens`` autoregressively from the synthetic model."""
        context = list(prompt_ids or [])
        out: List[int] = []
        for step in range(n_tokens):
            token = self.sample(step, context)
            out.append(token)
            context.append(token)
        return out
