"""The on-device model zoo: the four LLMs the paper evaluates (§7).

Architecture shapes follow the published configurations; parameter counts
are derived from the shapes, so the q8 file sizes land on the paper's
1.0 / 3.3 / 3.7 / 7.9 GB within a few percent.  Everything downstream
(tensor tables, computation DAGs, cost models, KV-cache sizing) is
computed from these specs — no magic totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import GB
from ..errors import ConfigurationError

__all__ = ["ModelSpec", "MODELS", "get_model", "TINYLLAMA", "QWEN25_3B", "PHI3_MINI", "LLAMA3_8B"]


@dataclass(frozen=True)
class ModelSpec:
    """A decoder-only transformer (llama-family layout, GQA, gated FFN)."""

    model_id: str
    display_name: str
    n_layers: int
    hidden: int
    intermediate: int
    n_heads: int
    n_kv_heads: int
    vocab: int
    quant_bits: int = 8
    tied_embeddings: bool = False
    #: KV cache element width (fp16 in llama.cpp's default cache).
    kv_bytes_per_element: int = 2
    #: MoE extension (the §4.1 limitation): >1 means per-layer experts.
    n_experts: int = 1
    experts_per_token: int = 1

    def __post_init__(self):
        if self.hidden % self.n_heads != 0:
            raise ConfigurationError("hidden not divisible by heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ConfigurationError("heads not divisible by kv heads")
        if self.n_experts < 1 or self.experts_per_token > self.n_experts:
            raise ConfigurationError("bad MoE configuration")

    # ------------------------------------------------------------------
    # derived shapes
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def bytes_per_param(self) -> float:
        return self.quant_bits / 8.0

    # per-layer parameter counts ---------------------------------------
    @property
    def attn_params(self) -> int:
        """Q, K, V, O projections (GQA-shaped K/V)."""
        q = self.hidden * self.hidden
        kv = 2 * self.hidden * self.kv_dim
        o = self.hidden * self.hidden
        return q + kv + o

    @property
    def ffn_params_per_expert(self) -> int:
        """Gate, up, down projections."""
        return 3 * self.hidden * self.intermediate

    @property
    def ffn_params(self) -> int:
        return self.ffn_params_per_expert * self.n_experts

    @property
    def norm_params(self) -> int:
        return 2 * self.hidden  # attn norm + ffn norm

    @property
    def layer_params(self) -> int:
        return self.attn_params + self.ffn_params + self.norm_params

    @property
    def embed_params(self) -> int:
        return self.vocab * self.hidden

    @property
    def lm_head_params(self) -> int:
        return 0 if self.tied_embeddings else self.vocab * self.hidden

    @property
    def total_params(self) -> int:
        return (
            self.embed_params
            + self.n_layers * self.layer_params
            + self.hidden  # final norm
            + self.lm_head_params
        )

    @property
    def param_bytes(self) -> int:
        return int(self.total_params * self.bytes_per_param)

    # runtime footprints -------------------------------------------------
    def kv_bytes_per_token(self) -> int:
        return 2 * self.n_layers * self.kv_dim * self.kv_bytes_per_element

    def kv_bytes(self, tokens: int) -> int:
        return self.kv_bytes_per_token() * tokens

    def activation_bytes(self, max_tokens: int) -> int:
        """Scratch activations for a batch of ``max_tokens`` (2 buffers of
        the widest intermediate, fp16)."""
        widest = max(self.hidden, self.intermediate)
        return 2 * widest * max_tokens * 2

    # compute ------------------------------------------------------------
    def prefill_flops(self, tokens: int) -> float:
        """Dense forward FLOPs for ``tokens`` prompt tokens (2 per MAC).

        MoE models route each token through ``experts_per_token`` experts.
        """
        active = (
            self.embed_params * 0  # lookup, not a matmul
            + self.n_layers
            * (
                self.attn_params
                + self.ffn_params_per_expert * self.experts_per_token
                + self.norm_params
            )
            + self.lm_head_params
            + (self.embed_params if self.tied_embeddings else 0)
        )
        return 2.0 * active * tokens

    def decode_flops_per_token(self) -> float:
        return self.prefill_flops(1)


def _mk(**kwargs) -> ModelSpec:
    return ModelSpec(**kwargs)


TINYLLAMA = _mk(
    model_id="tinyllama-1.1b-q8",
    display_name="TinyLlama-1.1B",
    n_layers=22,
    hidden=2048,
    intermediate=5632,
    n_heads=32,
    n_kv_heads=4,
    vocab=32000,
)

QWEN25_3B = _mk(
    model_id="qwen2.5-3b-q8",
    display_name="Qwen2.5-3B",
    n_layers=36,
    hidden=2048,
    intermediate=11008,
    n_heads=16,
    n_kv_heads=2,
    vocab=151936,
)

PHI3_MINI = _mk(
    model_id="phi-3-mini-3.8b-q8",
    display_name="Phi-3-3.8B",
    n_layers=32,
    hidden=3072,
    intermediate=8192,
    n_heads=32,
    n_kv_heads=32,
    vocab=32064,
)

LLAMA3_8B = _mk(
    model_id="llama-3-8b-q8",
    display_name="Llama-3-8B",
    n_layers=32,
    hidden=4096,
    intermediate=14336,
    n_heads=32,
    n_kv_heads=8,
    vocab=128256,
)

MODELS: Dict[str, ModelSpec] = {
    spec.model_id: spec for spec in (TINYLLAMA, QWEN25_3B, PHI3_MINI, LLAMA3_8B)
}

#: paper-reported q8 file sizes, for calibration checks.
PAPER_PARAM_BYTES: Dict[str, float] = {
    "tinyllama-1.1b-q8": 1.0 * GB,
    "qwen2.5-3b-q8": 3.3 * GB,
    "phi-3-mini-3.8b-q8": 3.7 * GB,
    "llama-3-8b-q8": 7.9 * GB,
}


def quantized_variant(spec: ModelSpec, bits: int) -> ModelSpec:
    """A re-quantized variant of a zoo model (e.g. q4 for tighter memory).

    The paper's systems support quantized models as-is (Table 1); this
    derives the spec the container/cost machinery needs: same shapes,
    different bytes-per-parameter.
    """
    from dataclasses import replace

    if bits not in (2, 4, 8, 16):
        raise ConfigurationError("unsupported quantization width %d" % bits)
    if bits == spec.quant_bits:
        return spec
    base_id = spec.model_id.rsplit("-q", 1)[0]
    return replace(
        spec,
        model_id="%s-q%d" % (base_id, bits),
        display_name="%s (q%d)" % (spec.display_name.split(" (q")[0], bits),
        quant_bits=bits,
    )


def get_model(model_id: str) -> ModelSpec:
    """Look up a zoo model by id."""
    try:
        return MODELS[model_id]
    except KeyError:
        raise ConfigurationError(
            "unknown model %r (have: %s)" % (model_id, ", ".join(sorted(MODELS)))
        )
