"""Graph execution: CPU ops on the big cluster, matmuls on an NPU backend.

The executor walks a computation graph in topological order (the chain
llama.cpp schedules), charging each operator's roofline duration on its
engine.  NPU operators are dispatched through a pluggable backend:

* :class:`DirectNPUBackend` — idealized device (launch latency only); the
  REE-LLM-Memory theoretical baseline.
* :class:`REEDriverNPUBackend` — jobs go through the full REE driver's
  unified queue (so concurrent NN apps really contend; Fig. 15).
* :class:`TEECoDriverNPUBackend` — secure jobs through the co-driver
  (shadow scheduling, world switches, sequence checks; §4.3).

The decode loop generates tokens one at a time, resizing the attention
operators as the KV cache grows, and samples a deterministic next token
so end-to-end output text is reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..config import PlatformSpec
from ..errors import ConfigurationError
from ..hw.common import AddrRange
from ..hw.npu import NPUJob
from ..sim import Resource, Simulator
from .graph import ComputationGraph, ComputeOp, build_decode_step_graph
from .kv_cache import KVCache
from .models import ModelSpec
from .ops import Engine, op_duration
from .tensors import TensorMeta

__all__ = [
    "NPUBackend",
    "DirectNPUBackend",
    "REEDriverNPUBackend",
    "TEECoDriverNPUBackend",
    "GraphExecutor",
    "DecodeResult",
    "decode_tokens",
    "sample_token",
]


class NPUBackend:
    """Strategy for running one NPU operator.

    Backends keep two attribution accumulators the executor reads around
    each dispatch: ``busy_time`` (device compute actually charged,
    including any §6 quantum padding) and ``overhead_time`` (the
    cross-world cost — SMC traps and secure-mode switches).  Whatever
    wall time remains is scheduler wait, attributed by the caller.
    """

    busy_time = 0.0
    overhead_time = 0.0

    def run(self, op: ComputeOp, duration: float):
        raise NotImplementedError


class DirectNPUBackend(NPUBackend):
    """Idealized NPU: exclusive device, launch latency only."""

    def __init__(self, sim: Simulator, platform: PlatformSpec):
        self.sim = sim
        self.platform = platform
        self.busy_time = 0.0
        self.overhead_time = 0.0

    def run(self, op: ComputeOp, duration: float):
        yield self.sim.timeout(self.platform.npu.job_launch_latency + duration)
        self.busy_time += duration
        self.overhead_time += self.platform.npu.job_launch_latency


def _job_for(op: ComputeOp, duration: float, ctx: AddrRange, tag: str) -> NPUJob:
    """Build a hardware job whose execution context lives at ``ctx``."""
    quarter = max(64, ctx.size // 4)
    return NPUJob(
        duration=duration,
        commands=AddrRange(ctx.base, quarter),
        io_pagetable=AddrRange(ctx.base + quarter, quarter),
        inputs=[AddrRange(ctx.base + 2 * quarter, quarter)],
        outputs=[AddrRange(ctx.base + 3 * quarter, quarter)],
        tag="%s:%s" % (tag, op.name),
    )


class REEDriverNPUBackend(NPUBackend):
    """Jobs through the full REE driver's unified scheduling queue."""

    def __init__(self, ree_driver, ctx: AddrRange):
        self.driver = ree_driver
        self.ctx = ctx
        self.busy_time = 0.0
        self.overhead_time = 0.0

    def run(self, op: ComputeOp, duration: float):
        job = _job_for(op, duration, self.ctx, "ree")
        completion = self.driver.submit(job)
        yield completion
        self.busy_time += duration


class TEECoDriverNPUBackend(NPUBackend):
    """Secure jobs through the TEE data-plane co-driver (§4.3).

    ``duration_quantum`` rounds every job's runtime up to a fixed quantum
    (dummy computation, the §6 timing-side-channel mitigation): the REE
    scheduler then observes uniform secure-job lengths.
    """

    def __init__(
        self,
        tee_driver,
        ctx: AddrRange,
        duration_quantum: float = 0.0,
        job_timeout: float = None,
        max_reissues: int = 2,
    ):
        self.driver = tee_driver
        self.ctx = ctx
        self.duration_quantum = duration_quantum
        #: ``job_timeout`` arms the co-driver's watchdog on every job
        #: (None keeps the legacy unbounded wait).
        self.job_timeout = job_timeout
        self.max_reissues = max_reissues
        self.busy_time = 0.0
        self.overhead_time = 0.0

    def run(self, op: ComputeOp, duration: float):
        if self.duration_quantum > 0:
            import math

            duration = math.ceil(duration / self.duration_quantum - 1e-12) * self.duration_quantum
        job = _job_for(op, duration, self.ctx, "tee")
        switch0 = self.driver.world_switch_time
        yield from self.driver.submit_secure_job(
            job, timeout=self.job_timeout, max_reissues=self.max_reissues
        )
        self.busy_time += duration
        self.overhead_time += self.driver.world_switch_time - switch0


class GraphExecutor:
    """Sequentially executes a graph's operator chain."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        cpu: Resource,
        npu_backend: Optional[NPUBackend] = None,
    ):
        self.sim = sim
        self.platform = platform
        self.cpu = cpu
        self.npu_backend = npu_backend
        self.cpu_busy_time = 0.0
        self.npu_wait_time = 0.0
        #: attribution slices of ``npu_wait_time`` (see NPUBackend): device
        #: compute, cross-world overhead, and whatever wait remains.
        self.npu_busy_time = 0.0
        self.npu_overhead_time = 0.0

    def op_time(self, op: ComputeOp) -> float:
        return op_duration(op.flops, op.bytes_touched, self.platform, op.engine)

    def run_op(self, op: ComputeOp, cpu_priority: float = 0.0):
        """Execute a single operator (generator)."""
        duration = self.op_time(op)
        if op.engine == Engine.CPU:
            request = self.cpu.request(priority=cpu_priority)
            yield request
            try:
                yield self.sim.timeout(duration)
                self.cpu_busy_time += duration
            finally:
                self.cpu.release(request)
        else:
            if self.npu_backend is None:
                raise ConfigurationError("graph has NPU ops but no NPU backend")
            start = self.sim.now
            busy0 = self.npu_backend.busy_time
            overhead0 = self.npu_backend.overhead_time
            yield from self.npu_backend.run(op, duration)
            self.npu_wait_time += self.sim.now - start
            self.npu_busy_time += self.npu_backend.busy_time - busy0
            self.npu_overhead_time += self.npu_backend.overhead_time - overhead0

    def execute(self, graph: ComputationGraph, cpu_priority: float = 0.0):
        """Run the whole chain (generator)."""
        for op in graph.ops:
            yield from self.run_op(op, cpu_priority=cpu_priority)


def sample_token(model_id: str, step: int, vocab: int) -> int:
    """Deterministic "sampling": reproducible outputs without an RNG."""
    digest = hashlib.sha256(("sample:%s:%d" % (model_id, step)).encode()).digest()
    return int.from_bytes(digest[:4], "big") % vocab


@dataclass
class DecodeResult:
    token_ids: List[int] = field(default_factory=list)
    step_times: List[float] = field(default_factory=list)
    #: per-token latency attribution: for each generated token a dict of
    #: ``cpu`` (CPU op busy time), ``npu_compute`` (device busy time),
    #: ``smc`` (cross-world overhead: traps + secure-mode switches), and
    #: ``sched_wait`` (the rest: REE queueing, power-up, stalls, hooks).
    attribution: List[dict] = field(default_factory=list)
    #: the loop was stopped by ``stop_hook`` before generating every token
    #: (serving-level preemption; see :mod:`repro.serve`).
    stopped_early: bool = False

    @property
    def tokens_per_second(self) -> float:
        total = sum(self.step_times)
        return len(self.step_times) / total if total > 0 else 0.0

    def attribution_totals(self) -> dict:
        """Summed per-component decode time across all tokens."""
        totals = {"cpu": 0.0, "npu_compute": 0.0, "smc": 0.0, "sched_wait": 0.0}
        for step in self.attribution:
            for key in totals:
                totals[key] += step.get(key, 0.0)
        return totals


def decode_tokens(
    executor: GraphExecutor,
    model: ModelSpec,
    tensors: List[TensorMeta],
    kv: KVCache,
    n_tokens: int,
    use_npu: Union[bool, str] = "auto",
    cpu_priority: float = 0.0,
    grow_hook=None,
    stop_hook=None,
):
    """The decode loop (generator; returns a :class:`DecodeResult`).

    Engine choice is made once (it depends on weight sizes, not KV size);
    the attention operators are resized each step as the cache grows.
    ``grow_hook(kv)`` — a generator-producing callable — runs before each
    step so the caller can extend KV-cache backing memory as it grows
    (the §4.2 behaviour: the KV region scales during decoding).
    ``stop_hook()`` — a plain callable — is checked at every token
    boundary; when it returns true the loop stops early with
    ``stopped_early`` set, the preemption point the serving gateway uses
    to yield the TA to a higher-priority request (same micro-granularity
    idea as the §4.1 pipeline preemption, at token scale).
    """
    sim = executor.sim
    result = DecodeResult()
    graph = build_decode_step_graph(
        model, tensors, kv.tokens, use_npu=use_npu, platform=executor.platform
    )
    attention_ops = [op for op in graph.ops if op.name.endswith(".attention")]
    for step in range(n_tokens):
        if stop_hook is not None and stop_hook():
            result.stopped_early = True
            break
        start = sim.now
        cpu0 = executor.cpu_busy_time
        npu0 = executor.npu_busy_time
        smc0 = executor.npu_overhead_time
        if grow_hook is not None:
            yield from grow_hook(kv)
        kv_bytes = kv.tokens * model.kv_dim * 2 * model.kv_bytes_per_element
        for op in attention_ops:
            op.flops = 4.0 * kv.tokens * model.hidden
            op.bytes_touched = kv_bytes
        yield from executor.execute(graph, cpu_priority=cpu_priority)
        step_time = sim.now - start
        result.step_times.append(step_time)
        cpu_d = executor.cpu_busy_time - cpu0
        npu_d = executor.npu_busy_time - npu0
        smc_d = executor.npu_overhead_time - smc0
        result.attribution.append(
            {
                "cpu": cpu_d,
                "npu_compute": npu_d,
                "smc": smc_d,
                "sched_wait": max(0.0, step_time - cpu_d - npu_d - smc_d),
            }
        )
        result.token_ids.append(sample_token(model.model_id, step, model.vocab))
        kv.append_token()
    return result
