"""Bounded flight recorder for postmortem provenance.

Every layer appends typed, timestamped events cheaply (one deque append,
no formatting until rendered).  The buffer is a ring: when full, the
oldest events fall off, bounding memory for arbitrarily long runs.  On a
terminal failure the serving gateway snapshots the tail as the request's
postmortem, so "what led up to this?" is answerable after the fact —
which faults fired where, which retries ran, which watchdogs barked.
"""

from collections import deque
from dataclasses import dataclass
from typing import Tuple

__all__ = ["FlightEvent", "FlightRecorder"]


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event: what happened, where, and when (sim time)."""

    at: float
    category: str
    site: str
    message: str = ""
    data: Tuple = ()

    def to_dict(self):
        """JSON-stable form of the event."""
        return {
            "at": self.at,
            "category": self.category,
            "site": self.site,
            "message": self.message,
            "data": dict(self.data),
        }

    def render(self):
        """One human-readable line, suitable for a postmortem dump."""
        extra = " ".join("%s=%s" % (k, v) for k, v in self.data)
        parts = ["[%12.6f]" % self.at, self.category, self.site]
        if self.message:
            parts.append(self.message)
        if extra:
            parts.append(extra)
        return " ".join(parts)


class FlightRecorder:
    """Ring buffer of :class:`FlightEvent`, stamped with sim time."""

    def __init__(self, sim, capacity=512):
        self.sim = sim
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.total = 0

    @property
    def dropped(self):
        """Events that have fallen off the ring."""
        return self.total - len(self._events)

    @property
    def events(self):
        """Current buffer contents, oldest first."""
        return list(self._events)

    def record(self, category, site, message="", **data):
        """Append one event stamped with the current sim time."""
        self.total += 1
        event = FlightEvent(
            at=self.sim.now,
            category=category,
            site=site,
            message=message,
            data=tuple(sorted((k, str(v)) for k, v in data.items())),
        )
        self._events.append(event)
        return event

    def tail(self, n=32):
        """The last ``n`` events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def tail_category(self, category, n=32):
        """The last ``n`` events of one category, oldest first.

        The gateway uses this to pin the recent ``memory`` events onto
        the postmortem of a request that failed after blocking on KV
        admission — the OOM-adjacent region/pool history survives even
        when chattier categories have already churned the ring."""
        if n <= 0:
            return []
        picked = [e for e in self._events if e.category == category]
        return picked[-n:]

    def render(self, n=None):
        """Human-readable dump of the last ``n`` events (all if None)."""
        events = self.events if n is None else self.tail(n)
        lines = ["flight recorder: %d events (%d dropped)" % (self.total, self.dropped)]
        lines.extend(e.render() for e in events)
        return "\n".join(lines)

    def to_dict(self):
        """JSON-stable export of the buffer and its counters."""
        return {
            "total": self.total,
            "dropped": self.dropped,
            "events": [e.to_dict() for e in self._events],
        }
