"""Fleet telemetry: virtual-time scraping, a ring-buffer TSDB, tenant
accounting and tail-based trace sampling.

Until now the fleet's observability was frozen at point-in-time
snapshots: ``Fleet.health()`` and the per-device child registries can
answer "what is the counter now" but never "what happened over the last
hour", "which tenant is burning the budget" or "show me the trace of the
slow hedged ticket".  This module is the pipeline that answers those,
entirely on the simulated clock:

* :class:`TimeSeriesStore` — a bounded per-series ring buffer with
  multi-resolution downsampling (raw → 10× → 100×; every ``factor``-th
  sample of a tier cascades up, which is lossless for cumulative
  counters because only group-boundary values matter to ``rate()``/
  ``delta()``).  Queries — windowed :meth:`~TimeSeriesStore.rate`,
  :meth:`~TimeSeriesStore.delta`, :meth:`~TimeSeriesStore.avg` and
  histogram :meth:`~TimeSeriesStore.quantile` — pick the finest tier
  still covering the window and sum across every series whose labels
  are a superset of the filter.
* :class:`TelemetryCollector` — a sim process that walks a
  :class:`~repro.obs.registry.MetricsRegistry` every
  ``scrape_interval`` simulated seconds and appends one sample per
  live series.  ``pre_scrape`` hooks run first, so gauges derived from
  live state (device up-ness) are re-computed at the scrape instant and
  can never go stale.
* :class:`TenantAccountant` — per ``tenant × device`` usage meters:
  tokens in/out, KV byte-seconds, secure-memory residency seconds,
  hedge-budget spend, shed/failed counts — with top-k rollups and a
  deterministic JSON / Prometheus export.
* :class:`TailSampler` — tail-based trace sampling: every
  failed / shed / hedged / SLO-violating ticket keeps its full Chrome
  trace; fast tickets keep theirs with a seeded, completion-order-
  independent probability; everything else is dropped *before* any
  span is built.  Kept TTFTs attach trace-id exemplars to the latency
  histogram buckets.
* :class:`FleetTelemetry` — the facade
  :meth:`~repro.fleet.cluster.Fleet.start_telemetry` wires up, whose
  :meth:`~FleetTelemetry.snapshot` / :meth:`~FleetTelemetry.render_top`
  power ``examples/fleet_top.py``.

Everything is deterministic: scrapes land on exact virtual instants,
sampling decisions are pure functions of ``(seed, ticket_id)``, and all
exports serialize byte-identically across replays of the same seed.
"""

from __future__ import annotations

import json
import time
from array import array
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .registry import DEFAULT_BUCKETS, Histogram, _fmt, _label_key

__all__ = [
    "TelemetryConfig",
    "TimeSeriesStore",
    "TelemetryCollector",
    "TenantAccountant",
    "TailSampler",
    "FleetTelemetry",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the whole pipeline, in one place."""

    #: simulated seconds between registry scrapes.
    scrape_interval: float = 5.0
    #: ring capacity per series *per resolution tier*.
    ring_capacity: int = 240
    #: samples aggregated into one at the next-coarser tier.
    downsample_factor: int = 10
    #: number of resolution tiers (raw, 10x, 100x with the defaults).
    resolutions: int = 3
    #: probability a fast (no-anomaly) ticket keeps its trace.
    tail_sample_rate: float = 0.05
    #: seed for the fast-path sampling decision.
    tail_seed: int = 7
    #: bound on retained ticket traces (oldest evicted first).
    trace_capacity: int = 512
    #: default top-k size for tenant rollups.
    top_k: int = 5
    #: default window for snapshot/health rate queries (simulated s).
    rate_window: float = 60.0

    def __post_init__(self):
        if self.scrape_interval <= 0:
            raise ConfigurationError("scrape_interval must be positive")
        if self.ring_capacity < 2:
            raise ConfigurationError("ring_capacity must be >= 2")
        if self.downsample_factor < 2:
            raise ConfigurationError("downsample_factor must be >= 2")
        if self.resolutions < 1:
            raise ConfigurationError("resolutions must be >= 1")
        if not 0.0 <= self.tail_sample_rate <= 1.0:
            raise ConfigurationError("tail_sample_rate must be in [0, 1]")
        if self.trace_capacity < 1:
            raise ConfigurationError("trace_capacity must be >= 1")
        if self.top_k < 1 or self.rate_window <= 0:
            raise ConfigurationError("top_k / rate_window must be positive")


class _SeriesRing:
    """One series' bounded multi-resolution sample history.

    ``tiers[0]`` holds raw scrape samples; every ``factor``-th append to
    tier *i* cascades the sample to tier *i+1*.  Samples are cumulative
    (counters / histogram snapshots) or instantaneous (gauges), so the
    strided downsample preserves exactly what windowed queries need —
    the value at each group boundary.

    Each tier packs its samples into one flat ``array('d')`` used as a
    circular buffer, not a deque of tuples.  A fleet-scale run retains
    hundreds of thousands of samples, and the difference between 16
    unboxed bytes and a ~90-byte tuple object per sample is the
    difference between a collector that rides in cache and one whose
    working set degrades the whole simulation (measured as tens of
    percent of wall clock).  Rows are decoded back to tuples only on
    the (rare) query path.
    """

    __slots__ = ("tiers", "appended", "factor", "capacity", "stride")

    def __init__(self, capacity: int, factor: int, resolutions: int):
        self.tiers = [array("d") for _ in range(resolutions)]
        self.appended = [0] * resolutions
        self.factor = factor
        self.capacity = capacity
        #: doubles per row: 2 for scalars, 3 + len(buckets) for histograms
        #: (fixed per series; set by the first append).
        self.stride = 0

    def append(self, t: float, value) -> None:
        if not isinstance(value, tuple):
            self.append_scalar(t, value)
            return
        count, total, buckets = value
        row = array("d", (t, count, total) + buckets)
        if self.stride == 0:
            self.stride = len(row)
        capacity = self.capacity
        stride = self.stride
        for i, tier in enumerate(self.tiers):
            n = self.appended[i]
            if n < capacity:
                tier.extend(row)
            else:
                base = (n % capacity) * stride
                tier[base : base + stride] = row
            n += 1
            self.appended[i] = n
            if n % self.factor != 0:
                break  # no cascade: coarser tiers keep their stride

    def append_scalar(self, t: float, value: float) -> None:
        """Counter/gauge hot path: tier 0 inline, the 1-in-``factor``
        cascade to coarser tiers delegated.  The collector calls this
        once per scalar series per scrape — it is the single most
        executed statement in a telemetry-on fleet run."""
        if self.stride == 0:
            self.stride = 2
        n = self.appended[0]
        tier = self.tiers[0]
        if n < self.capacity:
            tier.append(t)
            tier.append(value)
        else:
            base = (n % self.capacity) * 2
            tier[base] = t
            tier[base + 1] = value
        n += 1
        self.appended[0] = n
        if n % self.factor == 0:
            self._cascade_scalar(t, value)

    def _cascade_scalar(self, t: float, value: float) -> None:
        capacity = self.capacity
        for i in range(1, len(self.tiers)):
            tier = self.tiers[i]
            n = self.appended[i]
            if n < capacity:
                tier.append(t)
                tier.append(value)
            else:
                base = (n % capacity) * 2
                tier[base] = t
                tier[base + 1] = value
            n += 1
            self.appended[i] = n
            if n % self.factor != 0:
                break

    # -- decoding ------------------------------------------------------
    def _order(self, i: int):
        """(physical row index of the oldest sample, retained count)."""
        n = self.appended[i]
        if n <= self.capacity:
            return 0, n
        return n % self.capacity, self.capacity

    def _decode(self, tier, k: int):
        base = k * self.stride
        if self.stride == 2:
            return (tier[base], tier[base + 1])
        return (
            tier[base],
            (
                tier[base + 1],
                tier[base + 2],
                tuple(tier[base + 3 : base + self.stride]),
            ),
        )

    def first_t(self, i: int):
        first, count = self._order(i)
        return self.tiers[i][first * self.stride] if count else None

    def last_value(self):
        n = self.appended[0]
        if not n:
            return None
        return self._decode(self.tiers[0], (n - 1) % self.capacity)[1]

    def rows(self, i: int):
        """Tier *i*'s retained samples, oldest first, as (t, value)."""
        tier = self.tiers[i]
        first, count = self._order(i)
        return [
            self._decode(tier, (first + k) % self.capacity) for k in range(count)
        ]

    def window(self, window: float, now: float):
        """Samples of the finest tier whose history covers the window.

        When no tier reaches back to the window edge, fall back to the
        tier retaining the *oldest* sample (ties go to the finer tier):
        before eviction that is the raw tier — coarse tiers start later
        because of the cascade stride — and after eviction it is the
        coarsest, so coverage is maximal either way.
        """
        edge = now - window
        best_i, best_t = -1, None
        for i in range(len(self.tiers)):
            t0 = self.first_t(i)
            if t0 is None:
                continue
            if t0 <= edge:
                return self.rows(i)
            if best_t is None or t0 < best_t:
                best_t, best_i = t0, i
        return self.rows(best_i) if best_i >= 0 else []


def _anchor(samples, edge: float):
    """Latest sample at or before ``edge`` (else the oldest kept)."""
    anchor = samples[0]
    for sample in samples:
        if sample[0] <= edge:
            anchor = sample
        else:
            break
    return anchor


class TimeSeriesStore:
    """Bounded multi-resolution time-series storage with windowed queries.

    Series are keyed ``(metric name, canonical label key)``.  Counter and
    gauge samples are ``(t, value)``; histogram samples are
    ``(t, (count, sum, cumulative_buckets))`` snapshots.  Query label
    filters match *subsets*: ``rate("fleet_routed_total", 60.0,
    device="hub-0")`` sums every series carrying that label pair.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config if config is not None else TelemetryConfig()
        #: name -> label_key -> ring
        self._series: Dict[str, Dict[tuple, _SeriesRing]] = {}
        self._kinds: Dict[str, str] = {}
        self._bounds: Dict[str, tuple] = {}

    # -- writes --------------------------------------------------------
    def _ring(self, name: str, kind: str, label_key: tuple) -> _SeriesRing:
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ConfigurationError(
                "series %s already stored as %s, appended as %s" % (name, known, kind)
            )
        by_label = self._series.setdefault(name, {})
        ring = by_label.get(label_key)
        if ring is None:
            cfg = self.config
            ring = _SeriesRing(cfg.ring_capacity, cfg.downsample_factor, cfg.resolutions)
            by_label[label_key] = ring
        return ring

    def append(self, name: str, kind: str, label_key: tuple, t: float, value: float) -> None:
        self._ring(name, kind, label_key).append(t, float(value))

    def append_histogram(
        self, name: str, label_key: tuple, t: float,
        count: int, total: float, buckets: tuple, bounds: tuple,
    ) -> None:
        self._bounds.setdefault(name, tuple(bounds))
        self._ring(name, "histogram", label_key).append(t, (count, total, tuple(buckets)))

    # -- selection -----------------------------------------------------
    def _matching(self, name: str, labels: Dict[str, object]):
        by_label = self._series.get(name)
        if not by_label:
            return []
        want = set(_label_key(labels)) if labels else set()
        return [
            ring
            for key in sorted(by_label)
            if want <= set(key)
            for ring in (by_label[key],)
        ]

    # -- queries -------------------------------------------------------
    def latest(self, name: str, **labels) -> float:
        """Most recent raw value summed over matching series (0 if none)."""
        total = 0.0
        for ring in self._matching(name, labels):
            value = ring.last_value()
            if value is not None:
                total += value
        return total

    def rate(self, name: str, window: float, now: float, **labels) -> float:
        """Per-second increase over ``[now - window, now]``.

        Computed per series as ``(last - anchor) / (t_last - t_anchor)``
        from cumulative samples (the Prometheus ``rate()`` shape), then
        summed across the matching series.
        """
        edge = now - window
        total = 0.0
        for ring in self._matching(name, labels):
            samples = ring.window(window, now)
            if len(samples) < 2:
                continue
            t0, v0 = _anchor(samples, edge)
            t1, v1 = samples[-1]
            if t1 > t0:
                total += (v1 - v0) / (t1 - t0)
        return total

    def delta(self, name: str, window: float, now: float, **labels) -> float:
        """Total increase over the window, summed across matching series."""
        edge = now - window
        total = 0.0
        for ring in self._matching(name, labels):
            samples = ring.window(window, now)
            if len(samples) < 2:
                continue
            total += samples[-1][1] - _anchor(samples, edge)[1]
        return total

    def avg(self, name: str, window: float, now: float, **labels) -> float:
        """Mean of in-window gauge samples across matching series."""
        edge = now - window
        values = []
        for ring in self._matching(name, labels):
            for t, v in ring.window(window, now):
                if t > edge:
                    values.append(v)
        return sum(values) / len(values) if values else 0.0

    def quantile(self, name: str, q: float, window: float, now: float, **labels) -> float:
        """Histogram quantile from windowed cumulative-bucket deltas.

        Prometheus ``histogram_quantile`` semantics: the per-bucket
        increase over the window is summed across matching series, the
        target rank is located in the cumulative distribution, and the
        result is linearly interpolated inside the winning bucket (the
        ``+Inf`` bucket degrades to the highest finite bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        bounds = self._bounds.get(name)
        if bounds is None:
            return 0.0
        edge = now - window
        deltas = [0] * len(bounds)
        count = 0
        for ring in self._matching(name, labels):
            samples = ring.window(window, now)
            if len(samples) < 2:
                continue
            _, (c0, _s0, b0) = _anchor(samples, edge)
            _, (c1, _s1, b1) = samples[-1]
            count += c1 - c0
            for i in range(len(bounds)):
                deltas[i] += b1[i] - b0[i]
        if count <= 0:
            return 0.0
        rank = q * count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in zip(bounds, deltas):
            if cum >= rank:
                in_bucket = cum - prev_cum
                if in_bucket <= 0:
                    return bound
                frac = (rank - prev_cum) / in_bucket
                return prev_bound + (bound - prev_bound) * frac
            prev_bound, prev_cum = bound, cum
        return bounds[-1]  # rank fell in +Inf: clamp to the last edge

    # -- introspection / export ----------------------------------------
    def series_count(self) -> int:
        return sum(len(by_label) for by_label in self._series.values())

    def samples(self, name: str, tier: int = 0, **labels) -> List[tuple]:
        """Raw (or coarser) samples of one exact series, for tests."""
        by_label = self._series.get(name, {})
        ring = by_label.get(_label_key(labels))
        return ring.rows(tier) if ring is not None else []

    def to_dict(self) -> Dict:
        """JSON-stable export of every series at every resolution."""
        out: Dict = {}
        for name in sorted(self._series):
            series = []
            for key in sorted(self._series[name]):
                ring = self._series[name][key]
                tiers = []
                for i in range(len(ring.tiers)):
                    tiers.append(
                        [
                            [t, list(v) if isinstance(v, tuple) else v]
                            for t, v in ring.rows(i)
                        ]
                    )
                series.append({"labels": dict(key), "tiers": tiers})
            entry = {"kind": self._kinds[name], "series": series}
            if name in self._bounds:
                entry["buckets"] = list(self._bounds[name])
            out[name] = entry
        return out


class TelemetryCollector:
    """Scrapes a metrics registry into the store, on the virtual clock."""

    def __init__(
        self,
        sim,
        registry,
        store: TimeSeriesStore,
        config: Optional[TelemetryConfig] = None,
        recorder=None,
    ):
        self.sim = sim
        self.registry = registry
        self.store = store
        self.config = config if config is not None else store.config
        self.recorder = recorder
        #: callables run before each scrape: refresh gauges derived from
        #: live state so a scrape can never observe a stale value.
        self.pre_scrape: List[Callable[[], None]] = []
        self.scrapes = 0
        self.samples_total = 0
        #: cached scrape plan — (values_dict, key, ring, is_histogram)
        #: per live series.  Series only ever appear (label sets and
        #: instruments are never deleted), so the plan is valid until
        #: the live-series count changes; caching it turns each scrape
        #: into a flat walk with no dict lookups or per-scrape sorting.
        self._plan: Optional[list] = None
        self._plan_series = -1
        self._values_list: Optional[list] = None
        self._inst_count = -1
        #: host (wall-clock) seconds spent inside scrapes — the
        #: collector's own cost, measurable independently of whatever
        #: else shares the machine with the benchmark.
        self.host_seconds = 0.0

    def scrape(self) -> int:
        """One scrape pass: every live series gains one sample at now.

        The hot loop is deliberately flat: plan rows carry the series
        dict, the ring, and the ring's tier-0 array directly, and the
        scalar append is inlined (capacity/factor are uniform across
        rings, hoisted once).  At fleet scale this loop runs hundreds of
        samples per scrape, thousands of scrapes per run — every
        attribute lookup and call removed here is measurable against
        the <=5% overhead budget.
        """
        host_start = time.perf_counter()
        for hook in self.pre_scrape:
            hook()
        now = self.sim.now
        registry_map = getattr(self.registry, "_instruments", None)
        if registry_map is None:
            # A registry view (e.g. a child) without direct instrument
            # access: take the generic, uncached path.
            return self._finish(
                self._scrape_generic(now, self.registry.instruments()),
                host_start,
            )
        if self._values_list is None or len(registry_map) != self._inst_count:
            instruments = self.registry.instruments()
            if any(not hasattr(inst, "_values") for inst in instruments):
                return self._finish(
                    self._scrape_generic(now, instruments), host_start
                )
            self._inst_count = len(registry_map)
            self._values_list = [inst._values for inst in instruments]
            self._plan = None
        live = 0
        for values in self._values_list:
            live += len(values)
        if self._plan is None or live != self._plan_series:
            self._rebuild_plan(self.registry.instruments(), live)
        capacity = self.config.ring_capacity
        factor = self.config.downsample_factor
        for values, key, ring, tier, appended in self._plan:
            value = values[key]
            if tier is None:  # histogram: snapshot the bucket vector
                ring.append(
                    now, (value["count"], value["sum"], tuple(value["buckets"]))
                )
                continue
            n = appended[0]
            if n < capacity:
                tier.append(now)
                tier.append(value)
            else:
                base = (n % capacity) * 2
                tier[base] = now
                tier[base + 1] = value
            n += 1
            appended[0] = n
            if n % factor == 0:
                ring._cascade_scalar(now, value)
        return self._finish(len(self._plan), host_start)

    def _finish(self, appended: int, host_start: float) -> int:
        self.scrapes += 1
        self.samples_total += appended
        self.host_seconds += time.perf_counter() - host_start
        return appended

    def _rebuild_plan(self, instruments, live: int) -> None:
        plan = []
        store = self.store
        for inst in instruments:
            is_hist = isinstance(inst, Histogram)
            for key in sorted(inst._values):
                # Route ring creation through the store so kind-conflict
                # checks and bucket-bound registration stay in one place.
                if is_hist:
                    store._bounds.setdefault(inst.name, tuple(inst.buckets))
                    ring = store._ring(inst.name, "histogram", key)
                    plan.append((inst._values, key, ring, None, None))
                else:
                    ring = store._ring(inst.name, inst.kind, key)
                    if ring.stride == 0:
                        ring.stride = 2
                    # Tier-0 array and append counter ride in the plan
                    # row so the scrape loop appends without attribute
                    # lookups or a method call.
                    plan.append(
                        (inst._values, key, ring, ring.tiers[0], ring.appended)
                    )
        self._plan = plan
        self._plan_series = live

    def _scrape_generic(self, now: float, instruments) -> int:
        appended = 0
        for inst in instruments:
            if isinstance(inst, Histogram):
                for key, series in inst.samples():
                    self.store.append_histogram(
                        inst.name, key, now,
                        series["count"], series["sum"],
                        tuple(series["buckets"]), inst.buckets,
                    )
                    appended += 1
            else:
                for key, value in inst.samples():
                    self.store.append(inst.name, inst.kind, key, now, value)
                    appended += 1
        return appended

    def start(self, until: float) -> None:
        """Spawn the scrape loop (bounded, so ``sim.run()`` still drains)."""
        self.sim.process(self._loop(until), name="telemetry-collector")

    def _loop(self, until: float):
        while self.sim.now + self.config.scrape_interval <= until:
            yield self.sim.timeout(self.config.scrape_interval)
            self.scrape()


class _TenantUsage:
    """One ``tenant × device`` row of the usage ledger."""

    __slots__ = (
        "requests", "tokens_in", "tokens_out", "kv_byte_seconds",
        "residency_seconds", "hedge_spend", "sheds", "failed",
    )

    def __init__(self):
        self.requests = 0
        self.tokens_in = 0
        self.tokens_out = 0
        self.kv_byte_seconds = 0.0
        self.residency_seconds = 0.0
        self.hedge_spend = 0
        self.sheds = 0
        self.failed = 0

    def to_dict(self) -> Dict:
        return {
            "requests": self.requests,
            "tokens_in": self.tokens_in,
            "tokens_out": self.tokens_out,
            "kv_byte_seconds": round(self.kv_byte_seconds, 6),
            "residency_seconds": round(self.residency_seconds, 6),
            "hedge_spend": self.hedge_spend,
            "sheds": self.sheds,
            "failed": self.failed,
        }


#: accountant metric -> Prometheus series name, in export order.
_TENANT_EXPORTS = (
    ("requests", "fleet_tenant_requests_total"),
    ("tokens_in", "fleet_tenant_tokens_in_total"),
    ("tokens_out", "fleet_tenant_tokens_out_total"),
    ("kv_byte_seconds", "fleet_tenant_kv_byte_seconds_total"),
    ("residency_seconds", "fleet_tenant_residency_seconds_total"),
    ("hedge_spend", "fleet_tenant_hedge_spend_total"),
    ("sheds", "fleet_tenant_shed_total"),
    ("failed", "fleet_tenant_failed_total"),
)

#: the device column used when no device ever handled the work (sheds,
#: budget denials before placement).
NO_DEVICE = "-"


class TenantAccountant:
    """Meters per-tenant, per-device resource usage from ticket outcomes.

    Fed by the router's terminal hooks (done / failed / shed) and hedge
    sites; every number is derived from simulated timestamps and token
    counts, so two replays of the same seed export identical bytes.
    KV byte-seconds price the *final* KV footprint (effective prompt +
    generated tokens, at the model's ``kv_bytes_per_token``) over the
    attempt's secure residency — a deliberate upper bound that tracks
    what the TZASC region actually had to hold at release time.
    """

    def __init__(self, kv_bytes_per_token: Optional[Dict[str, int]] = None):
        #: model_id -> KV bytes per token (0 for unknown models).
        self.kv_bytes_per_token = dict(kv_bytes_per_token or {})
        self._usage: Dict[Tuple[str, str], _TenantUsage] = {}

    def _row(self, tenant: str, device: Optional[str]) -> _TenantUsage:
        key = (tenant, device or NO_DEVICE)
        row = self._usage.get(key)
        if row is None:
            row = self._usage[key] = _TenantUsage()
        return row

    # -- hooks (the router / FleetTelemetry call these) ----------------
    def note_done(self, ticket) -> None:
        """A ticket completed: meter the winner, bill every attempt's
        residency (hedge losers occupied secure memory too)."""
        winner = ticket.winner
        tenant = ticket.request.tenant
        row = self._row(tenant, winner.device_id)
        row.requests += 1
        row.tokens_in += winner.prompt_tokens
        row.tokens_out += winner.tokens_generated
        kv_per_token = self.kv_bytes_per_token.get(ticket.request.model_id, 0)
        for attempt in ticket.attempts:
            residency = self._residency(attempt)
            if residency <= 0:
                continue
            arow = self._row(tenant, attempt.device_id)
            arow.residency_seconds += residency
            tokens = attempt.prompt_tokens + (
                winner.tokens_generated if attempt is winner else 0
            )
            arow.kv_byte_seconds += tokens * kv_per_token * residency

    @staticmethod
    def _residency(attempt) -> float:
        if attempt.dispatched_at is None:
            return 0.0
        end = attempt.finished_at
        if end is None:
            end = attempt.cancelled_at
        if end is None:
            end = attempt.failed_at
        return 0.0 if end is None else max(0.0, end - attempt.dispatched_at)

    def note_failed(self, ticket) -> None:
        device = ticket.device_id
        self._row(ticket.request.tenant, device).failed += 1

    def note_shed(self, ticket) -> None:
        self._row(ticket.request.tenant, NO_DEVICE).sheds += 1

    def note_budget_spend(self, tenant: str, device: Optional[str]) -> None:
        """One hedge-budget token burned (a hedge or a paid failover)."""
        self._row(tenant, device).hedge_spend += 1

    # -- rollups -------------------------------------------------------
    def totals(self, metric: str) -> Dict[str, float]:
        """Per-tenant totals of one metric, summed across devices."""
        out: Dict[str, float] = {}
        for (tenant, _device), row in self._usage.items():
            out[tenant] = out.get(tenant, 0) + getattr(row, metric)
        return out

    def top_k(self, metric: str, k: Optional[int] = None) -> List[Tuple[str, float]]:
        """Top tenants by one metric (descending, name-tiebroken)."""
        k = 5 if k is None else k
        ranked = sorted(self.totals(metric).items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    # -- exports -------------------------------------------------------
    def to_dict(self) -> Dict:
        tenants: Dict[str, Dict] = {}
        for (tenant, device) in sorted(self._usage):
            tenants.setdefault(tenant, {})[device] = self._usage[(tenant, device)].to_dict()
        totals = {
            tenant: {
                metric: (round(value, 6) if isinstance(value, float) else value)
                for metric, value in (
                    (m, self.totals(m)[tenant]) for m, _name in _TENANT_EXPORTS
                )
            }
            for tenant in sorted({t for t, _d in self._usage})
        }
        return {"tenants": tenants, "totals": totals}

    def render_prometheus(self) -> str:
        """Deterministic Prometheus text exposition of the ledger."""
        lines = []
        for metric, series_name in _TENANT_EXPORTS:
            lines.append("# TYPE %s counter" % series_name)
            for (tenant, device) in sorted(self._usage):
                value = getattr(self._usage[(tenant, device)], metric)
                if not value:
                    continue
                lines.append(
                    '%s{device="%s",tenant="%s"} %s'
                    % (series_name, device, tenant, _fmt(float(value)))
                )
        return "\n".join(lines) + "\n"


#: reasons a ticket's trace is always kept, in classification order.
_KEEP_REASONS = ("failed", "shed", "hedged", "slo-violated")


class TailSampler:
    """Keeps whole-ticket Chrome traces for the tail, samples the rest.

    The decision runs at ticket completion: anomalous tickets (failed,
    shed, hedged, SLO-violating) always keep their trace; fast tickets
    keep theirs with probability ``tail_sample_rate`` decided by a pure
    hash of ``(seed, ticket_id)`` — independent of completion order, so
    replays sample the identical set.  Dropped tickets never build a
    single span dict.  Kept winners also pin a trace-id *exemplar* onto
    the TTFT histogram bucket their latency landed in.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None, buckets=DEFAULT_BUCKETS):
        self.config = config if config is not None else TelemetryConfig()
        self.buckets = tuple(buckets)
        self.offered = 0
        self.dropped = 0
        self.kept: Dict[str, int] = {}
        #: kept ticket traces, oldest evicted first.
        self.traces = deque(maxlen=self.config.trace_capacity)
        #: histogram bucket bound -> latest exemplar for that bucket.
        self.exemplars: Dict[float, Dict] = {}

    # -- the decision --------------------------------------------------
    def classify(self, ticket) -> Optional[str]:
        if ticket.state == "failed":
            return "failed"
        if ticket.state == "shed":
            return "shed"
        if ticket.hedges:
            return "hedged"
        if ticket.slo_attained is False:
            return "slo-violated"
        return None

    def _keep_fast(self, ticket_id: int) -> bool:
        h = (ticket_id * 2654435761 + self.config.tail_seed * 40503) & 0xFFFFFFFF
        return h / 4294967296.0 < self.config.tail_sample_rate

    def offer(self, ticket) -> Optional[str]:
        """Decide one completed ticket; returns the keep reason or None."""
        self.offered += 1
        reason = self.classify(ticket)
        if reason is None:
            if not self._keep_fast(ticket.ticket_id):
                self.dropped += 1
                return None
            reason = "sampled"
        self.kept[reason] = self.kept.get(reason, 0) + 1
        self.traces.append(self._build_trace(ticket, reason))
        if ticket.winner is not None and ticket.winner.first_token_at is not None:
            self._note_exemplar(ticket)
        return reason

    # -- trace construction (kept tickets only) ------------------------
    def _build_trace(self, ticket, reason: str) -> Dict:
        events = []
        ticket_id = ticket.ticket_id
        tenant = ticket.request.tenant
        # Tickets complete when their winner does; a hedge loser may still
        # be standing down.  Its serve span is drawn to the latest known
        # instant so per-attempt attribution survives in the kept trace.
        horizon = ticket.arrived_at
        for attempt in ticket.attempts:
            for at in (attempt.finished_at, attempt.cancelled_at, attempt.failed_at):
                if at is not None and at > horizon:
                    horizon = at
        for i, attempt in enumerate(ticket.attempts):
            lane = "device:%s" % (attempt.device_id or "?")
            flow_id = ticket_id * 1000 + i
            flow_name = "ticket t%d attempt %d" % (ticket_id, i)
            args = {
                "attempt": i,
                "device": attempt.device_id,
                "hedge": attempt.hedge,
                "state": attempt.state,
                "tenant": tenant,
                "winner": attempt is ticket.winner,
            }
            end = attempt.finished_at
            if end is None:
                end = attempt.cancelled_at
            if end is None:
                end = attempt.failed_at
            events.append(
                {
                    "ph": "s", "cat": "ticket", "name": flow_name,
                    "id": flow_id, "lane": "router", "ts": attempt.arrived_at,
                }
            )
            if attempt.dispatched_at is not None:
                events.append(
                    {
                        "ph": "X", "cat": "queue",
                        "name": "t%d/a%d queue" % (ticket_id, i),
                        "lane": lane, "ts": attempt.arrived_at,
                        "dur": attempt.dispatched_at - attempt.arrived_at,
                        "args": args,
                    }
                )
                serve_end = end if end is not None else max(
                    horizon, attempt.dispatched_at
                )
                events.append(
                    {
                        "ph": "X", "cat": "serve",
                        "name": "t%d/a%d serve" % (ticket_id, i),
                        "lane": lane, "ts": attempt.dispatched_at,
                        "dur": serve_end - attempt.dispatched_at,
                        "args": args,
                    }
                )
            if end is not None:
                events.append(
                    {
                        "ph": "f", "cat": "ticket", "name": flow_name,
                        "id": flow_id, "lane": lane, "ts": end, "bp": "e",
                    }
                )
        for at, kind, detail in ticket.failures:
            events.append(
                {
                    "ph": "i", "cat": "failure",
                    "name": "%s (%s)" % (kind, detail),
                    "lane": "router", "ts": at, "s": "t",
                }
            )
        return {
            "ticket_id": ticket_id,
            "tenant": tenant,
            "reason": reason,
            "events": events,
        }

    def _note_exemplar(self, ticket) -> None:
        ttft = ticket.winner.first_token_at - ticket.arrived_at
        bound = None
        for edge in self.buckets:
            if ttft <= edge:
                bound = edge
                break
        key = bound if bound is not None else float("inf")
        self.exemplars[key] = {
            "trace_id": ticket.ticket_id,
            "value": round(ttft, 9),
            "at": ticket.winner.first_token_at,
            "tenant": ticket.request.tenant,
        }

    # -- read side -----------------------------------------------------
    @property
    def kept_total(self) -> int:
        return sum(self.kept.values())

    def keep_ratio_fast(self) -> float:
        """Fraction of non-anomalous tickets whose trace was kept."""
        sampled = self.kept.get("sampled", 0)
        fast = sampled + self.dropped
        return sampled / fast if fast else 0.0

    def to_chrome_trace(self) -> str:
        """All kept traces merged into one Chrome trace-event JSON."""
        lanes = sorted(
            {e["lane"] for trace in self.traces for e in trace["events"]}
        )
        lane_ids = {lane: i + 1 for i, lane in enumerate(lanes)}
        events = [
            {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
             "args": {"name": lane}}
            for lane, tid in lane_ids.items()
        ]
        for trace in self.traces:
            for e in trace["events"]:
                event = dict(e)
                event["pid"] = 1
                event["tid"] = lane_ids[event.pop("lane")]
                event["ts"] = event["ts"] * 1e6
                if "dur" in event:
                    event["dur"] = max(0.001, event["dur"] * 1e6)
                events.append(event)
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})

    def to_dict(self) -> Dict:
        exemplars = {
            ("+Inf" if bound == float("inf") else _fmt(bound)): dict(info)
            for bound, info in self.exemplars.items()
        }
        return {
            "offered": self.offered,
            "kept": dict(sorted(self.kept.items())),
            "kept_total": self.kept_total,
            "dropped": self.dropped,
            "fast_keep_ratio": round(self.keep_ratio_fast(), 9),
            "retained_traces": len(self.traces),
            "exemplars": {k: exemplars[k] for k in sorted(exemplars)},
        }


class FleetTelemetry:
    """The assembled pipeline over one fleet router.

    Owns the store, the collector (with an ``up``-gauge pre-scrape hook
    per device), the tenant accountant and the tail sampler, and renders
    the "fleet top" operator snapshot.  Attaching sets
    ``router.telemetry``, which arms the router's terminal-ticket hooks.
    """

    def __init__(
        self,
        router,
        config: Optional[TelemetryConfig] = None,
        kv_bytes_per_token: Optional[Dict[str, int]] = None,
    ):
        self.router = router
        self.sim = router.sim
        self.config = config if config is not None else TelemetryConfig()
        self.store = TimeSeriesStore(self.config)
        self.collector = TelemetryCollector(
            self.sim, router.registry, self.store, self.config
        )
        self.collector.pre_scrape.append(self._refresh_up_gauges)
        self.accountant = TenantAccountant(kv_bytes_per_token)
        self.sampler = TailSampler(self.config)
        self.started = False
        #: host seconds spent inside the per-ticket hooks (accounting +
        #: tail-sampling); see :attr:`host_seconds`.
        self.hook_seconds = 0.0
        self._up_cache: Optional[list] = None
        router.telemetry = self

    # -- wiring --------------------------------------------------------
    def _refresh_up_gauges(self) -> None:
        """Recompute per-device up-ness from the live lifecycle at the
        scrape instant — a crashed device can never leave a stale UP.

        Runs on every scrape, so the gauge object, the canonical label
        keys, and each device's lifecycle are resolved once and cached
        (rebuilt if the device set changes).
        """
        cache = self._up_cache
        if cache is None or len(cache) != len(self.router.devices):
            gauge = self.router.registry.gauge(
                "fleet_device_up", "1 while the device lifecycle is UP, else 0."
            )
            cache = self._up_cache = [
                (
                    self.router.devices[device_id].lifecycle,
                    (("device", device_id),),
                    gauge._values,
                )
                for device_id in sorted(self.router.devices)
            ]
        for lifecycle, key, values in cache:
            values[key] = 1.0 if lifecycle.state == "up" else 0.0

    def start(self, until: float) -> "FleetTelemetry":
        if self.started:
            raise ConfigurationError("telemetry collector already started")
        self.started = True
        self.collector.start(until)
        return self

    # -- router hook surface -------------------------------------------
    def note_ticket_done(self, ticket) -> None:
        host_start = time.perf_counter()
        self.accountant.note_done(ticket)
        self.sampler.offer(ticket)
        self.hook_seconds += time.perf_counter() - host_start

    def note_ticket_failed(self, ticket) -> None:
        host_start = time.perf_counter()
        self.accountant.note_failed(ticket)
        self.sampler.offer(ticket)
        self.hook_seconds += time.perf_counter() - host_start

    def note_ticket_shed(self, ticket) -> None:
        host_start = time.perf_counter()
        self.accountant.note_shed(ticket)
        self.sampler.offer(ticket)
        self.hook_seconds += time.perf_counter() - host_start

    def note_budget_spend(self, tenant: str, device: Optional[str]) -> None:
        self.accountant.note_budget_spend(tenant, device)

    @property
    def host_seconds(self) -> float:
        """Host seconds the pipeline itself consumed: scrape loop plus
        the per-ticket accounting/sampling hooks.  The direct cost of
        observing — what the overhead budget is charged against."""
        return self.collector.host_seconds + self.hook_seconds

    # -- queries -------------------------------------------------------
    def fleet_rates(self, window: Optional[float] = None) -> Dict[str, float]:
        """Windowed fleet-level rates (req/s) from the store — what
        ``Fleet.health()`` reports instead of raw instant counters."""
        window = self.config.rate_window if window is None else window
        now = self.sim.now
        return {
            "window_s": window,
            "request_rate": round(self.store.rate("fleet_requests_total", window, now), 9),
            "served_rate": round(self.store.rate("serve_completed_total", window, now), 9),
            "shed_rate": round(self.store.rate("fleet_shed_total", window, now), 9),
            "hedge_rate": round(self.store.rate("fleet_hedges_total", window, now), 9),
            "failed_rate": round(self.store.rate("fleet_failed_total", window, now), 9),
        }

    def snapshot(self, window: Optional[float] = None, k: Optional[int] = None) -> Dict:
        """One JSON-stable operator snapshot: fleet rates, per-device
        state/throughput/tail latency, tenant top-k, sampler stats."""
        window = self.config.rate_window if window is None else window
        k = self.config.top_k if k is None else k
        now = self.sim.now
        store = self.store
        devices = {}
        for device_id in sorted(self.router.devices):
            device = self.router.devices[device_id]
            devices[device_id] = {
                "state": device.lifecycle.state,
                "up": store.latest("fleet_device_up", device=device_id),
                "outstanding": device.outstanding(),
                "served_rate": round(
                    store.rate("serve_completed_total", window, now, device=device_id), 9
                ),
                "ttft_p50": round(
                    store.quantile("serve_ttft_seconds", 0.50, window, now, device=device_id), 9
                ),
                "ttft_p99": round(
                    store.quantile("serve_ttft_seconds", 0.99, window, now, device=device_id), 9
                ),
                "sessions_resident": len(device.sessions),
            }
        top = {
            metric: [[tenant, value] for tenant, value in self.accountant.top_k(metric, k)]
            for metric in (
                "requests", "tokens_out", "tokens_in", "kv_byte_seconds",
                "residency_seconds", "hedge_spend",
            )
        }
        out = {
            "at": now,
            "window_s": window,
            "scrapes": self.collector.scrapes,
            "series": store.series_count(),
            "fleet": self.fleet_rates(window),
            "devices": devices,
            "tenants": {"top_k": top, "totals": self.accountant.to_dict()["totals"]},
            "sampler": self.sampler.to_dict(),
        }
        memory_view = getattr(self.router, "memory_view", None)
        if memory_view is not None:
            out["memory"] = memory_view.to_dict()
        return out

    def render_top(self, window: Optional[float] = None, k: Optional[int] = None) -> str:
        """The "fleet top" text table an operator would watch."""
        from ..analysis import render_table

        snap = self.snapshot(window, k)
        device_rows = [
            [
                device_id, info["state"],
                info["outstanding"],
                "%.3f" % info["served_rate"],
                "%.3f" % info["ttft_p50"],
                "%.3f" % info["ttft_p99"],
                info["sessions_resident"],
            ]
            for device_id, info in snap["devices"].items()
        ]
        blocks = [
            render_table(
                ["device", "state", "outst", "served/s", "ttft p50", "ttft p99", "sessions"],
                device_rows,
                title="fleet top @ %.1fs (window %.0fs, %d series, %d scrapes)"
                % (snap["at"], snap["window_s"], snap["series"], snap["scrapes"]),
            )
        ]
        tenant_rows = [
            [tenant, int(tokens),
             int(dict(snap["tenants"]["top_k"]["tokens_in"]).get(tenant, 0)),
             "%.0f" % dict(snap["tenants"]["top_k"]["kv_byte_seconds"]).get(tenant, 0.0),
             "%.1f" % dict(snap["tenants"]["top_k"]["residency_seconds"]).get(tenant, 0.0),
             int(dict(snap["tenants"]["top_k"]["hedge_spend"]).get(tenant, 0))]
            for tenant, tokens in snap["tenants"]["top_k"]["tokens_out"]
        ]
        blocks.append(
            render_table(
                ["tenant", "tok out", "tok in", "kvB*s", "res s", "hedges"],
                tenant_rows,
                title="top-%d tenants by tokens out" % (k or self.config.top_k),
            )
        )
        sampler = snap["sampler"]
        blocks.append(
            "traces: kept %d (%s) / dropped %d / fast keep %.3f"
            % (
                sampler["kept_total"],
                ", ".join("%s=%d" % kv for kv in sorted(sampler["kept"].items())),
                sampler["dropped"],
                sampler["fast_keep_ratio"],
            )
        )
        return "\n\n".join(blocks)
