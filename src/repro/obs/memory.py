"""The secure-memory & KV observatory: where do the secure bytes go?

The two top ROADMAP items — shared-prefix KV reuse and FlexServe-style
elastic secure-memory isolation — are both *memory* projects, but
nothing in the stack could say where secure bytes actually sit: TZASC
regions grow end-only and shrink silently at drain, the
:class:`~repro.llm.kv_cache.KVBlockPool` knows used/free counts but not
who holds which block or for how long.  This module closes that gap
with two observers:

* :class:`MemoryTimeline` — the full-fidelity, event-sourced record.
  Every TZASC region configure/resize/disable and every block-pool
  reserve/alloc/release/park/restore lands in a bounded ring with block
  ids and owner attribution (``tenant/rNNN``).  The timeline keeps its
  aggregates incrementally (so reads are O(pools)), integrates
  per-tenant secure **byte-seconds** and the **stranded** byte-seconds
  exactly at event granularity, refreshes ``mem_*`` gauges as a
  telemetry ``pre_scrape`` hook (which is how the series reach the
  :class:`~repro.obs.telemetry.TimeSeriesStore`), and exports a Chrome
  trace ``memory`` counter lane.

* :class:`FleetMemoryView` — the surrogate-tier rollup.  Fleet devices
  model timing analytically and have no real pool or TZASC, so the view
  derives the same accounting from what the surrogate *does* track:
  resident parameter bytes, the KV footprint of running requests, and
  the parked session cache — with a per-device backing high-water
  standing in for the end-only-growth configured size.

**Stranded capacity** is the headline series: ``configured - live``,
where *live* counts resident parameter bytes, activation scratch and KV
blocks in use (active + parked).  It is exactly the capacity an elastic
isolation mechanism would hand back to the REE — measured here before
anyone builds the mechanism.

Instrumentation contract (same as :data:`~repro.sim.trace.NULL_TRACER`):
every hook site in the hot path is an attribute defaulting to ``None``
guarded by ``if timeline is not None``, so an un-attached run allocates
nothing from this module (tracemalloc-proven in
``tests/obs/test_memory_timeline.py``).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from .alerts import BurnRateRule, ThresholdRule
from .attach import iter_tas

__all__ = [
    "MemoryTimeline",
    "FleetMemoryView",
    "memory_pressure_rules",
]

#: tid of the ``memory`` counter lane in exported Chrome traces (the
#: span lanes of :class:`~repro.sim.trace.Tracer` start at 1).
_MEM_TID = 90


class _PoolStats:
    """Incrementally-maintained per-pool accounting (one per KVBlockPool)."""

    __slots__ = (
        "pool", "name", "slot", "block_bytes", "fixed_bytes", "total_blocks",
        "active", "parked", "cached", "refs", "reserved", "allocs",
        "releases", "parks", "restores", "refs_taken", "cows", "caches",
        "uncaches",
    )

    def __init__(self, pool, name: str, slot: Optional[int], fixed_bytes: int):
        self.pool = pool
        self.name = name
        self.slot = slot
        self.block_bytes = pool.block_bytes
        self.fixed_bytes = fixed_bytes
        self.total_blocks = pool.total_blocks
        # Pick up the pool's current state so mid-run attach balances.
        self.parked = pool.parked_blocks
        self.active = pool.active_blocks
        self.cached = pool.cached_blocks
        self.refs = pool.total_refs
        self.reserved = pool.reserved
        self.allocs = 0
        self.releases = 0
        self.parks = 0
        self.restores = 0
        self.refs_taken = 0
        self.cows = 0
        self.caches = 0
        self.uncaches = 0


def _tenant_of(owner: str) -> str:
    """``tenant/rNNN`` owner strings attribute to their tenant; bare
    request owners (no tenant context) pool under ``-``."""
    if not owner:
        return "-"
    head, sep, _rest = owner.partition("/")
    return head if sep else "-"


class MemoryTimeline:
    """Event-sourced secure-memory record for one instrumented stack.

    Attach with :meth:`attach` (sets the ``timeline`` hook attribute on
    the TZASC, the TAs' secure regions and their block pools), then
    optionally :meth:`install` on a telemetry collector to derive the
    per-scrape ``mem_*`` series.
    """

    SCHEMA = "repro.obs.memory/1"

    def __init__(self, sim, capacity: int = 8192):
        self.sim = sim
        self.capacity = capacity
        #: bounded event ring: (at, kind, op, source, amount, owner, extra)
        self._events: deque = deque(maxlen=capacity)
        self.recorded = 0
        # -- region state ------------------------------------------------
        self._slot_bytes: Dict[int, int] = {}
        self._slot_names: Dict[int, str] = {}
        self._param_slots: set = set()
        self.configured_bytes = 0
        # -- pool state --------------------------------------------------
        self._pools: Dict[int, _PoolStats] = {}
        # -- integrals ---------------------------------------------------
        #: tenant -> [held_bytes_now, byte_seconds_integral]
        self._tenants: Dict[str, List[float]] = {}
        self.stranded_byte_seconds = 0.0
        self._last_t = sim.now
        #: host seconds spent in the pre-scrape gauge refresh (the
        #: timeline's self-attributed sampling cost).
        self.host_seconds = 0.0
        self._gauges = None
        self._attached: List[object] = []

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(self, target) -> "MemoryTimeline":
        """Wire the timeline hooks into ``target`` (a TZLLM-like system)."""
        stack = getattr(target, "stack", target)
        board = getattr(stack, "board", None)
        tzasc = getattr(board, "tzasc", None)
        if tzasc is not None:
            tzasc.timeline = self
            self._attached.append(tzasc)
            for slot, region in getattr(tzasc, "_regions", {}).items():
                self._slot_bytes[slot] = region.range.size
        for ta in iter_tas(target):
            for region, is_params in (
                (getattr(ta, "params_region", None), True),
                (getattr(ta, "data_region", None), False),
            ):
                if region is None:
                    continue
                region.timeline = self
                self._attached.append(region)
                self._slot_names[region.tzasc_slot] = region.name
                if is_params:
                    self._param_slots.add(region.tzasc_slot)
            engine = getattr(ta, "batch_engine", None)
            if engine is not None:
                data_region = getattr(ta, "data_region", None)
                self.register_pool(
                    engine.pool,
                    name=ta.model.model_id,
                    slot=None if data_region is None else data_region.tzasc_slot,
                    fixed_bytes=engine.fixed_bytes,
                )
        self.configured_bytes = sum(self._slot_bytes.values())
        self._last_t = self.sim.now
        return self

    def detach(self) -> None:
        for component in self._attached:
            component.timeline = None
        self._attached = []

    def register_pool(
        self, pool, name: str, slot: Optional[int] = None, fixed_bytes: int = 0
    ) -> None:
        """Track ``pool`` under ``name`` (its model id), optionally bound
        to the TZASC slot whose bytes back it."""
        pool.timeline = self
        self._pools[id(pool)] = _PoolStats(pool, name, slot, fixed_bytes)
        self._attached.append(pool)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def kv_live_bytes(self) -> int:
        return sum(s.active * s.block_bytes for s in self._pools.values())

    @property
    def kv_parked_bytes(self) -> int:
        return sum(s.parked * s.block_bytes for s in self._pools.values())

    @property
    def kv_reserved_bytes(self) -> int:
        return sum(s.reserved * s.block_bytes for s in self._pools.values())

    @property
    def kv_cached_bytes(self) -> int:
        """Unreferenced blocks the prefix tree keeps resident."""
        return sum(s.cached * s.block_bytes for s in self._pools.values())

    @property
    def shared_bytes(self) -> int:
        """Block allocations avoided by sharing right now: holder
        references in excess of the physical blocks backing them."""
        return sum(
            max(0, s.refs - s.active - s.parked) * s.block_bytes
            for s in self._pools.values()
        )

    @property
    def live_bytes(self) -> int:
        """Bytes whose content is actually in use: resident parameters,
        activation scratch (while its slot is configured), and KV blocks
        holding content (active, parked, or cached for reuse)."""
        live = 0
        for slot in self._param_slots:
            live += self._slot_bytes.get(slot, 0)
        for s in self._pools.values():
            live += (s.active + s.parked + s.cached) * s.block_bytes
            if s.slot is None or self._slot_bytes.get(s.slot, 0) > 0:
                live += s.fixed_bytes
        return live

    @property
    def stranded_bytes(self) -> int:
        """Configured minus live: what elastic isolation would return."""
        return max(0, self.configured_bytes - self.live_bytes)

    @property
    def stranded_ratio(self) -> float:
        configured = self.configured_bytes
        return self.stranded_bytes / configured if configured else 0.0

    @property
    def events(self) -> Tuple[tuple, ...]:
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def tenant_byte_seconds(self) -> Dict[str, float]:
        self._advance(self.sim.now)
        return {t: cell[1] for t, cell in sorted(self._tenants.items())}

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Bring the byte-second integrals forward to ``now`` using the
        state that held since the last event (exact: state is piecewise
        constant between events)."""
        dt = now - self._last_t
        if dt > 0.0:
            self.stranded_byte_seconds += self.stranded_bytes * dt
            for cell in self._tenants.values():
                if cell[0]:
                    cell[1] += cell[0] * dt
            self._last_t = now

    def _tenant_add(self, owner: str, delta: float) -> None:
        tenant = _tenant_of(owner)
        cell = self._tenants.get(tenant)
        if cell is None:
            cell = self._tenants[tenant] = [0.0, 0.0]
        cell[0] += delta
        if cell[0] < 0.0:
            cell[0] = 0.0

    def _push(self, at, kind, op, source, amount, owner, extra) -> None:
        self.recorded += 1
        self._events.append((at, kind, op, source, amount, owner, extra))

    # ------------------------------------------------------------------
    # hook surface: regions
    # ------------------------------------------------------------------
    def note_region(self, op: str, slot: int, old_bytes: int, new_bytes: int) -> None:
        """TZASC slot reprogrammed (configure / resize / disable)."""
        now = self.sim.now
        self._advance(now)
        if op == "disable":
            self._slot_bytes.pop(slot, None)
        else:
            self._slot_bytes[slot] = new_bytes
        self.configured_bytes = sum(self._slot_bytes.values())
        source = self._slot_names.get(slot, "slot%d" % slot)
        self._push(now, "region", op, source, new_bytes, "", old_bytes)

    def note_region_named(self, name: str, slot: int, op: str, protected: int) -> None:
        """A :class:`~repro.tee.secure_memory.SecureRegion` changed its
        protected extent — name attribution on top of the raw slot
        events (and the slot-name mapping for late-created regions)."""
        self._slot_names[slot] = name
        self._push(self.sim.now, "region", op, name, protected, "", slot)

    # ------------------------------------------------------------------
    # hook surface: KV block pool
    # ------------------------------------------------------------------
    def note_reserve(self, pool, blocks: int, owner: str) -> None:
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.reserved += blocks
        self._push(now, "kv", "reserve", s.name, blocks, owner, ())

    def note_cancel(self, pool, blocks: int, owner: str) -> None:
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.reserved -= blocks  # strict mirror: the pool raised on underflow
        self._push(now, "kv", "cancel", s.name, blocks, owner, ())

    def note_alloc(self, pool, block: int, owner: str, from_reservation: bool) -> None:
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.active += 1
        s.refs += 1
        s.allocs += 1
        if from_reservation:
            s.reserved -= 1
        self._tenant_add(owner, s.block_bytes)
        self._push(now, "kv", "alloc", s.name, block, owner, 1 if from_reservation else 0)

    def note_release(self, pool, block: int, owner: str, category: str) -> None:
        """The block actually freed; ``category`` is the accounting
        bucket it left (active / parked / cached)."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.releases += 1
        if category == "parked":
            s.parked -= 1
        elif category == "cached":
            s.cached -= 1
        else:
            s.active -= 1
        if category != "cached":
            # The freeing holder carried the last reference; cached
            # blocks freed by eviction have no holder to debit.
            s.refs -= 1
            self._tenant_add(owner, -s.block_bytes)
        self._push(now, "kv", "release", s.name, block, owner, category)

    def note_ref(self, pool, block: int, owner: str, from_category: str) -> None:
        """A sharing hit: one more live reference on a held block."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.refs += 1
        s.refs_taken += 1
        if from_category == "parked":
            s.parked -= 1
            s.active += 1
        elif from_category == "cached":
            s.cached -= 1
            s.active += 1
        self._tenant_add(owner, s.block_bytes)
        self._push(now, "kv", "ref", s.name, block, owner, from_category)

    def note_unref(
        self, pool, block: int, owner: str, from_category: str, to_category: str
    ) -> None:
        """A reference dropped without freeing the block (other holders
        or cached residency keep it)."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.refs -= 1
        if from_category != to_category:
            if from_category == "active":
                s.active -= 1
            elif from_category == "parked":
                s.parked -= 1
            if to_category == "parked":
                s.parked += 1
            elif to_category == "cached":
                s.cached += 1
        self._tenant_add(owner, -s.block_bytes)
        self._push(
            now, "kv", "unref", s.name, block, owner, (from_category, to_category)
        )

    def note_cow(self, pool, src: int, dst: int, owner: str, tokens: int) -> None:
        """Copy-on-write divergence (dst's alloc was noted separately)."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.cows += 1
        self._push(now, "kv", "cow", s.name, tokens, owner, (src, dst))

    def note_cache(self, pool, block: int, owner: str) -> None:
        """The prefix tree published residency on a (held) block."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.caches += 1
        self._push(now, "kv", "cache", s.name, 1, owner, block)

    def note_uncache(self, pool, block: int, owner: str) -> None:
        """Residency dropped (category moves arrive as release/unref)."""
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.uncaches += 1
        self._push(now, "kv", "uncache", s.name, 1, owner, block)

    def note_park(self, pool, block_ids: tuple, tokens: int, owner: str, moved: int) -> None:
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        # ``moved`` counts blocks whose accounting category actually
        # shifted — under sharing a block stays active while any other
        # live sequence still references it.
        s.active -= moved
        s.parked += moved
        s.parks += 1
        self._push(now, "kv", "park", s.name, moved, owner, block_ids)

    def note_restore(self, pool, block_ids: tuple, owner: str, moved: int) -> None:
        now = self.sim.now
        self._advance(now)
        s = self._pools[id(pool)]
        s.parked -= moved
        s.active += moved
        s.restores += 1
        self._push(now, "kv", "restore", s.name, moved, owner, block_ids)

    # ------------------------------------------------------------------
    # telemetry derivation (pre-scrape hook)
    # ------------------------------------------------------------------
    def install(self, collector) -> "MemoryTimeline":
        """Derive the ``mem_*`` series on ``collector``'s registry every
        scrape (and therefore into its :class:`TimeSeriesStore`)."""
        registry = collector.registry
        self._gauges = {
            "configured": registry.gauge(
                "mem_secure_configured_bytes", "Bytes behind secure TZASC regions"
            ),
            "kv_live": registry.gauge(
                "mem_kv_live_bytes", "KV bytes held by active sequences"
            ),
            "kv_parked": registry.gauge(
                "mem_kv_parked_bytes", "KV bytes held by parked (preempted) sequences"
            ),
            "kv_reserved": registry.gauge(
                "mem_kv_reserved_bytes", "KV bytes promised to admitted requests"
            ),
            "kv_cached": registry.gauge(
                "mem_kv_cached_bytes",
                "KV bytes kept resident by the prefix tree for reuse",
            ),
            "shared": registry.gauge(
                "mem_shared_bytes",
                "KV bytes saved right now by shared-prefix block reuse",
            ),
            "stranded": registry.gauge(
                "mem_stranded_bytes",
                "Configured minus live: capacity elastic isolation would free",
            ),
            "stranded_ratio": registry.gauge(
                "mem_stranded_ratio", "Stranded bytes over configured bytes"
            ),
            "occupancy": registry.gauge(
                "mem_pool_occupancy", "Block-pool blocks in use over total"
            ),
            "high_water": registry.gauge(
                "mem_pool_high_water_blocks",
                "Backing high-water mark of the block pool (end-only growth)",
            ),
            "stranded_bs": registry.counter(
                "mem_stranded_byte_seconds_total",
                "Time integral of stranded secure bytes",
            ),
            "tenant_bs": registry.counter(
                "mem_tenant_byte_seconds_total",
                "Per-tenant time integral of held secure KV bytes",
            ),
        }
        collector.pre_scrape.append(self._refresh_gauges)
        return self

    def _refresh_gauges(self) -> None:
        start = time.perf_counter()
        self._advance(self.sim.now)
        g = self._gauges
        g["configured"].set(float(self.configured_bytes))
        g["kv_live"].set(float(self.kv_live_bytes))
        g["kv_parked"].set(float(self.kv_parked_bytes))
        g["kv_reserved"].set(float(self.kv_reserved_bytes))
        g["kv_cached"].set(float(self.kv_cached_bytes))
        g["shared"].set(float(self.shared_bytes))
        g["stranded"].set(float(self.stranded_bytes))
        g["stranded_ratio"].set(self.stranded_ratio)
        for s in self._pools.values():
            used = s.active + s.parked
            g["occupancy"].set(
                used / s.total_blocks if s.total_blocks else 0.0, pool=s.name
            )
            g["high_water"].set(float(s.pool.backing_blocks), pool=s.name)
        g["stranded_bs"]._values[()] = self.stranded_byte_seconds
        tenant_values = g["tenant_bs"]._values
        for tenant, cell in self._tenants.items():
            tenant_values[(("tenant", tenant),)] = cell[1]
        self.host_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The memory-timeline artifact (validated in CI)."""
        self._advance(self.sim.now)
        events = [
            {
                "at": at,
                "kind": kind,
                "op": op,
                "source": source,
                "amount": amount,
                "owner": owner,
                "extra": list(extra) if isinstance(extra, tuple) else extra,
            }
            for at, kind, op, source, amount, owner, extra in self._events
        ]
        pools = {}
        for s in self._pools.values():
            used = s.active + s.parked + s.cached
            pools[s.name] = {
                "total_blocks": s.total_blocks,
                "block_bytes": s.block_bytes,
                "fixed_bytes": s.fixed_bytes,
                "active_blocks": s.active,
                "parked_blocks": s.parked,
                "cached_blocks": s.cached,
                "refs": s.refs,
                "shared_saved_blocks": max(0, s.refs - s.active - s.parked),
                "reserved_blocks": s.reserved,
                "free_blocks": s.total_blocks - used,
                "high_water_blocks": s.pool.backing_blocks,
                "occupancy": used / s.total_blocks if s.total_blocks else 0.0,
                "allocs": s.allocs,
                "releases": s.releases,
                "parks": s.parks,
                "restores": s.restores,
                "refs_taken": s.refs_taken,
                "cows": s.cows,
                "caches": s.caches,
                "uncaches": s.uncaches,
            }
        regions = {
            self._slot_names.get(slot, "slot%d" % slot): size
            for slot, size in sorted(self._slot_bytes.items())
        }
        return {
            "schema": self.SCHEMA,
            "events": events,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "regions": regions,
            "pools": pools,
            "totals": {
                "configured_bytes": self.configured_bytes,
                "kv_live_bytes": self.kv_live_bytes,
                "kv_parked_bytes": self.kv_parked_bytes,
                "kv_reserved_bytes": self.kv_reserved_bytes,
                "kv_cached_bytes": self.kv_cached_bytes,
                "shared_bytes": self.shared_bytes,
                "live_bytes": self.live_bytes,
                "stranded_bytes": self.stranded_bytes,
                "stranded_byte_seconds": self.stranded_byte_seconds,
            },
            "tenants": {t: cell[1] for t, cell in sorted(self._tenants.items())},
        }

    def to_chrome_trace(self) -> str:
        """A Chrome trace with a ``memory`` counter lane ("C" events):
        load in chrome://tracing or Perfetto alongside the span trace.

        Replayed from the event ring; if the ring overflowed
        (``dropped > 0``) the replayed baseline starts mid-history, so
        absolute values are exact only from the oldest retained event.
        """
        events: List[dict] = [
            {
                "ph": "M", "pid": 1, "tid": _MEM_TID,
                "name": "thread_name", "args": {"name": "memory"},
            },
            {
                "ph": "M", "pid": 1, "tid": _MEM_TID,
                "name": "thread_sort_index", "args": {"sort_index": _MEM_TID},
            },
        ]
        param_names = {
            self._slot_names[slot]
            for slot in self._param_slots
            if slot in self._slot_names
        }
        stats_by_name = {s.name: s for s in self._pools.values()}
        region_bytes: Dict[str, int] = {}
        # name -> [active, parked, reserved, cached, refs]
        pool_state: Dict[str, List[int]] = {}
        category_index = {"active": 0, "parked": 1, "cached": 3}

        def counters() -> dict:
            configured = sum(region_bytes.values())
            kv_live = kv_parked = kv_reserved = shared = live = 0
            for name, (active, parked, reserved, cached, refs) in pool_state.items():
                s = stats_by_name[name]
                kv_live += active * s.block_bytes
                kv_parked += parked * s.block_bytes
                kv_reserved += reserved * s.block_bytes
                shared += max(0, refs - active - parked) * s.block_bytes
                live += (active + parked + cached) * s.block_bytes + s.fixed_bytes
            for name in param_names:
                live += region_bytes.get(name, 0)
            return {
                "configured": configured,
                "kv_live": kv_live,
                "kv_parked": kv_parked,
                "kv_reserved": kv_reserved,
                "shared": shared,
                "stranded": max(0, configured - live),
            }

        for at, kind, op, source, amount, owner, extra in self._events:
            if kind == "region":
                if op == "disable":
                    region_bytes.pop(source, None)
                elif op in ("configure", "resize"):
                    region_bytes[source] = amount
                else:
                    continue  # named protect/shrink shadow the slot events
            else:
                state = pool_state.setdefault(source, [0, 0, 0, 0, 0])
                if op == "reserve":
                    state[2] += amount
                elif op == "cancel":
                    state[2] = max(0, state[2] - amount)
                elif op == "alloc":
                    state[0] += 1
                    state[4] += 1
                    if extra:
                        state[2] = max(0, state[2] - 1)
                elif op == "release":
                    state[category_index.get(extra, 0)] -= 1
                    if extra != "cached":
                        state[4] -= 1
                elif op == "ref":
                    state[4] += 1
                    came_from = category_index.get(extra, 0)
                    if came_from != 0:
                        state[came_from] -= 1
                        state[0] += 1
                elif op == "unref":
                    state[4] -= 1
                    came_from = category_index.get(extra[0], 0)
                    went_to = category_index.get(extra[1], 0)
                    if came_from != went_to:
                        state[came_from] -= 1
                        state[went_to] += 1
                elif op == "park":
                    state[0] -= amount
                    state[1] += amount
                elif op == "restore":
                    state[1] -= amount
                    state[0] += amount
                # cow/cache/uncache: informational; category moves for
                # those transitions arrive as alloc/release/ref/unref.
            events.append(
                {
                    "ph": "C", "pid": 1, "tid": _MEM_TID,
                    "name": "secure-memory",
                    "ts": at * 1e6,
                    "args": counters(),
                }
            )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


# ----------------------------------------------------------------------
# pressure alerting
# ----------------------------------------------------------------------
def memory_pressure_rules(
    stranded_ratio: float = 0.5,
    for_duration: float = 60.0,
    objective: float = 0.95,
    long_window: float = 300.0,
    short_window: float = 30.0,
):
    """The two memory-pressure alerts the observatory feeds.

    * ``mem-stranded-ratio`` — more than ``stranded_ratio`` of the
      configured secure bytes held no live content for ``for_duration``
      seconds: the REE is being starved for nothing.
    * ``kv-admission-burn`` — KV-admission head-of-line blocks are
      burning the admission error budget (``1 - objective``) faster
      than sustainable on both windows: the pool is undersized (or a
      tenant is hoarding blocks).
    """
    return [
        ThresholdRule(
            "mem-stranded-ratio",
            "mem_stranded_ratio",
            ">=",
            stranded_ratio,
            for_duration=for_duration,
        ),
        BurnRateRule(
            "kv-admission-burn",
            total_metric="serve_admitted_total",
            bad_metric="serve_kv_admission_blocked_total",
            objective=objective,
            long_window=long_window,
            short_window=short_window,
        ),
    ]


# ----------------------------------------------------------------------
# fleet rollup
# ----------------------------------------------------------------------
class FleetMemoryView:
    """Per-scrape secure-memory rollup over a fleet of surrogate devices.

    Surrogate devices carry no real pool or TZASC, so the view derives
    the same series the single-stack timeline records from the state the
    surrogate does track:

    * **configured** — resident parameter bytes plus the device's KV
      backing *high-water* (end-only growth: the secure region only
      shrinks when the device's secure world drains or dies);
    * **live** — KV footprint of the requests running on the gateway's
      lanes, priced like the tenant accountant at
      ``(prompt + output) x kv_bytes_per_token``;
    * **parked** — the session cache's resident KV (parked between
      turns, waiting for the next request of a sticky session);
    * **shared** — the resident shared-prefix KV (the device's prefix
      LRU), the bytes cross-request block reuse keeps warm;
    * **stranded** — ``configured - params - live - parked - shared``:
      the high-water slack an elastic mechanism would return to the REE.

    Arm it as a collector ``pre_scrape`` hook (``Fleet.
    start_memory_view()``), after which every refresh also advances the
    fleet-wide stranded byte-second integral and the per-tenant secure
    byte-second meters.
    """

    def __init__(self, router, models, registry=None):
        self.router = router
        self.sim = router.sim
        self.registry = registry if registry is not None else router.registry
        self.kv_rate = {m.model_id: m.kv_bytes_per_token() for m in models}
        self.param_bytes = {m.model_id: m.param_bytes for m in models}
        self._default_rate = (
            sum(self.kv_rate.values()) / len(self.kv_rate) if self.kv_rate else 0.0
        )
        self.high_water: Dict[str, float] = {}
        self.stranded_byte_seconds = 0.0
        self.tenant_byte_seconds: Dict[str, float] = {}
        self.refreshes = 0
        self.host_seconds = 0.0
        self._last_t: Optional[float] = None
        #: device -> (configured, params, live, parked, shared, stranded)
        #: at the last refresh (what render_memtop and to_dict read).
        self.last: Dict[str, Tuple[float, float, float, float, float, float]] = {}
        reg = self.registry
        self._g_configured = reg.gauge(
            "fleet_mem_configured_bytes", "Derived secure bytes configured per device"
        )
        self._g_live = reg.gauge(
            "fleet_mem_kv_live_bytes", "KV bytes of requests running per device"
        )
        self._g_parked = reg.gauge(
            "fleet_mem_kv_parked_bytes", "KV bytes parked in session caches per device"
        )
        self._g_shared = reg.gauge(
            "fleet_mem_shared_bytes",
            "Resident shared-prefix KV bytes per device",
        )
        self._g_stranded = reg.gauge(
            "fleet_mem_stranded_bytes", "Stranded secure bytes per device"
        )
        self._g_ratio = reg.gauge(
            "fleet_mem_stranded_ratio", "Fleet-wide stranded over configured bytes"
        )
        self._c_stranded_bs = reg.counter(
            "fleet_mem_stranded_byte_seconds_total",
            "Time integral of fleet-wide stranded secure bytes",
        )
        self._c_tenant_bs = reg.counter(
            "fleet_mem_tenant_byte_seconds_total",
            "Per-tenant time integral of resident secure KV bytes",
        )

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """One rollup pass (runs as a collector ``pre_scrape`` hook, so
        its cost lands inside the collector's self-attributed host time
        as well as in :attr:`host_seconds`)."""
        start = time.perf_counter()
        now = self.sim.now
        dt = 0.0 if self._last_t is None else now - self._last_t
        tenant_now: Dict[str, float] = {}
        fleet_configured = fleet_live = fleet_parked = fleet_stranded = 0.0
        g_configured = self._g_configured._values
        g_live = self._g_live._values
        g_parked = self._g_parked._values
        g_shared = self._g_shared._values
        g_stranded = self._g_stranded._values
        for device_id, device in self.router.devices.items():
            params = 0.0
            for ta in device.system.tas.values():
                if ta.resident:
                    params += self.param_bytes.get(
                        ta.model.model_id, ta.model.param_bytes
                    )
            live = 0.0
            for lane in device.gateway.lanes.values():
                rate = self.kv_rate.get(lane.model_id, self._default_rate)
                for request in lane.running:
                    held = (request.prompt_tokens + request.output_tokens) * rate
                    live += held
                    tenant_now[request.tenant] = (
                        tenant_now.get(request.tenant, 0.0) + held
                    )
            parked = 0.0
            session_model = device.session_model
            for session_id, tokens in device.sessions.items():
                rate = self.kv_rate.get(
                    session_model.get(session_id, ""), self._default_rate
                )
                held = tokens * rate
                parked += held
                tenant = session_id.partition("/")[0]
                tenant_now[tenant] = tenant_now.get(tenant, 0.0) + held
            shared = 0.0
            for prefix_id, tokens in device.prefixes.items():
                held = tokens * self._default_rate
                shared += held
                tenant = prefix_id.partition("/")[0]
                tenant_now[tenant] = tenant_now.get(tenant, 0.0) + held
            high = self.high_water.get(device_id, 0.0)
            if device.lifecycle.state == "down":
                high = 0.0  # the secure world died; its backing is gone
            high = max(high, live + parked + shared)
            self.high_water[device_id] = high
            configured = params + high
            stranded = max(0.0, high - live - parked - shared)
            self.last[device_id] = (configured, params, live, parked, shared, stranded)
            key = (("device", device_id),)
            g_configured[key] = configured
            g_live[key] = live
            g_parked[key] = parked
            g_shared[key] = shared
            g_stranded[key] = stranded
            fleet_configured += configured
            fleet_live += live
            fleet_parked += parked
            fleet_stranded += stranded
        if dt > 0.0:
            self.stranded_byte_seconds += fleet_stranded * dt
            integrals = self.tenant_byte_seconds
            for tenant, held in tenant_now.items():
                integrals[tenant] = integrals.get(tenant, 0.0) + held * dt
        self._last_t = now
        self._g_ratio._values[()] = (
            fleet_stranded / fleet_configured if fleet_configured else 0.0
        )
        self._c_stranded_bs._values[()] = self.stranded_byte_seconds
        tenant_values = self._c_tenant_bs._values
        for tenant, total in self.tenant_byte_seconds.items():
            tenant_values[(("tenant", tenant),)] = total
        self.refreshes += 1
        self.host_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    def render_memtop(self, top_k: int = 5) -> str:
        """The ``mem top`` operator table: per-device secure-memory
        breakdown plus the fleet stranded integral and the tenants
        paying the most byte-seconds."""
        from ..analysis import render_table

        mib = 1024.0 * 1024.0
        rows = []
        totals = [0.0] * 6
        for device_id in sorted(self.last):
            configured, params, live, parked, shared, stranded = self.last[device_id]
            for i, v in enumerate((configured, params, live, parked, shared, stranded)):
                totals[i] += v
            rows.append(
                [
                    device_id,
                    "%.1f" % (configured / mib),
                    "%.1f" % (params / mib),
                    "%.1f" % (live / mib),
                    "%.1f" % (parked / mib),
                    "%.1f" % (shared / mib),
                    "%.1f" % (stranded / mib),
                    "%.0f%%" % (100.0 * stranded / configured if configured else 0.0),
                ]
            )
        rows.append(
            [
                "fleet",
                "%.1f" % (totals[0] / mib),
                "%.1f" % (totals[1] / mib),
                "%.1f" % (totals[2] / mib),
                "%.1f" % (totals[3] / mib),
                "%.1f" % (totals[4] / mib),
                "%.1f" % (totals[5] / mib),
                "%.0f%%" % (100.0 * totals[5] / totals[0] if totals[0] else 0.0),
            ]
        )
        table = render_table(
            ["device", "cfg MiB", "params", "kv live", "parked", "shared",
             "stranded", "str%"],
            rows,
            title="mem top @ t=%.0fs (stranded integral %.1f GiB*s)"
            % (self.sim.now, self.stranded_byte_seconds / (1024.0 ** 3)),
        )
        top = sorted(
            self.tenant_byte_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_k]
        if top:
            table += "\ntenant byte-seconds: " + ", ".join(
                "%s=%.1f MiB*s" % (tenant, bs / mib) for tenant, bs in top
            )
        return table

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.memory.fleet/1",
            "devices": {
                device_id: {
                    "configured_bytes": configured,
                    "param_bytes": params,
                    "kv_live_bytes": live,
                    "kv_parked_bytes": parked,
                    "kv_shared_bytes": shared,
                    "stranded_bytes": stranded,
                    "high_water_bytes": self.high_water.get(device_id, 0.0),
                }
                for device_id, (configured, params, live, parked, shared, stranded)
                in sorted(self.last.items())
            },
            "stranded_byte_seconds": self.stranded_byte_seconds,
            "tenant_byte_seconds": dict(sorted(self.tenant_byte_seconds.items())),
            "refreshes": self.refreshes,
        }
