"""Labeled metric instruments and the registry that owns them.

The design follows the Prometheus client-library model, shrunk to what a
deterministic simulation needs:

* Instruments are **created once** through the registry
  (:meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram``) and are
  get-or-create: asking twice for the same name returns the same object,
  asking for the same name with a different type raises
  :class:`~repro.errors.ConfigurationError`.
* Every instrument supports **labels** passed as keyword arguments
  (``counter.inc(func="tee.llm.infer")``).  A label set addresses an
  independent time series inside the instrument.  ``class`` is a Python
  keyword, so call sites pass it as ``inc(**{"class": "interactive"})``.
* Export is deterministic: :meth:`MetricsRegistry.render` produces
  Prometheus text exposition with instruments and label sets sorted, and
  :meth:`MetricsRegistry.to_dict` produces a JSON-stable structure
  (``json.dumps(reg.to_dict(), sort_keys=True)`` is byte-identical for
  identical runs).

No wall-clock time is read anywhere; values only change when the
simulated system calls in.
"""

import re

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ChildRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Default bucket boundaries (seconds) tuned for simulated latencies that
# span microsecond SMC round-trips up to multi-second model loads.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _check_name(name):
    if not _NAME_RE.match(name or ""):
        raise ConfigurationError("invalid metric name %r" % (name,))


def _label_key(labels):
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ConfigurationError("invalid label name %r" % (key,))
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key):
    if not key:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in key)


def _fmt(value):
    """Render a float the way Prometheus text exposition expects."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Instrument:
    """Base class: one named instrument holding one series per label set."""

    kind = "untyped"

    __slots__ = ("name", "help", "_values")

    def __init__(self, name, help=""):
        _check_name(name)
        self.name = name
        self.help = help
        self._values = {}

    def value(self, **labels):
        """Current value for a label set (0.0 when never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        """All (label_key, value) pairs, sorted for determinism.

        Sorted on the label key alone: histogram values are dicts, which
        must never participate in the comparison, and label keys are
        already canonical (``_label_key`` sorts label names), so the
        order is independent of label insertion order at the call site.
        """
        return sorted(self._values.items(), key=lambda kv: kv[0])

    def labeled(self, label_name):
        """Map from one label's value to the series value.

        Convenience for rebuilding ``{"queue-full": 2}``-style dicts from
        a counter labeled by reason: ``counter.labeled("reason")``.
        """
        out = {}
        for key, value in self._values.items():
            for k, v in key:
                if k == label_name:
                    out[v] = out.get(v, 0.0) + value
        return out


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, retries)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount=1, **labels):
        """Add ``amount`` (must be >= 0) to the label set's series."""
        if amount < 0:
            raise ConfigurationError(
                "counter %s cannot decrease (inc %r)" % (self.name, amount)
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, open breakers)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value, **labels):
        """Set the label set's series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount=1, **labels):
        """Add ``amount`` (may be negative) to the label set's series."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount=1, **labels):
        """Subtract ``amount`` from the label set's series."""
        self.inc(-amount, **labels)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError("histogram %s needs >= 1 bucket" % name)
        self.buckets = bounds

    def observe(self, value, **labels):
        """Record one observation into the label set's series."""
        key = _label_key(labels)
        series = self._values.get(key)
        if series is None:
            series = {"buckets": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._values[key] = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["buckets"][i] += 1
        series["sum"] += value
        series["count"] += 1

    def value(self, **labels):
        """Observation count for a label set (0 when never touched)."""
        series = self._values.get(_label_key(labels))
        return 0 if series is None else series["count"]

    def sum(self, **labels):
        """Sum of observations for a label set."""
        series = self._values.get(_label_key(labels))
        return 0.0 if series is None else series["sum"]


class _BoundInstrument:
    """An instrument view that injects constant labels on every call.

    Writes (``inc``/``set``/``dec``/``observe``) merge the constant
    labels into the call-site labels; reads (``value``/``sum``/
    ``samples``/``labeled``) address only the series carrying the
    constant labels — so a per-device view never counts another device's
    series.  The underlying series live in the *parent* instrument,
    which keeps one ``render()``/``to_dict()`` export covering every
    device with the registry's usual deterministic ordering (label keys
    are canonically sorted, so ``device`` interleaves alphabetically no
    matter which device wrote first).
    """

    __slots__ = ("_inst", "_constant")

    def __init__(self, inst, constant):
        self._inst = inst
        self._constant = dict(constant)

    # -- passthrough identity ------------------------------------------
    @property
    def name(self):
        return self._inst.name

    @property
    def kind(self):
        return self._inst.kind

    @property
    def help(self):
        return self._inst.help

    @property
    def buckets(self):
        return self._inst.buckets  # histograms only; AttributeError otherwise

    def _merge(self, labels):
        for key in labels:
            if key in self._constant:
                raise ConfigurationError(
                    "label %r on %s is constant in this child registry"
                    % (key, self._inst.name)
                )
        merged = dict(self._constant)
        merged.update(labels)
        return merged

    # -- writes --------------------------------------------------------
    def inc(self, amount=1, **labels):
        return self._inst.inc(amount, **self._merge(labels))

    def set(self, value, **labels):
        return self._inst.set(value, **self._merge(labels))

    def dec(self, amount=1, **labels):
        return self._inst.dec(amount, **self._merge(labels))

    def observe(self, value, **labels):
        return self._inst.observe(value, **self._merge(labels))

    # -- reads ---------------------------------------------------------
    def value(self, **labels):
        return self._inst.value(**self._merge(labels))

    def sum(self, **labels):
        return self._inst.sum(**self._merge(labels))

    def samples(self):
        """Parent samples restricted to series carrying the constant labels."""
        want = set(_label_key(self._constant))
        return [(key, value) for key, value in self._inst.samples() if want <= set(key)]

    def labeled(self, label_name):
        out = {}
        for key, value in self.samples():
            for k, v in key:
                if k == label_name:
                    out[v] = out.get(v, 0.0) + value
        return out


class ChildRegistry:
    """A registry view that stamps constant labels onto every instrument.

    ``registry.child(device="dev0")`` gives a subsystem its own handle;
    everything it records lands in the parent's instruments with
    ``device="dev0"`` attached, so per-device series aggregate in one
    deterministic Prometheus export.  Children nest (labels merge) and
    may not redefine a parent label.
    """

    def __init__(self, parent, constant_labels):
        key = _label_key(constant_labels)  # validates label names
        if not key:
            raise ConfigurationError("child registry needs at least one label")
        self.parent = parent
        self.constant_labels = dict(constant_labels)

    def counter(self, name, help=""):
        return _BoundInstrument(self.parent.counter(name, help), self.constant_labels)

    def gauge(self, name, help=""):
        return _BoundInstrument(self.parent.gauge(name, help), self.constant_labels)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return _BoundInstrument(
            self.parent.histogram(name, help, buckets=buckets), self.constant_labels
        )

    def get(self, name):
        inst = self.parent.get(name)
        return None if inst is None else _BoundInstrument(inst, self.constant_labels)

    def child(self, **labels):
        for key in labels:
            if key in self.constant_labels:
                raise ConfigurationError(
                    "child registry already fixes label %r" % (key,)
                )
        merged = dict(self.constant_labels)
        merged.update(labels)
        return ChildRegistry(self.parent, merged)

    # Exports always cover the whole parent namespace — a child is a
    # write/read view, not a separate store.
    def render(self):
        return self.parent.render()

    def to_dict(self):
        return self.parent.to_dict()

    def instruments(self):
        return self.parent.instruments()


class MetricsRegistry:
    """One namespace of instruments shared by every subsystem.

    The whole stack — flash, CMA, secure monitor, TEE NPU co-driver,
    pipeline, serving gateway — registers into a single registry so one
    :meth:`render` call exposes the entire system state.
    """

    def __init__(self):
        self._instruments = {}

    def child(self, **labels) -> "ChildRegistry":
        """A view of this registry with ``labels`` attached to every
        series it writes or reads — e.g. ``registry.child(device="d0")``
        for per-device serving metrics that still export together."""
        return ChildRegistry(self, labels)

    def _get_or_create(self, cls, name, help, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    "metric %s already registered as %s, requested %s"
                    % (name, existing.kind, cls.kind)
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name, help=""):
        """Get or create a :class:`Counter` named ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name, help=""):
        """Get or create a :class:`Gauge` named ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        """Get or create a :class:`Histogram` named ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name):
        """Look up an instrument by name (None when absent)."""
        return self._instruments.get(name)

    def instruments(self):
        """All instruments sorted by name."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def render(self):
        """Prometheus text exposition for every instrument.

        Untouched instruments (no samples yet) still appear with their
        ``# HELP`` / ``# TYPE`` header so scrapes see a stable schema.
        """
        lines = []
        for inst in self.instruments():
            if inst.help:
                lines.append("# HELP %s %s" % (inst.name, inst.help))
            lines.append("# TYPE %s %s" % (inst.name, inst.kind))
            if isinstance(inst, Histogram):
                for key, series in inst.samples():
                    # Stored bucket counts are already cumulative (<= bound).
                    for bound, cumulative in zip(inst.buckets, series["buckets"]):
                        bkey = key + (("le", _fmt(bound)),)
                        lines.append(
                            "%s_bucket%s %d"
                            % (inst.name, _render_labels(tuple(sorted(bkey))), cumulative)
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        "%s_bucket%s %d"
                        % (inst.name, _render_labels(tuple(sorted(inf_key))), series["count"])
                    )
                    lines.append(
                        "%s_sum%s %s" % (inst.name, _render_labels(key), _fmt(series["sum"]))
                    )
                    lines.append(
                        "%s_count%s %d" % (inst.name, _render_labels(key), series["count"])
                    )
            else:
                for key, value in inst.samples():
                    lines.append("%s%s %s" % (inst.name, _render_labels(key), _fmt(value)))
        return "\n".join(lines) + "\n"

    def to_dict(self):
        """JSON-stable export: name -> {kind, help, series}."""
        out = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                series = [
                    {
                        "labels": dict(key),
                        "buckets": list(zip(map(_fmt, inst.buckets), s["buckets"])),
                        "sum": s["sum"],
                        "count": s["count"],
                    }
                    for key, s in inst.samples()
                ]
            else:
                series = [
                    {"labels": dict(key), "value": value} for key, value in inst.samples()
                ]
            out[inst.name] = {"kind": inst.kind, "help": inst.help, "series": series}
        return out
