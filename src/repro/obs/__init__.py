"""repro.obs — unified observability for the simulated TZ-LLM stack.

Three cooperating pieces, one import:

* :class:`MetricsRegistry` with labeled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments, Prometheus text
  exposition (:meth:`MetricsRegistry.render`) and a JSON export —
  the single namespace every subsystem reports into.
* :class:`TraceContext` — per-request identity threaded from the
  serving gateway across the REE/TEE boundary so Chrome flow events
  link a gateway arrival to the TEE-lane spans that served it.
* :class:`FlightRecorder` — a bounded ring buffer of typed events
  (faults, retries, watchdog fires, breaker flips) snapshotted as a
  postmortem when a request terminally fails.
* :class:`Profiler` — virtual-time profiling: collapsed-stack
  flamegraphs, per-resource queueing reports with a Little's-law
  check, per-lane busy/wait/idle accounting and per-token decode
  latency attribution.
* :class:`AlertEngine` — declarative threshold and multi-window SLO
  burn-rate rules evaluated over registry series on a virtual-time
  ticker; transitions land in the flight recorder and Chrome trace.
* :class:`MemoryTimeline` / :class:`FleetMemoryView` — the secure-memory
  observatory: block-level TZASC/KV event timelines with stranded-capacity
  accounting (single stack) and scrape-granularity fleet rollups.

:func:`instrument` wires all of it into a built system in one call,
mirroring how :class:`~repro.faults.injector.FaultInjector.arm` attaches
fault sites.
"""

from .alerts import AlertEngine, AlertTransition, BurnRateRule, RateRule, ThresholdRule
from .attach import Observability, instrument, iter_tas
from .context import TraceContext
from .memory import FleetMemoryView, MemoryTimeline, memory_pressure_rules
from .profile import LaneBreakdown, Profiler, QueueRow
from .recorder import FlightEvent, FlightRecorder
from .registry import ChildRegistry, Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import (
    FleetTelemetry,
    TailSampler,
    TelemetryCollector,
    TelemetryConfig,
    TenantAccountant,
    TimeSeriesStore,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ChildRegistry",
    "TraceContext",
    "FlightEvent",
    "FlightRecorder",
    "Observability",
    "instrument",
    "iter_tas",
    "MemoryTimeline",
    "FleetMemoryView",
    "memory_pressure_rules",
    "Profiler",
    "LaneBreakdown",
    "QueueRow",
    "AlertEngine",
    "AlertTransition",
    "ThresholdRule",
    "BurnRateRule",
    "RateRule",
    "TelemetryConfig",
    "TimeSeriesStore",
    "TelemetryCollector",
    "TenantAccountant",
    "TailSampler",
    "FleetTelemetry",
]
