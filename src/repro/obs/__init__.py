"""repro.obs — unified observability for the simulated TZ-LLM stack.

Three cooperating pieces, one import:

* :class:`MetricsRegistry` with labeled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments, Prometheus text
  exposition (:meth:`MetricsRegistry.render`) and a JSON export —
  the single namespace every subsystem reports into.
* :class:`TraceContext` — per-request identity threaded from the
  serving gateway across the REE/TEE boundary so Chrome flow events
  link a gateway arrival to the TEE-lane spans that served it.
* :class:`FlightRecorder` — a bounded ring buffer of typed events
  (faults, retries, watchdog fires, breaker flips) snapshotted as a
  postmortem when a request terminally fails.

:func:`instrument` wires all of it into a built system in one call,
mirroring how :class:`~repro.faults.injector.FaultInjector.arm` attaches
fault sites.
"""

from .attach import Observability, instrument
from .context import TraceContext
from .recorder import FlightEvent, FlightRecorder
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceContext",
    "FlightEvent",
    "FlightRecorder",
    "Observability",
    "instrument",
]
