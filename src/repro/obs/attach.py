"""Attach observability to a running stack, mirroring fault arming.

Components expose ``metrics`` / ``recorder`` attributes (None by
default) and consult them at their instrumentation points — the same
convention :class:`~repro.faults.injector.FaultInjector` uses for
``fault_injector``.  :func:`instrument` walks a stack (or a system
exposing one via ``.stack``) and sets both on every instrumented
component, so a single call makes the whole platform observable:

    obs = instrument(system)
    system.run_infer(64, 8)
    print(obs.registry.render())
"""

from __future__ import annotations

from .recorder import FlightRecorder
from .registry import MetricsRegistry

__all__ = ["Observability", "instrument", "iter_tas"]

# Components that carry ``metrics``/``recorder`` attach points, per stack.
_SITED = (
    "kernel.fs.flash",
    "board.tzasc",
    "board.monitor",
    "tz_driver",
    "ree_npu",
    "tee_npu",
)


def _resolve(stack, dotted):
    obj = stack
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


def iter_tas(target):
    """The TAs of a single- or multi-model system, structurally.

    Multi-model systems expose a ``tas`` dict of model_id -> TA; the
    single-model ``TZLLM`` exposes ``ta`` (guarded against the bound
    method some stand-ins use for that name).  Shared by
    :meth:`Observability.attach` and the memory timeline's attach walk.
    """
    if getattr(target, "tas", None):
        return list(target.tas.values())
    ta = getattr(target, "ta", None)
    if ta is not None and not callable(ta):
        return [ta]
    return []


class Observability:
    """One registry + one flight recorder covering a whole stack."""

    def __init__(self, sim, registry=None, recorder=None, recorder_capacity=512):
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = (
            recorder if recorder is not None else FlightRecorder(sim, recorder_capacity)
        )

    def attach(self, target) -> "Observability":
        """Wire this bundle into every instrumented component of ``target``.

        ``target`` may be a :class:`~repro.stack.Stack` or any system
        object exposing one via ``.stack`` (``TZLLM``, ``TZLLMMulti``,
        ``REELLM``).  Returns self for chaining.
        """
        stack = getattr(target, "stack", target)
        for dotted in _SITED:
            try:
                component = _resolve(stack, dotted)
            except AttributeError:
                continue
            component.metrics = self.registry
            component.recorder = self.recorder
        for region in stack.kernel.cma_regions.values():
            region.metrics = self.registry
            region.recorder = self.recorder
        # TAs (single- or multi-model systems) take metrics for the
        # pipeline phase accounting and the recorder for retry provenance.
        for ta in iter_tas(target):
            ta.metrics = self.registry
            ta.recorder = self.recorder
        # Remember the bundle on both handles so late-comers (gateway,
        # fault injector) can discover it.
        stack.observability = self
        if target is not stack:
            target.observability = self
        return self

    def detach(self, target) -> None:
        """Remove this bundle from ``target``'s components (data kept)."""
        stack = getattr(target, "stack", target)
        for dotted in _SITED:
            try:
                component = _resolve(stack, dotted)
            except AttributeError:
                continue
            component.metrics = None
            component.recorder = None
        for region in stack.kernel.cma_regions.values():
            region.metrics = None
            region.recorder = None
        for ta in iter_tas(target):
            ta.metrics = None
            ta.recorder = None
        stack.observability = None
        if target is not stack:
            target.observability = None


def instrument(target, registry=None, recorder=None, recorder_capacity=512):
    """Attach a fresh (or supplied) :class:`Observability` to ``target``.

    Convenience wrapper: builds the bundle against the target's sim and
    calls :meth:`Observability.attach`.  Returns the bundle.
    """
    stack = getattr(target, "stack", target)
    obs = Observability(
        stack.sim,
        registry=registry,
        recorder=recorder,
        recorder_capacity=recorder_capacity,
    )
    return obs.attach(target)
