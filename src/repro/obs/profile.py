"""Virtual-time profiler: where did every simulated second go?

The :class:`Profiler` folds what the stack already records — tracer
spans, resource queueing stats, the process ledger, decode attribution —
into three deterministic reports:

* :meth:`Profiler.collapsed_stacks` — a collapsed-stack flamegraph file
  (one ``lane;category;name count_usec`` line per aggregated frame),
  loadable in speedscope or Brendan Gregg's ``flamegraph.pl``;
* :meth:`Profiler.queueing_report` — per-resource arrival counts,
  mean/p99 wait, utilization and a Little's-law sanity check, computed
  from the :class:`~repro.sim.ResourceStats` /
  :class:`~repro.sim.PipeStats` the resources keep themselves;
* :meth:`Profiler.lane_accounting` — per-lane busy/wait/idle that sums
  to the lane's window *by construction*, so 100% of virtual time is
  attributed (the Fig. 12 acceptance bar).

Decode attribution (NPU compute vs. SMC vs. scheduler wait per token)
rides on the :class:`~repro.llm.runtime.DecodeResult` records the TA
returns; :meth:`Profiler.add_record` folds them in, keyed by the
request id the :class:`~repro.obs.TraceContext` carried into the TA.

Everything is derived from simulated time only — two same-seed runs
produce byte-identical report text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.resources import BandwidthResource, Resource

__all__ = ["LaneBreakdown", "QueueRow", "Profiler"]

#: span categories counted as *wait* (not busy) in the lane accounting;
#: spans named ``queue …`` (the gateway's queue spans) also count.
WAIT_CATEGORIES = frozenset({"wait", "queue", "stall"})

#: decode-attribution components, in report order.
_DECODE_COMPONENTS = ("cpu", "npu_compute", "smc", "sched_wait")


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _interval_sum(intervals: List[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


@dataclass(frozen=True)
class LaneBreakdown:
    """One lane's virtual-time budget: busy + wait + idle == window."""

    lane: str
    window: float
    busy: float
    wait: float
    idle: float

    @property
    def accounted(self) -> float:
        """Fraction of the window attributed (1.0 by construction)."""
        if self.window <= 0:
            return 1.0
        return (self.busy + self.wait + self.idle) / self.window

    def to_dict(self) -> Dict[str, float]:
        return {
            "lane": self.lane,
            "window": self.window,
            "busy": self.busy,
            "wait": self.wait,
            "idle": self.idle,
            "accounted": self.accounted,
        }


@dataclass(frozen=True)
class QueueRow:
    """One resource's queueing summary."""

    name: str
    kind: str  # "semaphore" | "pipe"
    arrivals: int
    completions: int
    mean_wait: float
    p99_wait: float
    mean_service: float
    utilization: float
    mean_queue_length: float
    littles_law_residual: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "mean_wait": self.mean_wait,
            "p99_wait": self.p99_wait,
            "mean_service": self.mean_service,
            "utilization": self.utilization,
            "mean_queue_length": self.mean_queue_length,
            "littles_law_residual": self.littles_law_residual,
        }


class Profiler:
    """Aggregates a run's observability into deterministic reports."""

    def __init__(self, tracer, resources=(), ledger=None, sim=None):
        self.tracer = tracer
        self.sim = sim if sim is not None else getattr(tracer, "sim", None)
        self.ledger = ledger
        self._resources: List[Tuple[str, object]] = []
        for entry in resources:
            if isinstance(entry, tuple):
                self.add_resource(entry[1], name=entry[0])
            else:
                self.add_resource(entry)
        #: (request_key, per-component totals, tokens) decode rows.
        self._decode_rows: List[Tuple[str, Dict[str, float], int]] = []

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def add_resource(self, resource, name: Optional[str] = None) -> "Profiler":
        """Track a :class:`Resource` or :class:`BandwidthResource`."""
        label = name or getattr(resource, "name", "") or "resource-%d" % len(self._resources)
        self._resources.append((label, resource))
        return self

    def add_record(self, record) -> "Profiler":
        """Fold in one :class:`~repro.core.llm_ta.InferenceRecord`'s decode."""
        decode = getattr(record, "decode", None)
        if decode is None or not getattr(decode, "attribution", None):
            return self
        request_id = getattr(record, "request_id", None)
        key = "r%d" % request_id if request_id is not None else "direct-%d" % len(self._decode_rows)
        self._decode_rows.append(
            (key, decode.attribution_totals(), len(decode.attribution))
        )
        return self

    # ------------------------------------------------------------------
    # (a) collapsed-stack flamegraph
    # ------------------------------------------------------------------
    def collapsed_stacks(self) -> str:
        """Collapsed-stack lines (``lane;category;name usec``), sorted.

        Durations are aggregated per frame and rendered as integer
        microseconds — the unit FlameGraph/speedscope treat as sample
        counts.  Frame components are sanitized (``;`` and spaces) so
        the output is always parseable.
        """
        frames: Dict[str, float] = {}
        for span in getattr(self.tracer, "spans", ()):
            frame = ";".join(
                part.replace(";", ",").replace(" ", "_") or "-"
                for part in (span.lane, span.category, span.name)
            )
            frames[frame] = frames.get(frame, 0.0) + span.duration
        lines = [
            "%s %d" % (frame, int(round(frames[frame] * 1e6)))
            for frame in sorted(frames)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed_stacks())

    # ------------------------------------------------------------------
    # (b) lane accounting: busy + wait + idle == window
    # ------------------------------------------------------------------
    def lane_accounting(self) -> List[LaneBreakdown]:
        spans = list(getattr(self.tracer, "spans", ()))
        if not spans:
            return []
        window_start = min(s.start for s in spans)
        window_end = max(s.end for s in spans)
        window = window_end - window_start
        by_lane: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
        for span in spans:
            lane = by_lane.setdefault(span.lane, {"busy": [], "wait": []})
            kind = (
                "wait"
                if span.category in WAIT_CATEGORIES or span.name.startswith("queue")
                else "busy"
            )
            lane[kind].append((span.start, span.end))
        out = []
        for lane in sorted(by_lane):
            busy_ivals = _merge(by_lane[lane]["busy"])
            busy = _interval_sum(busy_ivals)
            # Wait only counts where the lane is not already busy, so the
            # three buckets partition the window exactly.
            wait = _interval_sum(_merge(by_lane[lane]["wait"] + busy_ivals)) - busy
            idle = max(0.0, window - busy - wait)
            out.append(LaneBreakdown(lane, window, busy, wait, idle))
        return out

    # ------------------------------------------------------------------
    # (c) queueing report
    # ------------------------------------------------------------------
    def queueing_report(self) -> List[QueueRow]:
        now = self.sim.now if self.sim is not None else 0.0
        rows = []
        for label, resource in sorted(self._resources, key=lambda e: e[0]):
            if isinstance(resource, BandwidthResource):
                resource.sync()
                stats = resource.stats
                completed = sum(t.completed for t in stats.tags.values())
                transfers = sum(t.transfers for t in stats.tags.values())
                service = sum(t.service_time for t in stats.tags.values())
                window = stats.window(now)
                rows.append(
                    QueueRow(
                        name=label,
                        kind="pipe",
                        arrivals=transfers,
                        completions=completed,
                        mean_wait=0.0,  # processor sharing admits instantly
                        p99_wait=0.0,
                        mean_service=service / completed if completed else 0.0,
                        utilization=stats.utilization(now),
                        mean_queue_length=stats.active_area / window if window > 0 else 0.0,
                        littles_law_residual=self._pipe_littles_residual(stats, now),
                    )
                )
            elif isinstance(resource, Resource):
                stats = resource.stats
                stats.advance(now, resource.count, resource.queued)
                rows.append(
                    QueueRow(
                        name=label,
                        kind="semaphore",
                        arrivals=stats.arrivals,
                        completions=stats.releases,
                        mean_wait=stats.mean_wait(),
                        p99_wait=stats.p99_wait(),
                        mean_service=stats.mean_service(),
                        utilization=stats.utilization(now, resource.capacity),
                        mean_queue_length=stats.mean_queue_length(now),
                        littles_law_residual=stats.littles_law_residual(now),
                    )
                )
        return rows

    @staticmethod
    def _pipe_littles_residual(stats, now: float) -> float:
        """L = λW over the pipe's in-flight population."""
        window = stats.window(now)
        completed = sum(t.completed for t in stats.tags.values())
        service = sum(t.service_time for t in stats.tags.values())
        if window <= 0 or completed == 0:
            return 0.0
        L = stats.active_area / window
        lam = completed / window
        W = service / completed
        scale = max(L, lam * W, 1e-12)
        return abs(L - lam * W) / scale

    # ------------------------------------------------------------------
    # (d) decode attribution
    # ------------------------------------------------------------------
    def decode_attribution(self) -> List[Dict[str, object]]:
        """Per-request decode totals, in the order records were added."""
        rows = []
        for key, totals, tokens in self._decode_rows:
            row: Dict[str, object] = {"request": key, "tokens": tokens}
            for component in _DECODE_COMPONENTS:
                row[component] = totals.get(component, 0.0)
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "lanes": [b.to_dict() for b in self.lane_accounting()],
            "queues": [r.to_dict() for r in self.queueing_report()],
            "decode": self.decode_attribution(),
        }
        if self.ledger is not None:
            out["processes"] = self.ledger.to_dict()
        return out

    def render(self) -> str:
        lines = ["profiler report"]
        lanes = self.lane_accounting()
        if lanes:
            lines.append("  lane accounting (busy + wait + idle = window):")
            for b in lanes:
                lines.append(
                    "    %-12s window %10.6f  busy %10.6f  wait %10.6f  idle %10.6f  (%.1f%% accounted)"
                    % (b.lane, b.window, b.busy, b.wait, b.idle, b.accounted * 100.0)
                )
        queues = self.queueing_report()
        if queues:
            lines.append("  queueing:")
            for q in queues:
                lines.append(
                    "    %-16s %-9s arrivals %6d  mean wait %9.6f  p99 wait %9.6f  util %5.1f%%  L %7.3f  Little residual %6.3f"
                    % (
                        q.name,
                        q.kind,
                        q.arrivals,
                        q.mean_wait,
                        q.p99_wait,
                        q.utilization * 100.0,
                        q.mean_queue_length,
                        q.littles_law_residual,
                    )
                )
        decode = self.decode_attribution()
        if decode:
            lines.append("  decode attribution (s):")
            for row in decode:
                lines.append(
                    "    %-10s tokens %4d  cpu %9.6f  npu %9.6f  smc %9.6f  wait %9.6f"
                    % (
                        row["request"],
                        row["tokens"],
                        row["cpu"],
                        row["npu_compute"],
                        row["smc"],
                        row["sched_wait"],
                    )
                )
        if self.ledger is not None:
            lines.append("  processes:")
            for name, row in self.ledger.rows():
                lines.append(
                    "    %-28s spawned %6d  resumes %8d  finished %6d"
                    % (name, row["spawned"], row["resumes"], row["finished"])
                )
        return "\n".join(lines)
