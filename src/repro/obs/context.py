"""Per-request trace context carried across the REE/TEE boundary.

A :class:`TraceContext` is minted by the serving gateway when a request
is admitted, rides on the :class:`~repro.serve.request.ServeRequest`,
and is threaded through ``TZLLM``/``TZLLMMulti`` into the TA and the
prefill pipeline.  Each hop emits a Chrome *flow event* (``ph: s/t/f``)
bound to ``flow_id`` so Perfetto draws an arrow from the gateway span to
the TEE-lane compute spans that served it.
"""

from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request as it crosses lanes and worlds.

    ``request_id`` identifies the request at the gateway; ``span_id``
    distinguishes retries/attempts of the same request so a retried
    flow does not alias its first attempt in the trace viewer.  At the
    fleet tier the router mints one context per *attempt* with
    ``device`` set, so the two racing legs of a hedged ticket carry
    distinct flow identities instead of aliasing each other.
    """

    request_id: int
    span_id: int = 0
    tenant: Optional[str] = None
    device: Optional[str] = None

    @property
    def flow_id(self):
        """Stable integer id binding this request's flow events."""
        return self.request_id * 1000 + self.span_id

    @property
    def flow_name(self):
        """Display name shared by every event in the flow."""
        if self.device is not None:
            return "ticket t%d attempt %d @%s" % (
                self.request_id, self.span_id, self.device,
            )
        return "request r%d" % self.request_id

    def child(self):
        """Context for the next attempt of the same request."""
        return TraceContext(self.request_id, self.span_id + 1, self.tenant, self.device)
