"""Declarative alerting over the metrics registry, in virtual time.

Two rule shapes, both evaluated by an :class:`AlertEngine` ticking on
the simulator's clock (never wall time):

* :class:`ThresholdRule` — classic "value OP threshold for N seconds"
  over any counter/gauge series (``queue depth > 12 for 0.5 s``).
* :class:`BurnRateRule` — the SRE-workbook multi-window SLO burn rate:
  from a *good-events* counter and a *total-events* counter, the error
  rate over a long and a short window is converted into a burn rate
  (``error_rate / (1 - objective)``); the alert fires only when **both**
  windows exceed the factor — the long window gives significance, the
  short one makes the alert resolve quickly once the system recovers.
* :class:`RateRule` — "events per second OP threshold" evaluated from a
  :class:`~repro.obs.telemetry.TimeSeriesStore` windowed ``rate()``
  query instead of raw instant counter values; requires the engine to
  be constructed with ``store=``.

State transitions are appended to :attr:`AlertEngine.transitions`,
recorded into the :class:`~repro.obs.FlightRecorder` (category
``alert``) and dropped into the Chrome trace as instants on an
``alerts`` lane, so a firing alert lines up visually with the fault
window that caused it.  Everything is deterministic: same seed, same
tick sequence, same transitions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.trace import NULL_TRACER

__all__ = ["ThresholdRule", "BurnRateRule", "RateRule", "AlertTransition", "AlertEngine"]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when ``metric OP threshold`` holds for ``for_duration``."""

    name: str
    metric: str
    op: str
    threshold: float
    labels: Tuple[Tuple[str, str], ...] = ()
    for_duration: float = 0.0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ConfigurationError(
                "unknown alert op %r (want one of %s)" % (self.op, "/".join(sorted(_OPS)))
            )


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window SLO burn-rate alert (fires on long AND short window).

    The error rate comes from cumulative counters: either a *good*
    counter (``error = 1 - good/total``) or a *bad* counter
    (``error = bad/total``) against a *total* counter — set exactly one
    of ``good_metric`` / ``bad_metric``.

    ``objective`` is the SLO target (e.g. 0.999); the error *budget* is
    ``1 - objective``.  A burn rate of 1.0 means the budget is consumed
    exactly at the sustainable pace; the canonical page-worthy factor is
    14.4 (2% of a 30-day budget in one hour, scaled here to simulated
    seconds).
    """

    name: str
    total_metric: str
    good_metric: Optional[str] = None
    bad_metric: Optional[str] = None
    objective: float = 0.999
    long_window: float = 10.0
    short_window: float = 1.0
    burn_factor: float = 14.4
    good_labels: Tuple[Tuple[str, str], ...] = ()
    bad_labels: Tuple[Tuple[str, str], ...] = ()
    total_labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self):
        if (self.good_metric is None) == (self.bad_metric is None):
            raise ConfigurationError(
                "set exactly one of good_metric / bad_metric on %r" % (self.name,)
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError("objective must be in (0, 1), got %r" % (self.objective,))
        if self.short_window >= self.long_window:
            raise ConfigurationError("short_window must be < long_window")


@dataclass(frozen=True)
class RateRule:
    """Fire when the windowed per-second rate of a counter holds
    ``OP threshold`` for ``for_duration``.

    Evaluated from a telemetry :class:`~repro.obs.telemetry.
    TimeSeriesStore` (``store.rate(metric, window, now, **labels)``), so
    it answers "is the shed *rate* high" rather than "has the shed
    *count* ever been high" — the question instant counters cannot.
    """

    name: str
    metric: str
    op: str
    threshold: float
    window: float = 60.0
    labels: Tuple[Tuple[str, str], ...] = ()
    for_duration: float = 0.0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ConfigurationError(
                "unknown alert op %r (want one of %s)" % (self.op, "/".join(sorted(_OPS)))
            )
        if self.window <= 0:
            raise ConfigurationError("rate rule window must be > 0")


@dataclass(frozen=True)
class AlertTransition:
    """One state change: an alert started or stopped firing."""

    at: float
    name: str
    state: str  # "firing" | "resolved"
    value: float  # threshold value / long-window burn rate at transition


@dataclass
class _RuleState:
    firing: bool = False
    #: ThresholdRule: when the condition last became continuously true.
    pending_since: Optional[float] = None
    #: BurnRateRule: (time, good, total) cumulative samples.
    samples: Deque[Tuple[float, float, float]] = field(default_factory=deque)


class AlertEngine:
    """Evaluates alert rules against a registry on a virtual-time ticker."""

    def __init__(
        self,
        sim,
        registry,
        rules=(),
        recorder=None,
        tracer=NULL_TRACER,
        interval: float = 0.25,
        gateway=None,
        store=None,
    ):
        if interval <= 0:
            raise ConfigurationError("alert tick interval must be > 0")
        self.sim = sim
        self.registry = registry
        self.rules = list(rules)
        self.store = store
        for rule in self.rules:
            if isinstance(rule, RateRule) and store is None:
                raise ConfigurationError(
                    "RateRule %r needs AlertEngine(store=...)" % (rule.name,)
                )
        self.recorder = recorder
        self.tracer = tracer
        self.interval = interval
        self.transitions: List[AlertTransition] = []
        self.ticks = 0
        self._states: Dict[str, _RuleState] = {}
        for rule in self.rules:
            if rule.name in self._states:
                raise ConfigurationError("duplicate alert rule name %r" % (rule.name,))
            self._states[rule.name] = _RuleState()
        if gateway is not None:
            # Let ServeGateway.health() report firing alerts.
            gateway.alert_engine = self

    # ------------------------------------------------------------------
    def add_rule(self, rule) -> "AlertEngine":
        if rule.name in self._states:
            raise ConfigurationError("duplicate alert rule name %r" % (rule.name,))
        if isinstance(rule, RateRule) and self.store is None:
            raise ConfigurationError(
                "RateRule %r needs AlertEngine(store=...)" % (rule.name,)
            )
        self.rules.append(rule)
        self._states[rule.name] = _RuleState()
        return self

    def start(self, until: float) -> None:
        """Spawn the ticker process, evaluating every ``interval`` until
        ``until`` (bounded, so a plain ``sim.run()`` still drains)."""
        self.sim.process(self._ticker(until), name="alert-engine")

    def _ticker(self, until: float):
        while self.sim.now + self.interval <= until:
            yield self.sim.timeout(self.interval)
            self.tick()

    # ------------------------------------------------------------------
    def firing(self) -> List[str]:
        """Names of alerts currently firing, sorted."""
        return sorted(name for name, st in self._states.items() if st.firing)

    def tick(self) -> None:
        """Evaluate every rule once at the current simulated time."""
        now = self.sim.now
        self.ticks += 1
        for rule in self.rules:
            state = self._states[rule.name]
            if isinstance(rule, ThresholdRule):
                active, value = self._eval_threshold(rule, state, now)
            elif isinstance(rule, RateRule):
                active, value = self._eval_rate(rule, state, now)
            else:
                active, value = self._eval_burn_rate(rule, state, now)
            if active != state.firing:
                state.firing = active
                self._transition(rule.name, active, value, now)

    # ------------------------------------------------------------------
    def _series_value(self, metric: str, labels) -> float:
        inst = self.registry.get(metric)
        if inst is None:
            return 0.0
        return float(inst.value(**dict(labels)))

    def _eval_threshold(self, rule: ThresholdRule, state: _RuleState, now: float):
        value = self._series_value(rule.metric, rule.labels)
        holds = _OPS[rule.op](value, rule.threshold)
        if not holds:
            state.pending_since = None
            return False, value
        if state.pending_since is None:
            state.pending_since = now
        return (now - state.pending_since) >= rule.for_duration, value

    def _eval_rate(self, rule: RateRule, state: _RuleState, now: float):
        value = self.store.rate(rule.metric, rule.window, now, **dict(rule.labels))
        holds = _OPS[rule.op](value, rule.threshold)
        if not holds:
            state.pending_since = None
            return False, value
        if state.pending_since is None:
            state.pending_since = now
        return (now - state.pending_since) >= rule.for_duration, value

    def _eval_burn_rate(self, rule: BurnRateRule, state: _RuleState, now: float):
        if rule.good_metric is not None:
            numerator = self._series_value(rule.good_metric, rule.good_labels)
        else:
            numerator = self._series_value(rule.bad_metric, rule.bad_labels)
        total = self._series_value(rule.total_metric, rule.total_labels)
        state.samples.append((now, numerator, total))
        # Keep one sample at or before the long-window edge so window
        # deltas are always anchored.
        edge = now - rule.long_window
        while len(state.samples) >= 2 and state.samples[1][0] <= edge:
            state.samples.popleft()
        long_burn = self._window_burn(state.samples, rule, now, rule.long_window)
        short_burn = self._window_burn(state.samples, rule, now, rule.short_window)
        return (long_burn >= rule.burn_factor and short_burn >= rule.burn_factor), long_burn

    @staticmethod
    def _window_burn(samples, rule: BurnRateRule, now: float, window: float) -> float:
        """Burn rate over ``[now - window, now]`` from cumulative samples."""
        edge = now - window
        anchor = samples[0]
        for sample in samples:
            if sample[0] <= edge:
                anchor = sample
            else:
                break
        _, num0, total0 = anchor
        _, num1, total1 = samples[-1]
        d_total = total1 - total0
        if d_total <= 0:
            return 0.0
        d_num = num1 - num0
        if rule.good_metric is not None:
            error_rate = max(0.0, 1.0 - d_num / d_total)
        else:
            error_rate = min(1.0, max(0.0, d_num / d_total))
        return error_rate / (1.0 - rule.objective)

    # ------------------------------------------------------------------
    def _transition(self, name: str, firing: bool, value: float, now: float) -> None:
        state = "firing" if firing else "resolved"
        self.transitions.append(AlertTransition(now, name, state, value))
        if self.recorder is not None:
            self.recorder.record(
                "alert", "alert.%s" % name, message=state, value=value
            )
        if self.tracer.enabled:
            self.tracer.instant("alert", "%s %s" % (name, state), lane="alerts")
