"""Platform specification and timing calibration for the TZ-LLM models.

All constants with a physical meaning are calibrated against the numbers
the paper reports for the evaluation testbed (Orange Pi 5 Plus, RK3588):

======================================  =======================  ==========
quantity                                paper anchor             constant
======================================  =======================  ==========
flash sequential read                   2 GB/s (§2.4.2)          ``FlashSpec.seq_read_bw``
CMA migration, 1 thread                 1.9 GB/s (§2.4.2)        ``MemorySpec.cma_migration_bw``
CMA migration, 4 threads                3.8 GB/s (§2.4.2)        sqrt-scaling in :mod:`repro.ree.cma`
model decryption (8 GB)                 0.9 s (§2.3)             ``CryptoSpec.decrypt_bw_per_core``
framework cold init                     2.3 s (§2.3)             ``TimingSpec.framework_init``
CPU prefill, Llama-3-8B @512 tok        164 s (§2.3)             ``CPUSpec.effective_gflops``
NPU prefill speedup                     12.5x (§2.3)             ``NPUSpec.effective_gflops``
NPU decode speedup, Llama-3-8B          1.3x (§2.3)              ``NPUSpec.mem_bandwidth``
NPU driver detach-attach re-init        32 ms (§2.3)             ``NPUSpec.driver_reinit_time``
S2PT 4 KB overhead on Geekbench         avg 2.0% / max 9.8%      ``S2PTSpec``
======================================  =======================  ==========

Units: bytes, seconds, Hz.  ``GiB``-style helpers are binary; the paper's
"GB" figures for bandwidths are treated as decimal GB (1e9), matching how
vendors quote NVMe/DDR rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "GB",
    "PAGE_SIZE",
    "CPUSpec",
    "NPUSpec",
    "FlashSpec",
    "MemorySpec",
    "TrustZoneSpec",
    "CryptoSpec",
    "TimingSpec",
    "S2PTSpec",
    "PlatformSpec",
    "RK3588",
    "small_test_platform",
]

KiB = 1024
MiB = 1024 ** 2
GiB = 1024 ** 3
GB = 10 ** 9  # decimal, for bandwidths
PAGE_SIZE = 4 * KiB


@dataclass(frozen=True)
class CPUSpec:
    """CPU cluster: 4x Cortex-A76 (big) + 4x Cortex-A55 (little).

    ``effective_gflops`` is the aggregate useful rate of the big cluster on
    q8 transformer kernels, back-derived from the paper's 164 s CPU prefill
    of Llama-3-8B at 512 tokens (2 * 7.9e9 params * 512 tok / 164 s).
    """

    big_cores: int = 4
    little_cores: int = 4
    big_freq_hz: float = 2.4e9
    little_freq_hz: float = 1.8e9
    effective_gflops: float = 44.4  # aggregate, big cluster
    #: memory bandwidth usable by CPU decode kernels (weights streamed once
    #: per token); yields ~1.4 tok/s for 7.9 GB q8 weights.
    mem_bandwidth: float = 11.0 * GB

    @property
    def gflops_per_big_core(self) -> float:
        return self.effective_gflops / self.big_cores


@dataclass(frozen=True)
class NPUSpec:
    """RK3588 NPU: 3 cores, 6 TOPS peak.

    ``effective_gflops`` is calibrated so that prefill with the NPU is
    12.5x faster than CPU-only prefill once the CPU-resident operators
    (norms, attention softmax) are accounted for.  ``job_launch_latency``
    is the fixed per-job cost (command fetch, kickoff, completion IRQ) that
    makes tiny decode matmuls underutilize the NPU — the paper's
    explanation for the modest decode gains.
    """

    cores: int = 3
    peak_tops: float = 6.0
    effective_gflops: float = 722.0
    mem_bandwidth: float = 14.3 * GB  # ~1.3x CPU decode bandwidth
    job_launch_latency: float = 1.0e-3
    #: full driver detach-attach between worlds (the rejected design).
    driver_reinit_time: float = 32.0e-3


@dataclass(frozen=True)
class FlashSpec:
    """1 TB NVMe SSD over PCIe 3.0 x4."""

    seq_read_bw: float = 2.0 * GB
    #: single aio stream cannot exceed the aggregate on this controller.
    per_stream_bw: Optional[float] = None
    read_latency: float = 80e-6  # per-request setup latency


@dataclass(frozen=True)
class MemorySpec:
    """16 GB LPDDR4X and the allocator cost model."""

    total_bytes: int = 16 * GiB
    page_size: int = PAGE_SIZE
    #: single-thread CMA migration throughput under pressure (copy+remap).
    cma_migration_bw: float = 1.9 * GB
    #: thread-scaling exponent: aggregate = bw * threads**alpha
    #: (1 thread -> 1.9 GB/s, 4 threads -> 3.8 GB/s as measured).
    cma_thread_scaling_alpha: float = 0.5
    #: buddy fast-path allocation rate for free 4 KiB pages (page-table and
    #: zeroing costs only; pressure-insensitive in Fig. 3).
    buddy_alloc_bw: float = 25.0 * GB
    #: total DRAM bandwidth; migration traffic steals from applications
    #: (drives the Fig. 16 interference model).
    bus_bandwidth: float = 17.0 * GB
    #: dropping reclaimable pages (clean page cache / stress-ng pressure
    #: pages) to make room — page-table work only, far cheaper than
    #: migration's copy (keeps the Fig. 3 buddy line nearly flat).
    reclaim_bw: float = 25.0 * GB


@dataclass(frozen=True)
class TrustZoneSpec:
    """TrustZone hardware programming costs."""

    tzasc_regions: int = 8
    smc_latency: float = 8e-6  # one EL3 world switch
    tzasc_config_time: float = 20e-6
    tzpc_config_time: float = 20e-6
    gic_config_time: float = 20e-6

    @property
    def npu_world_switch_time(self) -> float:
        """One direction of the co-driver secure-mode switch."""
        return (
            self.smc_latency
            + self.tzasc_config_time
            + self.tzpc_config_time
            + self.gic_config_time
        )


@dataclass(frozen=True)
class CryptoSpec:
    """Model decryption cost: 8 GB in 0.9 s aggregate on 4 big cores."""

    decrypt_bw_per_core: float = 2.37 * GB
    checksum_bw_per_core: float = 6.0 * GB

    def aggregate_decrypt_bw(self, cores: int) -> float:
        return self.decrypt_bw_per_core * cores


@dataclass(frozen=True)
class TimingSpec:
    """Software-path constants."""

    framework_init: float = 2.3  # cold llama.cpp init + metadata + tokenizer
    checkpoint_restore: float = 0.20  # restore initialized state from flash
    checkpoint_save: float = 0.35
    kv_activation_alloc: float = 0.10  # per inference, not pipelined (minor)
    ta_invoke_latency: float = 30e-6  # CA -> TZ driver -> TEE OS -> TA
    io_delegate_latency: float = 25e-6  # TA -> CA aio round trip setup
    #: CPU fraction of prefill FLOPs that must stay on the CPU (norms,
    #: softmax/attention glue) when the NPU runs the matmuls.
    cpu_resident_prefill_fraction: float = 0.06


@dataclass(frozen=True)
class S2PTSpec:
    """Stage-2 page-table alternative (motivation experiment, Fig. 2)."""

    #: slowdown per unit of application memory intensity with fragmented
    #: 4 KiB stage-2 mappings; calibrated to max 9.8% / avg 2.0%.
    walk_overhead_factor: float = 0.098
    #: with 2 MiB huge mappings intact (before fragmentation).
    huge_page_overhead_factor: float = 0.012


@dataclass(frozen=True)
class PlatformSpec:
    """Complete testbed description, defaulting to the RK3588 board."""

    name: str = "rk3588-orangepi5plus"
    cpu: CPUSpec = field(default_factory=CPUSpec)
    npu: NPUSpec = field(default_factory=NPUSpec)
    flash: FlashSpec = field(default_factory=FlashSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    trustzone: TrustZoneSpec = field(default_factory=TrustZoneSpec)
    crypto: CryptoSpec = field(default_factory=CryptoSpec)
    timing: TimingSpec = field(default_factory=TimingSpec)
    s2pt: S2PTSpec = field(default_factory=S2PTSpec)

    def with_memory(self, total_bytes: int) -> "PlatformSpec":
        return replace(self, memory=replace(self.memory, total_bytes=total_bytes))


#: The paper's testbed.
RK3588 = PlatformSpec()


def small_test_platform(total_bytes: int = 64 * MiB) -> PlatformSpec:
    """A shrunken platform for fast unit tests (same rates, tiny RAM)."""
    return RK3588.with_memory(total_bytes)
