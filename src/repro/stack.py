"""Full-platform assembly: hardware + REE kernel + TEE OS + drivers.

:func:`build_stack` stands up everything below the LLM layer: the board,
the REE kernel with its CMA regions, the TrustZone driver, the TEE OS with
a hardware key store, and the two cooperating NPU drivers.  The LLM
systems in :mod:`repro.core.system` build on top of this; unit tests and
examples use it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import MiB, PlatformSpec, RK3588
from .crypto.keys import HardwareKeyStore
from .hw.platform import Board
from .ree.kernel import REEKernel
from .ree.npu_driver import REENPUDriver
from .ree.tz_driver import TZDriver
from .sim import Simulator
from .tee.npu_driver import TEENPUDriver
from .tee.os import TEEOS

__all__ = ["Stack", "build_stack"]


@dataclass
class Stack:
    sim: Simulator
    spec: PlatformSpec
    board: Board
    kernel: REEKernel
    tz_driver: TZDriver
    tee_os: TEEOS
    keystore: HardwareKeyStore
    ree_npu: REENPUDriver
    tee_npu: TEENPUDriver
    #: device namespace when several stacks share one simulator.
    name: str = ""

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


def build_stack(
    spec: PlatformSpec = RK3588,
    granule: int = 1 * MiB,
    os_footprint: Optional[int] = None,
    cma_regions: Optional[Dict[str, int]] = None,
    device_seed: Optional[bytes] = None,
    npu_reinit_on_switch: bool = False,
    sim: Optional[Simulator] = None,
    name: str = "",
) -> Stack:
    """Build and boot a complete two-world platform.

    ``cma_regions`` maps region name to size in bytes; reservations happen
    before boot.  The TEE NPU driver starts with no TZASC grants — callers
    add slots for the job-context regions they create.

    Pass ``sim`` to place several independent platforms on one shared
    simulator (the fleet tier does); ``name`` namespaces the board's
    resources and, unless ``device_seed`` is given explicitly, derives a
    per-device hardware key seed — two devices must never share keys.
    """
    if sim is None:
        sim = Simulator()
    if device_seed is None:
        device_seed = ("rk3588-unit-0:%s" % name).encode() if name else b"rk3588-unit-0"
    board = Board(sim, spec, name=name)
    kernel = REEKernel(sim, board, granule=granule, os_footprint=os_footprint)
    for region_name, size in (cma_regions or {}).items():
        kernel.reserve_cma(region_name, size)
    kernel.boot()
    tz_driver = TZDriver(sim, kernel)
    keystore = HardwareKeyStore(device_seed)
    tee_os = TEEOS(sim, board, keystore)
    ree_npu = REENPUDriver(sim, board)
    tee_npu = TEENPUDriver(sim, board, reinit_on_switch=npu_reinit_on_switch)
    return Stack(
        sim=sim,
        spec=spec,
        board=board,
        kernel=kernel,
        tz_driver=tz_driver,
        tee_os=tee_os,
        keystore=keystore,
        ree_npu=ree_npu,
        tee_npu=tee_npu,
        name=name,
    )
