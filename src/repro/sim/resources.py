"""Resources for the discrete-event simulator.

Three resource flavours cover everything the TZ-LLM models need:

* :class:`Resource` — counting semaphore with FIFO or priority queueing
  (CPU core pools, the NPU, driver locks).
* :class:`BandwidthResource` — processor-sharing pipe: concurrent transfers
  split a fixed byte rate equally (flash I/O, memory-bus migration traffic).
* :class:`TokenBucket` is intentionally absent: the paper's devices are all
  rate-limited, not burst-limited.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional

from .core import Event, SimulationError, Simulator

__all__ = [
    "Request",
    "Resource",
    "ResourceStats",
    "BandwidthResource",
    "PipeStats",
    "TagStats",
    "Transfer",
]


def _percentile(values: List[float], q: float) -> float:
    """The ``q``-quantile (q in [0, 1]) by linear interpolation between
    ranks — the same definition as
    :func:`repro.analysis.metrics.percentile` (implemented locally: the
    sim layer must not import analysis), so a resource's ``p99_wait``
    and an analysis-side summary of the same samples agree exactly.
    Returns 0.0 for an empty list (stats reports tolerate no samples).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0:
        return ordered[low]
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


class ResourceStats:
    """Always-on queueing accounting for one :class:`Resource`.

    Tracks per-request wait time (arrival → grant) and service time
    (grant → release) plus two time integrals — occupied slots and queue
    length — so a profiler can compute utilization, mean queue length,
    and a Little's-law sanity check without re-simulating.  Updates are
    O(1) per state change; nothing is formatted until asked.
    """

    __slots__ = (
        "created_at",
        "arrivals",
        "grants",
        "releases",
        "cancellations",
        "wait_times",
        "service_times",
        "_busy_area",
        "_queue_area",
        "_last_change",
    )

    def __init__(self, now: float):
        self.created_at = now
        self.arrivals = 0
        self.grants = 0
        self.releases = 0
        self.cancellations = 0
        self.wait_times: List[float] = []
        self.service_times: List[float] = []
        self._busy_area = 0.0  # ∫ held-slots dt
        self._queue_area = 0.0  # ∫ queue-length dt
        self._last_change = now

    def advance(self, now: float, held: int, queued: int) -> None:
        """Integrate the areas up to ``now`` with the *previous* state."""
        elapsed = now - self._last_change
        if elapsed > 0:
            self._busy_area += held * elapsed
            self._queue_area += queued * elapsed
            self._last_change = now

    # ------------------------------------------------------------------
    def window(self, now: float) -> float:
        return now - self.created_at

    def mean_wait(self) -> float:
        return sum(self.wait_times) / len(self.wait_times) if self.wait_times else 0.0

    def p99_wait(self) -> float:
        return _percentile(self.wait_times, 0.99)

    def mean_service(self) -> float:
        return (
            sum(self.service_times) / len(self.service_times)
            if self.service_times
            else 0.0
        )

    def utilization(self, now: float, capacity: int) -> float:
        window = self.window(now)
        if window <= 0 or capacity <= 0:
            return 0.0
        return self._busy_area / (window * capacity)

    def mean_queue_length(self, now: float) -> float:
        window = self.window(now)
        return self._queue_area / window if window > 0 else 0.0

    def littles_law_residual(self, now: float) -> float:
        """Relative gap between L and λW over the window (0 = exact).

        Little's law for the waiting room: mean queue length L equals the
        arrival-to-grant rate λ times mean wait W.  Finite windows leave
        edge effects (requests still queued at ``now``), so the residual
        is a sanity check, not an identity.
        """
        window = self.window(now)
        if window <= 0 or not self.wait_times:
            return 0.0
        L = self.mean_queue_length(now)
        lam = self.grants / window
        lw = lam * self.mean_wait()
        scale = max(L, lw, 1e-12)
        return abs(L - lw) / scale

    def to_dict(self, now: float, capacity: int) -> Dict[str, float]:
        return {
            "arrivals": self.arrivals,
            "grants": self.grants,
            "releases": self.releases,
            "cancellations": self.cancellations,
            "mean_wait": self.mean_wait(),
            "p99_wait": self.p99_wait(),
            "mean_service": self.mean_service(),
            "utilization": self.utilization(now, capacity),
            "mean_queue_length": self.mean_queue_length(now),
            "littles_law_residual": self.littles_law_residual(now),
        }


class Request(Event):
    """Event granted when the resource admits the requester.

    Usable as a handle: pass it back to :meth:`Resource.release`.  Cancel a
    queued request with :meth:`cancel` (used when a waiter times out).
    """

    def __init__(self, resource: "Resource", priority: float, data: Any):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.data = data
        self.cancelled = False
        self.arrived_at = resource.sim.now
        self.granted_at: Optional[float] = None

    def cancel(self) -> None:
        """Withdraw a queued request; no-op if already granted."""
        if self.triggered:
            return
        self.cancelled = True
        self.resource._drop(self)


class Resource:
    """Counting semaphore over ``capacity`` identical slots.

    With ``priority=True``, waiters are admitted lowest-priority-value
    first (ties FIFO); otherwise strictly FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int, priority: bool = False, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._prioritized = priority
        self._users: List[Request] = []
        self._queue: List = []
        self._seq = itertools.count()
        self.stats = ResourceStats(sim.now)

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _account(self) -> None:
        self.stats.advance(self.sim.now, len(self._users), len(self._queue))

    def request(self, priority: float = 0.0, data: Any = None) -> Request:
        self._account()
        req = Request(self, priority, data)
        self.stats.arrivals += 1
        key = priority if self._prioritized else 0.0
        heapq.heappush(self._queue, (key, next(self._seq), req))
        self._admit()
        return req

    def release(self, request: Request) -> None:
        self._account()
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold %s" % self.name)
        self.stats.releases += 1
        if request.granted_at is not None:
            self.stats.service_times.append(self.sim.now - request.granted_at)
        self._admit()

    def _drop(self, request: Request) -> None:
        self._account()
        self.stats.cancellations += 1
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _admit(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            self._account()
            _key, _seq, req = heapq.heappop(self._queue)
            if req.cancelled:
                continue
            req.granted_at = self.sim.now
            self.stats.grants += 1
            self.stats.wait_times.append(self.sim.now - req.arrived_at)
            self._users.append(req)
            req.succeed(req)


class TagStats:
    """Per-tag accounting for a :class:`BandwidthResource`.

    ``occupancy`` is transfer-seconds: the integral of this tag's active
    transfer count over time (two concurrent 1-second transfers make 2).
    """

    __slots__ = ("bytes", "transfers", "completed", "occupancy", "service_time")

    def __init__(self):
        self.bytes = 0.0
        self.transfers = 0
        self.completed = 0
        self.occupancy = 0.0
        self.service_time = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "bytes": self.bytes,
            "transfers": self.transfers,
            "completed": self.completed,
            "occupancy": self.occupancy,
            "service_time": self.service_time,
        }


class PipeStats:
    """Whole-pipe accounting for a :class:`BandwidthResource`.

    ``busy_time`` is wall (virtual) time with at least one transfer in
    flight; ``active_area`` is the integral of the concurrent-transfer
    count.  Both are advanced lazily on the same settle boundaries the
    progress accounting already uses, so ``busy_time + idle == window``
    exactly — the invariant the queueing report leans on.
    """

    __slots__ = ("created_at", "busy_time", "active_area", "tags")

    def __init__(self, now: float):
        self.created_at = now
        self.busy_time = 0.0
        self.active_area = 0.0
        self.tags: Dict[str, TagStats] = {}

    def tag(self, tag: Any) -> TagStats:
        key = "untagged" if tag is None else str(tag)
        stats = self.tags.get(key)
        if stats is None:
            stats = self.tags[key] = TagStats()
        return stats

    def window(self, now: float) -> float:
        return now - self.created_at

    def idle_time(self, now: float) -> float:
        return max(0.0, self.window(now) - self.busy_time)

    def utilization(self, now: float) -> float:
        window = self.window(now)
        return self.busy_time / window if window > 0 else 0.0

    def to_dict(self, now: float) -> Dict[str, object]:
        return {
            "busy_time": self.busy_time,
            "idle_time": self.idle_time(now),
            "active_area": self.active_area,
            "utilization": self.utilization(now),
            "tags": {k: v.to_dict() for k, v in sorted(self.tags.items())},
        }


class Transfer(Event):
    """A transfer in flight on a :class:`BandwidthResource`.

    Triggers (with the transfer itself as value) when the last byte moves.
    ``remaining`` is kept up to date lazily by the owning resource.
    """

    def __init__(self, resource: "BandwidthResource", size: float, tag: Any):
        super().__init__(resource.sim)
        if size < 0:
            raise SimulationError("negative transfer size")
        self.resource = resource
        self.size = float(size)
        self.remaining = float(size)
        self.tag = tag
        self.started_at = resource.sim.now
        self.finished_at: Optional[float] = None


class BandwidthResource:
    """A pipe with fixed aggregate bandwidth, processor-shared.

    ``n`` concurrent transfers each progress at ``bandwidth / n`` bytes per
    second, optionally capped at ``per_stream`` (models flash controllers
    whose single-queue throughput is below the aggregate).  Completion
    times are recomputed whenever the set of active transfers changes,
    which makes sharing exact rather than approximate.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        per_stream: Optional[float] = None,
        name: str = "",
    ):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.per_stream = float(per_stream) if per_stream else None
        self.name = name
        self._active: List[Transfer] = []
        self._last_update = sim.now
        self._wake_generation = 0
        self.total_bytes = 0.0
        self.stats = PipeStats(sim.now)

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._active)

    def current_rate(self) -> float:
        """Per-transfer byte rate right now (0 if idle)."""
        if not self._active:
            return 0.0
        rate = self.bandwidth / len(self._active)
        if self.per_stream is not None:
            rate = min(rate, self.per_stream)
        return rate

    def sync(self) -> None:
        """Bring lazy progress/occupancy accounting up to ``sim.now``.

        Readers (the profiler's queueing report) call this before looking
        at :attr:`stats` mid-run; the pending wake-up stays valid because
        settling never changes the completion schedule.
        """
        self._settle()

    def transfer(self, size: float, tag: Any = None) -> Transfer:
        """Start moving ``size`` bytes; returns the completion event."""
        self._settle()
        xfer = Transfer(self, size, tag)
        self.total_bytes += xfer.size
        tag_stats = self.stats.tag(tag)
        tag_stats.bytes += xfer.size
        tag_stats.transfers += 1
        if xfer.size == 0:
            xfer.finished_at = self.sim.now
            tag_stats.completed += 1
            xfer.succeed(xfer)
            return xfer
        self._active.append(xfer)
        self._rearm()
        return xfer

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Account progress since the last queue change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        self.stats.busy_time += elapsed
        self.stats.active_area += len(self._active) * elapsed
        for xfer in self._active:
            self.stats.tag(xfer.tag).occupancy += elapsed
        rate = self.current_rate()
        # A transfer with less than a nanosecond of work left is done:
        # float roundtrip error on large transfers leaves residues that
        # would otherwise schedule unrepresentably small wake-ups.
        epsilon = max(1e-9, rate * 1e-9)
        done: List[Transfer] = []
        for xfer in self._active:
            xfer.remaining -= rate * elapsed
            if xfer.remaining <= epsilon:
                xfer.remaining = 0.0
                done.append(xfer)
        for xfer in done:
            self._active.remove(xfer)
            xfer.finished_at = now
            tag_stats = self.stats.tag(xfer.tag)
            tag_stats.completed += 1
            tag_stats.service_time += now - xfer.started_at
            xfer.succeed(xfer)

    def _rearm(self) -> None:
        """Schedule a wake-up at the next completion instant."""
        self._wake_generation += 1
        if not self._active:
            return
        generation = self._wake_generation
        rate = self.current_rate()
        next_done = min(xfer.remaining for xfer in self._active) / rate
        wake = self.sim.timeout(next_done)
        wake.add_callback(lambda _event: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later queue change
        self._settle()
        self._rearm()
