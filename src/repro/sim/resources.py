"""Resources for the discrete-event simulator.

Three resource flavours cover everything the TZ-LLM models need:

* :class:`Resource` — counting semaphore with FIFO or priority queueing
  (CPU core pools, the NPU, driver locks).
* :class:`BandwidthResource` — processor-sharing pipe: concurrent transfers
  split a fixed byte rate equally (flash I/O, memory-bus migration traffic).
* :class:`TokenBucket` is intentionally absent: the paper's devices are all
  rate-limited, not burst-limited.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "BandwidthResource", "Transfer"]


class Request(Event):
    """Event granted when the resource admits the requester.

    Usable as a handle: pass it back to :meth:`Resource.release`.  Cancel a
    queued request with :meth:`cancel` (used when a waiter times out).
    """

    def __init__(self, resource: "Resource", priority: float, data: Any):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.data = data
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw a queued request; no-op if already granted."""
        if self.triggered:
            return
        self.cancelled = True
        self.resource._drop(self)


class Resource:
    """Counting semaphore over ``capacity`` identical slots.

    With ``priority=True``, waiters are admitted lowest-priority-value
    first (ties FIFO); otherwise strictly FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int, priority: bool = False, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._prioritized = priority
        self._users: List[Request] = []
        self._queue: List = []
        self._seq = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self, priority: float = 0.0, data: Any = None) -> Request:
        req = Request(self, priority, data)
        key = priority if self._prioritized else 0.0
        heapq.heappush(self._queue, (key, next(self._seq), req))
        self._admit()
        return req

    def release(self, request: Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold %s" % self.name)
        self._admit()

    def _drop(self, request: Request) -> None:
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _admit(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _key, _seq, req = heapq.heappop(self._queue)
            if req.cancelled:
                continue
            self._users.append(req)
            req.succeed(req)


class Transfer(Event):
    """A transfer in flight on a :class:`BandwidthResource`.

    Triggers (with the transfer itself as value) when the last byte moves.
    ``remaining`` is kept up to date lazily by the owning resource.
    """

    def __init__(self, resource: "BandwidthResource", size: float, tag: Any):
        super().__init__(resource.sim)
        if size < 0:
            raise SimulationError("negative transfer size")
        self.resource = resource
        self.size = float(size)
        self.remaining = float(size)
        self.tag = tag
        self.started_at = resource.sim.now
        self.finished_at: Optional[float] = None


class BandwidthResource:
    """A pipe with fixed aggregate bandwidth, processor-shared.

    ``n`` concurrent transfers each progress at ``bandwidth / n`` bytes per
    second, optionally capped at ``per_stream`` (models flash controllers
    whose single-queue throughput is below the aggregate).  Completion
    times are recomputed whenever the set of active transfers changes,
    which makes sharing exact rather than approximate.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        per_stream: Optional[float] = None,
        name: str = "",
    ):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.per_stream = float(per_stream) if per_stream else None
        self.name = name
        self._active: List[Transfer] = []
        self._last_update = sim.now
        self._wake_generation = 0
        self.total_bytes = 0.0

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._active)

    def current_rate(self) -> float:
        """Per-transfer byte rate right now (0 if idle)."""
        if not self._active:
            return 0.0
        rate = self.bandwidth / len(self._active)
        if self.per_stream is not None:
            rate = min(rate, self.per_stream)
        return rate

    def transfer(self, size: float, tag: Any = None) -> Transfer:
        """Start moving ``size`` bytes; returns the completion event."""
        self._settle()
        xfer = Transfer(self, size, tag)
        self.total_bytes += xfer.size
        if xfer.size == 0:
            xfer.finished_at = self.sim.now
            xfer.succeed(xfer)
            return xfer
        self._active.append(xfer)
        self._rearm()
        return xfer

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Account progress since the last queue change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        rate = self.current_rate()
        # A transfer with less than a nanosecond of work left is done:
        # float roundtrip error on large transfers leaves residues that
        # would otherwise schedule unrepresentably small wake-ups.
        epsilon = max(1e-9, rate * 1e-9)
        done: List[Transfer] = []
        for xfer in self._active:
            xfer.remaining -= rate * elapsed
            if xfer.remaining <= epsilon:
                xfer.remaining = 0.0
                done.append(xfer)
        for xfer in done:
            self._active.remove(xfer)
            xfer.finished_at = now
            xfer.succeed(xfer)

    def _rearm(self) -> None:
        """Schedule a wake-up at the next completion instant."""
        self._wake_generation += 1
        if not self._active:
            return
        generation = self._wake_generation
        rate = self.current_rate()
        next_done = min(xfer.remaining for xfer in self._active) / rate
        wake = self.sim.timeout(next_done)
        wake.add_callback(lambda _event: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later queue change
        self._settle()
        self._rearm()
