"""Execution tracing: spans over simulated time, Chrome-trace export.

A :class:`Tracer` collects named spans (category, name, start, end, lane)
as components execute; :meth:`Tracer.to_chrome_trace` serializes them in
the Chrome trace-event format, so a pipeline run can be inspected in
``chrome://tracing`` / Perfetto — alloc, load, decrypt and compute
operators on their hardware lanes, exactly like the paper's Fig. 5
timelines.  Flow events (``ph: s/t/f``) bind spans across lanes: a
serving-gateway arrival can be followed into the TEE compute lane that
served it.

Tracing is opt-in and zero-cost when disabled (the default tracer is a
no-op singleton with full API parity, so instrumented code never needs
an ``if tracer`` guard).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from .core import Simulator

__all__ = [
    "Span",
    "CounterSample",
    "Instant",
    "FlowEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]

_FLOW_PHASES = ("s", "t", "f")


@dataclass(frozen=True)
class Span:
    category: str
    name: str
    start: float
    end: float
    lane: str = "main"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One sample of a time-varying gauge (queue depth, utilization)."""

    name: str
    at: float
    value: float


@dataclass(frozen=True)
class Instant:
    """A point event (e.g. a shed request) on a lane."""

    category: str
    name: str
    at: float
    lane: str = "main"


@dataclass(frozen=True)
class FlowEvent:
    """One leg of a cross-lane flow: start (s), step (t), or finish (f).

    Chrome binds the legs by ``flow_id`` + ``name``; the viewer draws an
    arrow from each leg to the next through the enclosing spans.
    """

    phase: str
    flow_id: int
    name: str
    at: float
    lane: str = "main"
    category: str = "flow"


class Tracer:
    """Collects spans against a simulator's clock."""

    enabled = True

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: List[Span] = []
        self.counters: List[CounterSample] = []
        self.instants: List[Instant] = []
        self.flows: List[FlowEvent] = []

    # ------------------------------------------------------------------
    def record(self, category: str, name: str, start: float, lane: str = "main") -> None:
        """Record a span from ``start`` to now."""
        end = self.sim.now
        if end < start:
            raise ConfigurationError("span ends before it starts")
        self.spans.append(Span(category, name, start, end, lane))

    def span(self, category: str, name: str, lane: str = "main") -> "_SpanHandle":
        """Open a span handle; close it explicitly or use as a ``with`` block."""
        return _SpanHandle(self, category, name, lane, self.sim.now)

    def counter(self, name: str, value: float) -> None:
        """Sample a gauge at the current simulated time."""
        self.counters.append(CounterSample(name, self.sim.now, float(value)))

    def instant(self, category: str, name: str, lane: str = "main") -> None:
        """Record a point event at the current simulated time."""
        self.instants.append(Instant(category, name, self.sim.now, lane))

    def flow(
        self,
        phase: str,
        flow_id: int,
        name: str,
        lane: str = "main",
        category: str = "flow",
    ) -> None:
        """Record one flow leg at the current simulated time.

        ``phase`` is ``"s"`` (start), ``"t"`` (step), or ``"f"``
        (finish); legs sharing ``flow_id`` and ``name`` are linked.
        """
        if phase not in _FLOW_PHASES:
            raise ConfigurationError("flow phase must be one of s/t/f, got %r" % (phase,))
        self.flows.append(FlowEvent(phase, flow_id, name, self.sim.now, lane, category))

    # ------------------------------------------------------------------
    def lanes(self) -> List[str]:
        lanes = {span.lane for span in self.spans}
        lanes.update(inst.lane for inst in self.instants)
        lanes.update(flow.lane for flow in self.flows)
        return sorted(lanes)

    def total_time(self, category: str) -> float:
        return sum(span.duration for span in self.spans if span.category == category)

    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON (load in chrome://tracing or Perfetto).

        Simulated seconds map to trace microseconds 1:1e6; lanes become
        thread ids of one process.  Flow legs ride on their lane's tid so
        the viewer binds them to the enclosing spans.
        """
        lane_ids: Dict[str, int] = {lane: i + 1 for i, lane in enumerate(self.lanes())}
        events = []
        for lane, tid in lane_ids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": lane},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": lane_ids[span.lane],
                    "cat": span.category,
                    "name": span.name,
                    "ts": span.start * 1e6,
                    "dur": max(0.001, span.duration * 1e6),
                }
            )
        for inst in self.instants:
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": lane_ids[inst.lane],
                    "cat": inst.category,
                    "name": inst.name,
                    "ts": inst.at * 1e6,
                    "s": "t",
                }
            )
        for flow in self.flows:
            event = {
                "ph": flow.phase,
                "pid": 1,
                "tid": lane_ids[flow.lane],
                "cat": flow.category,
                "name": flow.name,
                "id": flow.flow_id,
                "ts": flow.at * 1e6,
            }
            if flow.phase == "f":
                # Bind the finish to the enclosing slice's end.
                event["bp"] = "e"
            events.append(event)
        for sample in self.counters:
            events.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "name": sample.name,
                    "ts": sample.at * 1e6,
                    "args": {"value": sample.value},
                }
            )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_trace())


class _SpanHandle:
    __slots__ = ("tracer", "category", "name", "lane", "start", "closed")

    def __init__(self, tracer: Tracer, category: str, name: str, lane: str, start: float):
        self.tracer = tracer
        self.category = category
        self.name = name
        self.lane = lane
        self.start = start
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.tracer.record(self.category, self.name, self.start, self.lane)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTracer:
    """The do-nothing default: tracing costs nothing unless requested.

    Mirrors the full :class:`Tracer` surface — including the read-side
    (``lanes``, ``total_time``, ``spans``/``counters``/``instants``/
    ``flows``, ``to_chrome_trace``) — so code written against a real
    tracer runs unchanged against the default.  The collection
    attributes are shared empty tuples: nothing is ever allocated.
    """

    enabled = False
    sim = None

    # Shared immutable empties — the zero-allocation guarantee.
    spans = ()
    counters = ()
    instants = ()
    flows = ()

    def record(self, category, name, start, lane="main") -> None:
        pass

    def span(self, category, name, lane="main") -> "_NullHandle":
        return _NULL_HANDLE

    def counter(self, name, value) -> None:
        pass

    def instant(self, category, name, lane="main") -> None:
        pass

    def flow(self, phase, flow_id, name, lane="main", category="flow") -> None:
        pass

    def lanes(self) -> List[str]:
        return []

    def total_time(self, category) -> float:
        return 0.0

    def to_chrome_trace(self) -> str:
        return json.dumps({"traceEvents": [], "displayTimeUnit": "ms"})

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_trace())


class _NullHandle:
    __slots__ = ()

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_HANDLE = _NullHandle()
NULL_TRACER = NullTracer()
