"""Discrete-event simulation core.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Every other subsystem in
the TZ-LLM reproduction (hardware devices, OS kernels, the inference
pipeline) is expressed as :class:`Process` coroutines that yield *events*
(timeouts, resource grants, completions of other processes) and are resumed
by the :class:`Simulator` when those events trigger.

Design notes
------------
* Determinism: the event queue breaks time ties with a monotonically
  increasing sequence number, so two runs of the same model produce the
  same schedule.  No wall-clock time is consulted anywhere.
* Time is a ``float`` in *seconds* of simulated time.
* Failure propagation: an event may *fail* with an exception; a process
  waiting on it has the exception thrown into its generator at the yield
  point, so ordinary ``try/except`` works across simulated waits.
* Interrupts: a process can be interrupted from the outside (used by the
  preemptive pipeline scheduler), which raises :class:`Interrupt` inside
  the generator at its current yield point.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "ProcessLedger",
    "Interrupt",
    "SimulationError",
    "Simulator",
    "AllOf",
    "AnyOf",
]


class ProcessLedger:
    """Lightweight per-process activity accounting (opt-in).

    Enable by setting ``sim.ledger = ProcessLedger()`` before spawning
    processes; the default (``None``) costs one attribute read per
    process step.  Rows aggregate by process *name* — many short-lived
    processes share a name (``pipeline-io``, ``serve-r7``) and what a
    profiler wants is "how much scheduler activity did each role see",
    not a row per instance.  Resumes happen at instants of virtual time,
    so the ledger counts events and tracks lifetimes rather than
    pretending processes burn wall time between yields.
    """

    __slots__ = ("_rows",)

    def __init__(self):
        self._rows = {}

    def _row(self, name):
        row = self._rows.get(name)
        if row is None:
            row = self._rows[name] = {
                "spawned": 0,
                "resumes": 0,
                "finished": 0,
                "failed": 0,
                "first_spawn_at": None,
                "last_finish_at": None,
                "lifetime": 0.0,
            }
        return row

    def note_spawn(self, process: "Process", at: float) -> None:
        row = self._row(process.name)
        row["spawned"] += 1
        if row["first_spawn_at"] is None:
            row["first_spawn_at"] = at
        process._spawned_at = at

    def note_resume(self, process: "Process", at: float) -> None:
        self._row(process.name)["resumes"] += 1

    def note_finish(self, process: "Process", at: float, failed: bool = False) -> None:
        row = self._row(process.name)
        row["finished"] += 1
        if failed:
            row["failed"] += 1
        row["last_finish_at"] = at
        spawned_at = getattr(process, "_spawned_at", None)
        if spawned_at is not None:
            row["lifetime"] += at - spawned_at

    # ------------------------------------------------------------------
    def rows(self):
        """(name, row) pairs sorted by name — deterministic export."""
        return sorted(self._rows.items())

    def to_dict(self):
        return {name: dict(row) for name, row in self.rows()}

    def render(self):
        lines = ["%-28s %8s %8s %8s %12s" % ("process", "spawned", "resumes", "done", "lifetime")]
        for name, row in self.rows():
            lines.append(
                "%-28s %8d %8d %8d %12.6f"
                % (name, row["spawned"], row["resumes"], row["finished"], row["lifetime"])
            )
        return "\n".join(lines)


class SimulationError(Exception):
    """Raised for misuse of the simulation API (not model-level errors)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    ``cause`` carries an arbitrary, caller-supplied payload describing why
    the interrupt happened (e.g. "preempted-by-compute").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is then *processed* by the simulator, which
    runs its callbacks (resuming any processes waiting on it).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on this event has ``exception`` raised at its
        yield point.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        # Mark handled pre-emptively; re-raised when a waiter observes it.
        self.sim._post(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (still inside simulated time ``sim.now``).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return "<%s %s at t=%.9g>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after its creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % (delay,))
        super().__init__(sim)
        self._delay = delay
        self._value = value
        sim._schedule_at(sim.now + delay, self)

    @property
    def delay(self) -> float:
        return self._delay


class _Initialize(Event):
    """Internal event that starts a new process on the next step."""

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule_at(sim.now, self)


class Process(Event):
    """A running coroutine; also an event that triggers on completion.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event triggers, the generator is resumed with the event's value (or the
    event's exception is thrown in).  The value of a ``return`` statement
    becomes the process's own event value.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("process requires a generator, got %r" % (generator,))
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        if sim.ledger is not None:
            sim.ledger.note_spawn(self, sim.now)
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._interrupt_target = self  # type: ignore[attr-defined]
        event.callbacks.append(self._deliver_interrupt)
        event._interrupt_cause = cause  # type: ignore[attr-defined]
        self.sim._schedule_at(self.sim.now, event, urgent=True)

    def _deliver_interrupt(self, event: Event) -> None:
        if self._triggered:
            return  # finished in the meantime; interrupt is a no-op
        cause = getattr(event, "_interrupt_cause", None)
        # Detach from whatever we were waiting for.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(Interrupt(cause), throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._exception is not None:
            self._step(event._exception, throw=True)
        else:
            self._step(event._value, throw=False)

    def _step(self, payload: Any, throw: bool) -> None:
        sim = self.sim
        previous = sim.active_process
        sim.active_process = self
        if sim.ledger is not None:
            sim.ledger.note_resume(self, sim.now)
        try:
            if throw:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            sim.active_process = previous
            if sim.ledger is not None:
                sim.ledger.note_finish(self, sim.now)
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process "successfully"
            # with the interrupt cause; this keeps preemption non-fatal.
            sim.active_process = previous
            if sim.ledger is not None:
                sim.ledger.note_finish(self, sim.now)
            self.succeed(exc.cause)
            return
        except BaseException as exc:
            sim.active_process = previous
            if sim.ledger is not None:
                sim.ledger.note_finish(self, sim.now, failed=True)
            self.fail(exc)
            return
        sim.active_process = previous
        if not isinstance(target, Event):
            self._step(
                SimulationError("process %r yielded non-event %r" % (self.name, target)),
                throw=True,
            )
            return
        if target.sim is not sim:
            self._step(SimulationError("yielded event from another simulator"), throw=True)
            return
        self._target = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._pending = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            self._pending += 1
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self._events)
            if event.triggered and event._exception is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered (fails fast on error)."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as one child event triggers."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event)."""

    #: queue priorities — urgent events (interrupt delivery) run before
    #: normal events scheduled for the same instant.
    _URGENT = 0
    _NORMAL = 1

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._seq = itertools.count()
        self.active_process: Optional[Process] = None
        self._step_count = 0
        #: opt-in process-activity ledger (see :class:`ProcessLedger`);
        #: ``None`` keeps process stepping on the fast path.
        self.ledger: Optional[ProcessLedger] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def steps(self) -> int:
        """Number of events processed so far (useful for loop guards)."""
        return self._step_count

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None, max_steps: int = 50_000_000) -> None:
        """Run until the queue drains, or simulated time reaches ``until``.

        ``max_steps`` guards against accidental infinite event loops in
        model code; exceeding it raises :class:`SimulationError`.
        """
        steps = 0
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self._dispatch()
            steps += 1
            if steps > max_steps:
                raise SimulationError("exceeded max_steps=%d" % max_steps)
        if until is not None and until > self._now:
            self._now = until

    def run_until(self, event: Event, max_steps: int = 50_000_000) -> Any:
        """Run until ``event`` has been processed; return its value."""
        steps = 0
        while not event.processed:
            if not self._queue:
                raise SimulationError("deadlock: event queue empty but %r pending" % event)
            self._dispatch()
            steps += 1
            if steps > max_steps:
                raise SimulationError("exceeded max_steps=%d" % max_steps)
        return event.value

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event, urgent: bool = False) -> None:
        priority = self._URGENT if urgent else self._NORMAL
        heapq.heappush(self._queue, (when, priority, next(self._seq), event))

    def _post(self, event: Event) -> None:
        """Schedule an already-triggered event for immediate processing."""
        self._schedule_at(self._now, event)

    def _dispatch(self) -> None:
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now - 1e-12:
            raise SimulationError("time went backwards")
        self._now = max(self._now, when)
        self._step_count += 1
        event._triggered = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # already processed (e.g. cancelled timeout)
        for callback in callbacks:
            callback(event)
        if event._exception is not None and isinstance(event, Process):
            # A process failing with nobody waiting is a real model bug:
            # surface it instead of swallowing it.
            if not callbacks:
                raise event._exception
