"""Deterministic discrete-event simulation engine.

The simulator is the substrate under every hardware and OS model in this
repository: components are generator coroutines scheduled on a shared
virtual clock.  See :mod:`repro.sim.core` for the event loop and
:mod:`repro.sim.resources` for semaphores and bandwidth-shared pipes.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessLedger,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import (
    BandwidthResource,
    PipeStats,
    Request,
    Resource,
    ResourceStats,
    TagStats,
    Transfer,
)
from .trace import NULL_TRACER, FlowEvent, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "FlowEvent",
    "Span",
    "Tracer",
    "AllOf",
    "AnyOf",
    "BandwidthResource",
    "Event",
    "Interrupt",
    "PipeStats",
    "Process",
    "ProcessLedger",
    "Request",
    "Resource",
    "ResourceStats",
    "SimulationError",
    "Simulator",
    "TagStats",
    "Timeout",
    "Transfer",
]
