"""Fleet fault tolerance: lifecycle, gray detection, hedging budgets.

The routing tier in :mod:`repro.fleet.router` assumed devices only fail
*politely* — a lane breaker opens and the device steps out of rotation.
Real device fleets fail in worse ways: a hub loses power mid-decode and
every byte of secure-world state (parked KV, resident parameters, the
attested TA image) dies with it; a reboot wedges in a loop; attestation
rejects the rebuilt world; and the nastiest failure of all is *gray* —
the device answers everything, slowly, and no error ever fires.

This module supplies the machinery the router composes into an
availability story:

* :class:`DeviceLifecycle` — the per-device state machine
  ``UP → DOWN → REBOOTING → ATTESTING → UP`` (with ``DEGRADED`` as the
  prober's quarantine parking orbit), exported as the
  ``fleet_device_state`` gauge series;
* :class:`FleetFaultDriver` — evaluates the ``fleet.*`` sites of a
  seeded :class:`~repro.faults.plan.FaultPlan` on a virtual-time tick,
  crashes/grays devices, and walks them back up through reboot and
  attestation (both of which can themselves fail, per plan);
* :class:`HealthProber` — active virtual-time probe loops with
  timeout + EWMA latency scoring against a clean baseline; gray devices
  are quarantined (``DEGRADED``) out of the eligible set and re-admitted
  when their EWMA recovers;
* :class:`HedgeBudget` — a per-tenant token bucket (virtual-time
  refill) bounding speculative hedges and failover retries, so a sick
  fleet cannot amplify its own load 2x;
* :class:`ResilienceConfig` — every knob in one dataclass;
* :class:`FleetResilience` — the facade :meth:`Fleet.start_resilience`
  wires up.

Everything here is deterministic: fault decisions come from the plan's
per-site streams, devices are visited in sorted-id order, and probe
loops live on the simulated clock — a seeded chaos run replays
bit-for-bit (the fleet chaos suite asserts exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "UP",
    "DEGRADED",
    "DOWN",
    "REBOOTING",
    "ATTESTING",
    "DEVICE_STATES",
    "DeviceLifecycle",
    "ResilienceConfig",
    "HedgeBudget",
    "HealthProber",
    "FleetFaultDriver",
    "FleetResilience",
]

# -- device lifecycle states ---------------------------------------------
UP = "up"  #: serving traffic
DEGRADED = "degraded"  #: quarantined by the prober (gray); drains, no new work
DOWN = "down"  #: crashed; secure-world state lost
REBOOTING = "rebooting"  #: firmware + OS boot (can loop, per plan)
ATTESTING = "attesting"  #: secure-world attestation (can fail, per plan)

#: state -> stable numeric code for the ``fleet_device_state`` gauge.
DEVICE_STATES: Dict[str, int] = {
    UP: 0,
    DEGRADED: 1,
    DOWN: 2,
    REBOOTING: 3,
    ATTESTING: 4,
}

#: the transitions the machine permits (anything else is a bug).
_TRANSITIONS = {
    UP: (DEGRADED, DOWN),
    DEGRADED: (UP, DOWN),
    DOWN: (REBOOTING,),
    REBOOTING: (REBOOTING, ATTESTING, DOWN),
    ATTESTING: (UP, REBOOTING, DOWN),
}


class DeviceLifecycle:
    """One device's availability state machine, on the shared clock.

    Transitions land in three places at once: the ``transitions`` list
    (tests), the ``fleet_device_state`` gauge labeled ``device=<id>``
    (dashboards/alerts), and the flight recorder when one is attached
    (postmortems).  Routing eligibility is simply ``state == UP``.
    """

    def __init__(self, sim, device_id: str, registry=None, recorder=None):
        self.sim = sim
        self.device_id = device_id
        self.registry = registry
        self.recorder = recorder
        self.state = UP
        self.since = sim.now
        #: (sim_time, new_state, reason) per transition.
        self.transitions: List[Tuple[float, str, str]] = []
        self.crashes = 0
        self.reboots = 0
        self.attest_failures = 0
        #: times the router drained this device's sessions/queue.
        self.drains = 0
        self._export()

    @property
    def routable(self) -> bool:
        return self.state == UP

    def to(self, state: str, reason: str = "") -> None:
        """Move to ``state`` (validated against the machine's edges)."""
        if state == self.state:
            return
        if state not in _TRANSITIONS[self.state]:
            raise ConfigurationError(
                "illegal lifecycle transition %s -> %s on %s"
                % (self.state, state, self.device_id)
            )
        self.state = state
        self.since = self.sim.now
        self.transitions.append((self.sim.now, state, reason))
        self._export()
        if self.registry is not None:
            self.registry.counter(
                "fleet_device_transitions_total",
                "Device lifecycle transitions, by device and new state.",
            ).inc(device=self.device_id, state=state)
        if self.recorder is not None:
            self.recorder.record(
                "fleet", "device.%s" % state, reason,
                device=self.device_id,
            )

    def _export(self) -> None:
        if self.registry is not None:
            self.registry.gauge(
                "fleet_device_state",
                "Device lifecycle state (0=up 1=degraded 2=down "
                "3=rebooting 4=attesting).",
            ).set(DEVICE_STATES[self.state], device=self.device_id)


@dataclass
class ResilienceConfig:
    """Every fault-tolerance knob of the routing tier, in one place.

    The defaults are tuned for the fleet benchmark's regime (interactive
    TTFT SLO of a few seconds, probe-visible gray slowdowns of 4x+);
    tests override freely.
    """

    # -- active probing (HealthProber) ---------------------------------
    #: seconds between probes of one device.
    probe_interval: float = 2.0
    #: a probe slower than this counts as timed out (and is clamped).
    probe_timeout: float = 5.0
    #: tiny prefill the analytic probe prices.
    probe_tokens: int = 8
    #: EWMA smoothing of probe latency.
    ewma_alpha: float = 0.4
    #: quarantine when EWMA exceeds ``factor x`` the clean baseline.
    quarantine_factor: float = 3.0
    #: re-admit a quarantined device when EWMA falls back under this.
    readmit_factor: float = 1.5
    # -- hedged retries (router) ---------------------------------------
    #: speculative second attempts on the next-ranked device.
    hedging: bool = True
    #: fire the hedge this fraction of the class TTFT SLO after routing
    #: (classes with no SLO never hedge) ...
    hedge_slo_fraction: float = 0.5
    #: ... unless an absolute delay is given, which wins.
    hedge_delay: Optional[float] = None
    #: per-tenant token bucket bounding hedges + non-crash failovers.
    hedge_budget_capacity: float = 8.0
    hedge_budget_refill_per_s: float = 0.1
    #: re-launches of a ticket whose every attempt failed.
    max_failovers: int = 3
    # -- fault driver / lifecycle timing -------------------------------
    #: seconds between fault-site evaluations per device.
    fault_check_interval: float = 1.0
    #: crash -> reboot start (power-cycle dead time).
    down_time: float = 2.0
    #: one reboot attempt (firmware + OS + TEE bring-up).
    reboot_time: float = 8.0
    #: one secure-world attestation round.
    attest_time: float = 2.0
    #: gray slowdown factor when the plan's spec carries none
    #: (``delay`` is reused as the factor; 0 means "use this default").
    gray_slowdown_default: float = 4.0
    #: gray episodes clear after this long when the spec has no window.
    gray_duration: float = 120.0

    def __post_init__(self):
        if self.probe_interval <= 0 or self.probe_timeout <= 0:
            raise ConfigurationError("probe interval/timeout must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.readmit_factor > self.quarantine_factor:
            raise ConfigurationError(
                "readmit_factor must not exceed quarantine_factor "
                "(the hysteresis band would be inverted)"
            )
        if self.hedge_budget_capacity < 0 or self.hedge_budget_refill_per_s < 0:
            raise ConfigurationError("hedge budget must be non-negative")
        if self.max_failovers < 0:
            raise ConfigurationError("max_failovers must be non-negative")


class HedgeBudget:
    """Per-tenant token bucket on the virtual clock.

    Hedges and budget-charged failovers each cost one token; tokens
    refill continuously at ``refill_per_s`` up to ``capacity``.  Lazy
    accrual (computed from the last touch time) keeps the bucket free of
    timer processes, so an idle tenant costs nothing.
    """

    def __init__(self, sim, capacity: float, refill_per_s: float):
        self.sim = sim
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._tokens: Dict[str, float] = {}
        self._touched: Dict[str, float] = {}
        self.taken: Dict[str, int] = {}
        self.denied: Dict[str, int] = {}

    def tokens(self, tenant: str) -> float:
        now = self.sim.now
        level = self._tokens.get(tenant, self.capacity)
        since = self._touched.get(tenant, now)
        return min(self.capacity, level + (now - since) * self.refill_per_s)

    def take(self, tenant: str) -> bool:
        """Spend one token if available; False (and counted) otherwise."""
        level = self.tokens(tenant)
        self._touched[tenant] = self.sim.now
        if level >= 1.0:
            self._tokens[tenant] = level - 1.0
            self.taken[tenant] = self.taken.get(tenant, 0) + 1
            return True
        self._tokens[tenant] = level
        self.denied[tenant] = self.denied.get(tenant, 0) + 1
        return False


class HealthProber:
    """Active health probing: one virtual-time loop per device.

    Each tick the loop prices an analytic probe on the device
    (:meth:`DeviceNode.probe_latency` — TA invoke plus a tiny prefill,
    gray slowdown included), folds it into a per-device EWMA, and
    compares against the clean baseline:

    * ``UP`` and ``EWMA > quarantine_factor x baseline`` (or the probe
      timed out) → ``DEGRADED``: the device leaves the eligible set
      while its queue drains naturally — the gray-failure quarantine the
      breaker can never provide, because a slow device *returns
      successes*;
    * ``DEGRADED`` and ``EWMA <= readmit_factor x baseline`` → ``UP``
      (hysteresis keeps flappy devices out).

    Down/rebooting/attesting devices are observed (the probe "fails
    fast") but not scored; re-admission after a reboot is the fault
    driver's job, gated on attestation, not on probes.
    """

    def __init__(self, router, config: ResilienceConfig):
        self.router = router
        self.sim = router.sim
        self.config = config
        self.quarantines = 0
        self.readmissions = 0
        self._probes = router.registry.counter(
            "fleet_probes_total", "Health probes, by device and outcome."
        )

    def start(self, until: float) -> None:
        for device_id in sorted(self.router.devices):
            device = self.router.devices[device_id]
            self.sim.process(
                self._probe_loop(device, until), name="fleet-probe:%s" % device_id
            )

    def _probe_loop(self, device, until: float):
        cfg = self.config
        baseline = device.probe_latency(cfg.probe_tokens, clean=True)
        device.probe_baseline = baseline
        while self.sim.now < until:
            yield self.sim.timeout(cfg.probe_interval)
            state = device.lifecycle.state
            if state in (DOWN, REBOOTING, ATTESTING):
                self._probes.inc(device=device.device_id, outcome="down")
                continue
            latency = device.probe_latency(cfg.probe_tokens)
            observed = min(latency, cfg.probe_timeout)
            yield self.sim.timeout(observed)
            timed_out = latency >= cfg.probe_timeout
            previous = device.probe_ewma
            ewma = (
                observed
                if previous is None
                else previous + cfg.ewma_alpha * (observed - previous)
            )
            device.probe_ewma = ewma
            self._probes.inc(
                device=device.device_id,
                outcome="timeout" if timed_out else "ok",
            )
            # Re-read: the device may have crashed during the probe wait.
            state = device.lifecycle.state
            if state == UP and (
                timed_out or ewma > cfg.quarantine_factor * baseline
            ):
                device.lifecycle.to(DEGRADED, "probe-quarantine")
                self.quarantines += 1
            elif state == DEGRADED and not timed_out and (
                ewma <= cfg.readmit_factor * baseline
            ):
                device.lifecycle.to(UP, "probe-readmit")
                self.readmissions += 1


class FleetFaultDriver:
    """Evaluates the ``fleet.*`` fault sites and drives device lifecycle.

    One virtual-time loop ticks every ``fault_check_interval`` seconds,
    visiting devices in sorted-id order (so every site's stream position
    is a pure function of the tick count — the determinism invariant the
    whole chaos suite leans on):

    * ``fleet.device_crash`` — the device's secure world dies on the
      spot: in-flight requests get :class:`~repro.errors.DeviceLost` at
      their next clock edge, queued ones are drained back to the router,
      pinned sessions are cut loose owing a re-warm, and a reboot
      process starts;
    * ``fleet.gray_slowdown`` — the device's surrogate latencies inflate
      by the spec's severity (``delay`` as factor, jittered) with *no*
      error signal — only the prober can catch it;
    * ``fleet.reboot_loop`` / ``fleet.attest_fail`` — the way back up
      re-rolls reboot or attestation, so a device can stick in a
      reboot/attest loop for as long as the plan keeps failing it.
    """

    def __init__(self, router, injector, config: ResilienceConfig):
        self.router = router
        self.sim = router.sim
        self.injector = injector
        self.config = config
        #: device_id -> sim time at which its gray episode clears.
        self._gray_until: Dict[str, float] = {}

    def start(self, until: float) -> None:
        self.sim.process(self._tick_loop(until), name="fleet-fault-driver")

    def _tick_loop(self, until: float):
        cfg = self.config
        while self.sim.now < until:
            yield self.sim.timeout(cfg.fault_check_interval)
            for device_id in sorted(self.router.devices):
                device = self.router.devices[device_id]
                state = device.lifecycle.state
                if state not in (UP, DEGRADED):
                    continue  # already down; the reboot process owns it
                if self.injector.fires("fleet.device_crash", device_id):
                    self._crash(device)
                    continue
                self._tick_gray(device)

    def _tick_gray(self, device) -> None:
        cfg = self.config
        device_id = device.device_id
        clear_at = self._gray_until.get(device_id)
        if clear_at is not None:
            if self.sim.now >= clear_at:
                device.set_slowdown(1.0)
                del self._gray_until[device_id]
            return  # one episode at a time
        if not self.injector.fires("fleet.gray_slowdown", device_id):
            return
        factor = self.injector.severity("fleet.gray_slowdown", device_id)
        if factor <= 1.0:
            factor = cfg.gray_slowdown_default
        device.set_slowdown(factor)
        spec = self.injector.plan.spec("fleet.gray_slowdown", device_id)
        self._gray_until[device_id] = (
            spec.window[1]
            if spec is not None and spec.window is not None
            else self.sim.now + cfg.gray_duration
        )

    def _crash(self, device) -> None:
        self._gray_until.pop(device.device_id, None)
        device.crash()  # -> DOWN; epoch bump kills in-flight work
        self.router.handle_device_down(device, reason="device-down")
        self.sim.process(
            self._reboot(device), name="fleet-reboot:%s" % device.device_id
        )

    def _reboot(self, device):
        cfg = self.config
        yield self.sim.timeout(cfg.down_time)
        while True:
            device.lifecycle.to(REBOOTING, "reboot")
            device.lifecycle.reboots += 1
            yield self.sim.timeout(cfg.reboot_time)
            if self.injector.fires("fleet.reboot_loop", device.device_id):
                continue  # firmware wedged; power-cycle and try again
            device.lifecycle.to(ATTESTING, "attest")
            yield self.sim.timeout(cfg.attest_time)
            if self.injector.fires("fleet.attest_fail", device.device_id):
                device.lifecycle.attest_failures += 1
                continue  # measurement rejected: back to reboot
            break
        device.restore_up("attested")


class FleetResilience:
    """The facade: fault driver + prober over one router, one plan."""

    def __init__(self, router, plan=None, config: Optional[ResilienceConfig] = None):
        self.router = router
        self.config = config or router.resilience or ResilienceConfig()
        if router.resilience is None:
            # Starting the tier opts the router into hedging/failover too.
            router.resilience = self.config
            router.hedge_budget = HedgeBudget(
                router.sim,
                self.config.hedge_budget_capacity,
                self.config.hedge_budget_refill_per_s,
            )
        self.injector = plan.injector(router.sim) if plan is not None else None
        self.prober = HealthProber(router, self.config)
        self.driver = (
            FleetFaultDriver(router, self.injector, self.config)
            if self.injector is not None
            else None
        )

    def start(self, until: float) -> "FleetResilience":
        self.prober.start(until)
        if self.driver is not None:
            self.driver.start(until)
        return self
