"""The fleet routing tier: placement, spillover, shedding, rebalance.

:class:`FleetRouter` fronts N :class:`~repro.fleet.device.DeviceNode`\\ s
sharing one simulator.  Per request it:

1. filters to *eligible* devices — those hosting the model whose lane
   breaker is not open (a device-level circuit open takes the device out
   of rotation, reusing :mod:`repro.serve.breaker` verbatim);
2. asks the placement policy for a preference ranking;
3. tries admission in rank order — a rejection (queue full, SLO shed,
   lane cooling down) *spills over* to the next choice rather than
   failing the request;
4. sheds at the fleet level (:class:`FleetSaturated`) only when every
   eligible device refused.

Multi-turn affinity lives here: a served turn pins its session to the
device (the KV holder), and the pin dissolves when that device's breaker
opens — the rebalance path — so sessions migrate off sick devices
instead of queueing behind them.

Fleet-wide counters land on the shared parent registry (unlabeled or
``device``-labeled), alongside the per-device children, so one export
and one :class:`~repro.obs.AlertEngine` cover the whole fleet;
:func:`FleetRouter.default_alert_rules` gives burn-rate coverage of the
fleet SLO and shed rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..obs.alerts import BurnRateRule
from ..serve.errors import AdmissionRejected
from ..serve.request import ServeRequest
from ..workloads.fleet import FleetRequest
from .device import DeviceNode
from .policies import PlacementPolicy, make_policy

__all__ = ["FleetSaturated", "FleetRouter"]


class FleetSaturated(AdmissionRejected):
    """Every eligible device refused admission (or none was eligible)."""

    reason = "fleet-saturated"


class FleetRouter:
    """Routes fleet requests across devices under a placement policy."""

    def __init__(
        self,
        devices: Sequence[DeviceNode],
        policy: Union[PlacementPolicy, str] = "cache-aware",
        registry: Optional[MetricsRegistry] = None,
    ):
        if not devices:
            raise ConfigurationError("a fleet needs at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate device ids: %s" % sorted(ids))
        sims = {id(d.sim) for d in devices}
        if len(sims) != 1:
            raise ConfigurationError("all fleet devices must share one simulator")
        self.devices: Dict[str, DeviceNode] = {d.device_id: d for d in devices}
        self.sim = devices[0].sim
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.registry = registry if registry is not None else MetricsRegistry()
        #: session_id -> device_id of the KV holder (last served turn).
        self.pins: Dict[str, str] = {}
        self.rebalanced_sessions = 0
        self.routed: List[ServeRequest] = []
        self.shed: List[FleetRequest] = []
        self.shed_reasons: Dict[str, int] = {}
        reg = self.registry
        self._requests_total = reg.counter(
            "fleet_requests_total", "requests offered to the fleet router"
        )
        self._routed_total = reg.counter(
            "fleet_routed_total", "requests admitted, by serving device"
        )
        self._spillover_total = reg.counter(
            "fleet_spillover_total", "admissions that fell through to a lower-ranked device"
        )
        # Unlabeled on purpose: the shed burn-rate rule reads the bare
        # series; per-reason counts live in ``shed_reasons``.
        self._shed_total = reg.counter(
            "fleet_shed_total", "requests refused by every eligible device"
        )
        self._rebalance_total = reg.counter(
            "fleet_rebalance_total", "session pins dissolved by a breaker opening"
        )
        self._slo_requests_total = reg.counter(
            "fleet_slo_requests_total", "completed fleet requests with an SLO verdict"
        )
        self._slo_total = reg.counter(
            "fleet_slo_total", "fleet SLO verdicts, by outcome"
        )

    # -- routing -------------------------------------------------------
    def eligible(self, request: FleetRequest) -> List[DeviceNode]:
        return [
            d
            for d in self.devices.values()
            if d.hosts(request.model_id) and not d.breaker_open(request.model_id)
        ]

    def route(self, request: FleetRequest) -> ServeRequest:
        """Place one request; raises :class:`FleetSaturated` on shed."""
        self._requests_total.inc()
        self._rebalance_if_pinned_sick(request)
        eligible = self.eligible(request)
        if not eligible:
            self._note_shed(request, "no-eligible-device")
            raise FleetSaturated(
                "no eligible device hosts %r" % request.model_id
            )
        ranked = self.policy.rank(list(eligible), request, self)
        for rank, device in enumerate(ranked):
            try:
                served = device.submit(request)
            except AdmissionRejected:
                self._spillover_total.inc(device=device.device_id)
                continue
            if rank > 0:
                served.spilled_over = True
            self._routed_total.inc(device=device.device_id)
            self.pins[request.session_id] = device.device_id
            served.completion.callbacks.append(
                lambda _event, served=served: self._note_done(served)
            )
            self.routed.append(served)
            return served
        self._note_shed(request, "fleet-saturated")
        raise FleetSaturated(
            "all %d eligible devices refused request for %r"
            % (len(ranked), request.model_id)
        )

    def _rebalance_if_pinned_sick(self, request: FleetRequest) -> None:
        pinned = self.pins.get(request.session_id)
        if pinned is None:
            return
        device = self.devices.get(pinned)
        if device is None or device.breaker_open(request.model_id):
            del self.pins[request.session_id]
            self.rebalanced_sessions += 1
            self._rebalance_total.inc()

    def rebalance(self) -> int:
        """Sweep every pin; dissolve those held by open-breaker devices.

        Returns the number of sessions cut loose.  The router also
        rebalances lazily per arriving request; this sweep is for
        operators reacting to a breaker-open alert.
        """
        cut = 0
        for session_id, device_id in list(self.pins.items()):
            device = self.devices.get(device_id)
            if device is None or any(
                lane.breaker.state == "open"
                for lane in device.gateway.lanes.values()
            ):
                del self.pins[session_id]
                cut += 1
        if cut:
            self.rebalanced_sessions += cut
            self._rebalance_total.inc(cut)
        return cut

    def _note_shed(self, request: FleetRequest, reason: str) -> None:
        self.shed.append(request)
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self._shed_total.inc()

    def _note_done(self, served: ServeRequest) -> None:
        attained = served.slo_attained
        if attained is None:
            return
        self._slo_requests_total.inc()
        self._slo_total.inc(outcome="attained" if attained else "violated")

    # -- observability -------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Fleet rollup of every device's :meth:`ServeGateway.health`."""
        devices = {
            device_id: self.devices[device_id].health()
            for device_id in sorted(self.devices)
        }
        return {
            "at": self.sim.now,
            "devices": devices,
            "queue_depth": sum(d["queue_depth"] for d in devices.values()),
            "completed": sum(d["completed"] for d in devices.values()),
            "failed": sum(d["failed"] for d in devices.values()),
            "shed": len(self.shed),
            "pinned_sessions": len(self.pins),
            "rebalanced_sessions": self.rebalanced_sessions,
            "healthy": all(d["healthy"] for d in devices.values()),
        }

    def default_alert_rules(
        self, slo_objective: float = 0.9, shed_objective: float = 0.95
    ) -> List[BurnRateRule]:
        """Multi-window burn-rate rules over the fleet-level counters."""
        return [
            BurnRateRule(
                name="fleet-slo-burn",
                total_metric="fleet_slo_requests_total",
                bad_metric="fleet_slo_total",
                bad_labels=(("outcome", "violated"),),
                objective=slo_objective,
            ),
            BurnRateRule(
                name="fleet-shed-burn",
                total_metric="fleet_requests_total",
                bad_metric="fleet_shed_total",
                objective=shed_objective,
            ),
        ]
