"""The fleet routing tier: placement, spillover, shedding, failover.

:class:`FleetRouter` fronts N :class:`~repro.fleet.device.DeviceNode`\\ s
sharing one simulator.  Per request it:

1. filters to *eligible* devices — those hosting the model, lifecycle
   ``UP`` (down/rebooting/attesting/quarantined devices are out of
   rotation), whose lane breaker is not open;
2. asks the placement policy for a preference ranking;
3. tries admission in rank order — a rejection (queue full, SLO shed,
   lane cooling down) *spills over* to the next choice rather than
   failing the request;
4. sheds at the fleet level (:class:`FleetSaturated`) only when every
   eligible device refused — recording failure provenance and a
   flight-recorder postmortem, like any other terminal failure.

Every routed request is wrapped in a :class:`FleetTicket` — the fleet's
unit of work, which may span several gateway attempts:

* **hedging** — when resilience is configured, a ticket that has not
  produced a first token by a fraction of its TTFT SLO launches one
  speculative attempt on the next-ranked device; first completion wins,
  the loser is cancelled mid-flight, and only the winner feeds SLO
  accounting (no double charge).  Hedges draw from a per-tenant
  :class:`~repro.fleet.resilience.HedgeBudget` so a gray fleet cannot
  amplify its own load;
* **failover** — an attempt that dies with
  :class:`~repro.errors.DeviceLost` (its device crashed underneath it)
  re-launches on an untried device for free; other terminal failures
  fail over on the tenant's budget, up to ``max_failovers``;
* **session re-warm** — a crash wipes the device's parked KV, so
  :meth:`handle_device_down` cuts the dead device's pins loose and the
  next turn of each orphaned session pays full prefill elsewhere; the
  re-prefilled context tokens are surfaced as
  ``fleet_rewarm_tokens_total``.

Multi-turn affinity lives here: a served turn pins its session to the
device (the KV holder), and the pin dissolves when that device sickens —
breaker open, lifecycle down, prober quarantine, or removal — counted by
reason on ``fleet_sessions_rebalanced``.

Fleet-wide counters land on the shared parent registry (unlabeled or
``device``-labeled), alongside the per-device children, so one export
and one :class:`~repro.obs.AlertEngine` cover the whole fleet;
:func:`FleetRouter.default_alert_rules` gives burn-rate coverage of the
fleet SLO, the shed rate, and the hedge rate (a hedge burn is the
cheapest early signal that part of the fleet went gray).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import ConfigurationError
from ..obs import MetricsRegistry, TraceContext
from ..obs.alerts import BurnRateRule
from ..serve.errors import AdmissionRejected
from ..serve.request import ServeRequest
from ..sim import Event
from ..workloads.fleet import FleetRequest
from .device import DeviceNode
from .policies import PlacementPolicy, make_policy
from .resilience import HedgeBudget, ResilienceConfig

__all__ = ["FleetSaturated", "FleetTicket", "FleetRouter"]


class FleetSaturated(AdmissionRejected):
    """Every eligible device refused admission (or none was eligible)."""

    reason = "fleet-saturated"


class FleetTicket:
    """One fleet request's routing lifecycle, across gateway attempts.

    The ticket is what :meth:`FleetRouter.route` returns and what the
    load generator awaits.  It exposes the same read surface as the
    single :class:`~repro.serve.request.ServeRequest` the router used to
    return (``completion``/``done``/``ttft``/``slo_attained``/...), but
    those now describe the *winning* attempt — hedges and failovers stay
    internal.  SLO accounting is ticket-level for exactly that reason: a
    request that hedged is one request, not two.
    """

    def __init__(self, ticket_id: int, request: FleetRequest, sim, deadline=None):
        self.ticket_id = ticket_id
        self.request = request
        self.sim = sim
        self.arrived_at = sim.now
        #: arrival + the class TTFT SLO (None when the class has none) —
        #: same instant the gateway stamps on the attempt, so unhedged
        #: ticket accounting is numerically identical to attempt-level.
        self.deadline: Optional[float] = deadline
        self.completion: Event = Event(sim)
        #: every gateway attempt launched for this ticket, in order.
        self.attempts: List[ServeRequest] = []
        #: device ids already tried (hedges/failovers go elsewhere).
        self.tried: Set[str] = set()
        self.winner: Optional[ServeRequest] = None
        self.state = "pending"  # pending | done | failed | shed
        self.hedges = 0
        self.failovers = 0
        #: attempts cancelled out from under us by a device drain.
        self.drains = 0
        #: context tokens re-prefilled because the pinned device died.
        self.rewarm_tokens = 0
        #: terminal provenance: (sim_time, kind, classification) entries.
        self.failures: List[Tuple[float, str, str]] = []
        self.postmortem: Optional[tuple] = None

    # -- the read surface the loadgen/tests consume --------------------
    @property
    def done(self) -> bool:
        return self.state == "done"

    @property
    def failed(self) -> bool:
        return self.state == "failed"

    @property
    def _latest(self) -> Optional[ServeRequest]:
        return self.winner if self.winner is not None else (
            self.attempts[-1] if self.attempts else None
        )

    @property
    def device_id(self) -> Optional[str]:
        latest = self._latest
        return latest.device_id if latest is not None else None

    @property
    def prompt_tokens(self) -> Optional[int]:
        """Effective (cache-discounted) prompt the serving attempt paid."""
        latest = self._latest
        return latest.prompt_tokens if latest is not None else None

    @property
    def spilled_over(self) -> bool:
        latest = self._latest
        return bool(latest is not None and latest.spilled_over)

    @property
    def first_token_at(self) -> Optional[float]:
        return self.winner.first_token_at if self.winner is not None else None

    @property
    def ttft(self) -> float:
        if self.winner is None or self.winner.first_token_at is None:
            raise ValueError("ticket %d has no first token yet" % self.ticket_id)
        return self.winner.first_token_at - self.arrived_at

    @property
    def e2e_latency(self) -> float:
        if self.winner is None or self.winner.finished_at is None:
            raise ValueError("ticket %d not finished" % self.ticket_id)
        return self.winner.finished_at - self.arrived_at

    @property
    def slo_attained(self) -> Optional[bool]:
        if self.deadline is None:
            return None
        at = self.first_token_at
        return at is not None and at <= self.deadline


class FleetRouter:
    """Routes fleet requests across devices under a placement policy."""

    def __init__(
        self,
        devices: Sequence[DeviceNode],
        policy: Union[PlacementPolicy, str] = "cache-aware",
        registry: Optional[MetricsRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
        recorder=None,
    ):
        if not devices:
            raise ConfigurationError("a fleet needs at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate device ids: %s" % sorted(ids))
        sims = {id(d.sim) for d in devices}
        if len(sims) != 1:
            raise ConfigurationError("all fleet devices must share one simulator")
        self.devices: Dict[str, DeviceNode] = {d.device_id: d for d in devices}
        self.sim = devices[0].sim
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.registry = registry if registry is not None else MetricsRegistry()
        #: hedging/failover knobs; None runs the pre-resilience router
        #: (single attempt per ticket, failures terminal) bit-for-bit.
        self.resilience = resilience
        self.recorder = recorder
        self.hedge_budget: Optional[HedgeBudget] = None
        if resilience is not None:
            self.hedge_budget = HedgeBudget(
                self.sim,
                resilience.hedge_budget_capacity,
                resilience.hedge_budget_refill_per_s,
            )
        #: session_id -> device_id of the KV holder (last served turn).
        self.pins: Dict[str, str] = {}
        #: attached by :class:`~repro.obs.telemetry.FleetTelemetry`: the
        #: terminal-ticket hooks feed the tenant accountant and the tail
        #: trace sampler.  ``None`` keeps every hook a no-op.
        self.telemetry = None
        #: attached by :meth:`~repro.fleet.cluster.Fleet.start_memory_view`:
        #: the fleet secure-memory observatory (repro.obs.memory).
        self.memory_view = None
        #: session_id -> dead device whose KV loss this session still owes
        #: a re-warm for (charged on its next routed turn).
        self._rewarm_owed: Dict[str, str] = {}
        self.rebalanced_sessions = 0
        self.tickets: List[FleetTicket] = []
        self.routed: List[ServeRequest] = []
        self.shed: List[FleetTicket] = []
        self.shed_reasons: Dict[str, int] = {}
        self.hedges = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.drained_requests = 0
        self.rewarm_tokens_total = 0
        reg = self.registry
        self._requests_total = reg.counter(
            "fleet_requests_total", "requests offered to the fleet router"
        )
        self._routed_total = reg.counter(
            "fleet_routed_total", "requests admitted, by serving device"
        )
        self._spillover_total = reg.counter(
            "fleet_spillover_total", "admissions that fell through to a lower-ranked device"
        )
        # Unlabeled on purpose: the shed burn-rate rule reads the bare
        # series; per-reason counts live in ``shed_reasons``.
        self._shed_total = reg.counter(
            "fleet_shed_total", "requests refused by every eligible device"
        )
        self._rebalanced = reg.counter(
            "fleet_sessions_rebalanced",
            "session pins dissolved, by reason (breaker-open / device-down / "
            "quarantined / missing-device)",
        )
        self._slo_requests_total = reg.counter(
            "fleet_slo_requests_total", "completed fleet tickets with an SLO verdict"
        )
        self._slo_total = reg.counter(
            "fleet_slo_total", "fleet SLO verdicts, by outcome"
        )
        self._hedges_total = reg.counter(
            "fleet_hedges_total", "speculative hedge attempts launched"
        )
        self._hedge_wins_total = reg.counter(
            "fleet_hedge_wins_total", "tickets whose hedge beat the primary"
        )
        self._hedge_denied_total = reg.counter(
            "fleet_hedge_denied_total", "hedges refused by the tenant budget"
        )
        self._failovers_total = reg.counter(
            "fleet_failovers_total", "ticket re-launches after a failed attempt"
        )
        self._drained_total = reg.counter(
            "fleet_drained_total", "queued attempts drained off a down device"
        )
        self._rewarm_total = reg.counter(
            "fleet_rewarm_tokens_total",
            "context tokens re-prefilled because their KV holder died",
        )
        self._failed_total = reg.counter(
            "fleet_failed_total", "tickets that ended failed, by reason"
        )

    # -- routing -------------------------------------------------------
    def eligible(self, request: FleetRequest) -> List[DeviceNode]:
        return [
            d
            for d in self.devices.values()
            if d.routable
            and d.hosts(request.model_id)
            and not d.breaker_open(request.model_id)
        ]

    def route(self, request: FleetRequest) -> FleetTicket:
        """Place one request; raises :class:`FleetSaturated` on shed."""
        self._requests_total.inc()
        self._rebalance_if_pinned_sick(request)
        ticket = FleetTicket(len(self.tickets), request, self.sim)
        eligible = self.eligible(request)
        if not eligible:
            self._note_shed(ticket, "no-eligible-device")
            exc = FleetSaturated(
                "no eligible device hosts %r" % request.model_id
            )
            exc.ticket = ticket
            raise exc
        ranked = self.policy.rank(list(eligible), request, self)
        served = self._try_devices(ticket, ranked)
        if served is None:
            self._note_shed(ticket, "fleet-saturated")
            exc = FleetSaturated(
                "all %d eligible devices refused request for %r"
                % (len(ranked), request.model_id)
            )
            exc.ticket = ticket
            raise exc
        # The primary attempt's deadline (arrival + class TTFT SLO) is
        # the ticket's: later hedge/failover attempts race against it.
        ticket.deadline = served.deadline
        self.tickets.append(ticket)
        self._note_rewarm(ticket)
        self._maybe_arm_hedge(ticket)
        return ticket

    def _try_devices(
        self,
        ticket: FleetTicket,
        ranked: Sequence[DeviceNode],
        hedge: bool = False,
    ) -> Optional[ServeRequest]:
        """Try admission down the ranking; wire up the accepted attempt."""
        request = ticket.request
        for rank, device in enumerate(ranked):
            if device.device_id in ticket.tried:
                continue
            # Per-attempt trace identity: two racing legs of one hedged
            # ticket must not alias each other's flow in the trace view,
            # and per-device gateways each mint request ids from 1 — so
            # the router stamps the ticket id + attempt index + device.
            ctx = TraceContext(
                ticket.ticket_id,
                span_id=len(ticket.attempts),
                tenant=request.tenant,
                device=device.device_id,
            )
            try:
                served = device.submit(request, ctx=ctx)
            except AdmissionRejected:
                self._spillover_total.inc(device=device.device_id)
                continue
            served.ticket = ticket
            served.hedge = hedge
            if rank > 0:
                served.spilled_over = True
            ticket.attempts.append(served)
            ticket.tried.add(device.device_id)
            self._routed_total.inc(device=device.device_id)
            if not hedge:
                # Hedges pin only if they win; a speculative loser must
                # not steal the session from the KV holder.
                self.pins[request.session_id] = device.device_id
            served.completion.callbacks.append(
                lambda _event, ticket=ticket, served=served: self._attempt_done(
                    ticket, served
                )
            )
            self.routed.append(served)
            return served
        return None

    # -- attempt outcomes ----------------------------------------------
    def _attempt_done(self, ticket: FleetTicket, served: ServeRequest) -> None:
        if served.cancelled or ticket.state != "pending":
            return  # a cancelled loser, or a straggler past the verdict
        if served.done:
            ticket.winner = served
            ticket.state = "done"
            if served.hedge:
                # The hedge won: its device now holds the session's KV.
                self.hedge_wins += 1
                self._hedge_wins_total.inc()
                self.pins[ticket.request.session_id] = served.device_id
            for other in ticket.attempts:
                if other is served or other.state in (
                    "done", "failed", "cancelled", "rejected",
                ):
                    continue
                loser = self.devices.get(other.device_id)
                if loser is not None:
                    loser.gateway.cancel(other, reason="hedge-loser")
            self._note_done(ticket)
            ticket.completion.succeed(ticket)
            return
        if served.failed:
            if served.failures:
                ticket.failures.append(served.failures[-1])
            live = [
                a
                for a in ticket.attempts
                if a.state not in ("done", "failed", "cancelled", "rejected")
            ]
            if live:
                return  # the other attempt may still win
            self._maybe_failover(ticket, served)

    def _maybe_failover(self, ticket: FleetTicket, failed: ServeRequest) -> None:
        if self.resilience is None:
            self._fail_ticket(ticket, "attempt-failed")
            return
        if ticket.failovers >= self.resilience.max_failovers:
            self._fail_ticket(ticket, "failover-exhausted")
            return
        # A DeviceLost attempt is the fleet's own fault (the device died
        # beneath it) — failing over is free.  Anything else burns the
        # tenant's budget, the same pool hedges draw from.
        device_lost = bool(ticket.failures) and ticket.failures[-1][1] == "DeviceLost"
        if not device_lost and not self.hedge_budget.take(ticket.request.tenant):
            self._fail_ticket(ticket, "failover-budget")
            return
        eligible = [
            d for d in self.eligible(ticket.request) if d.device_id not in ticket.tried
        ]
        if not eligible:
            self._fail_ticket(ticket, "failover-no-device")
            return
        ranked = self.policy.rank(eligible, ticket.request, self)
        served = self._try_devices(ticket, ranked)
        if served is None:
            self._fail_ticket(ticket, "failover-refused")
            return
        ticket.failovers += 1
        self.failovers += 1
        self._failovers_total.inc()
        if not device_lost and self.telemetry is not None:
            # The budget-charged failover spent a tenant hedge token.
            self.telemetry.note_budget_spend(ticket.request.tenant, served.device_id)
        self._note_rewarm(ticket)  # the relaunch is where the debt lands
        if self.recorder is not None:
            self.recorder.record(
                "fleet", "router.failover",
                "ticket %d -> %s" % (ticket.ticket_id, served.device_id),
                tenant=ticket.request.tenant,
                free=device_lost,
            )

    def _fail_ticket(self, ticket: FleetTicket, reason: str) -> None:
        ticket.state = "failed"
        ticket.failures.append((self.sim.now, "FleetFailed", reason))
        self._failed_total.inc(reason=reason)
        if self.telemetry is not None:
            self.telemetry.note_ticket_failed(ticket)
        if self.recorder is not None:
            self.recorder.record(
                "fleet", "router.failed", reason,
                tenant=ticket.request.tenant,
                model=ticket.request.model_id,
            )
            ticket.postmortem = self.recorder.tail()
        ticket.completion.succeed(ticket)

    # -- hedging -------------------------------------------------------
    def _maybe_arm_hedge(self, ticket: FleetTicket) -> None:
        cfg = self.resilience
        if cfg is None or not cfg.hedging:
            return
        if ticket.deadline is None:
            return  # no TTFT SLO: nothing to hedge against
        delay = (
            cfg.hedge_delay
            if cfg.hedge_delay is not None
            else cfg.hedge_slo_fraction * (ticket.deadline - ticket.arrived_at)
        )
        self.sim.process(
            self._hedge_timer(ticket, delay),
            name="fleet-hedge:t%d" % ticket.ticket_id,
        )

    def _hedge_timer(self, ticket: FleetTicket, delay: float):
        yield self.sim.timeout(delay)
        if ticket.state != "pending" or ticket.hedges:
            return
        if any(a.first_token_at is not None for a in ticket.attempts):
            return  # the primary already streamed: hedging can't help TTFT
        if not self.hedge_budget.take(ticket.request.tenant):
            self._hedge_denied_total.inc()
            return
        eligible = [
            d for d in self.eligible(ticket.request) if d.device_id not in ticket.tried
        ]
        if not eligible:
            return
        ranked = self.policy.rank(eligible, ticket.request, self)
        served = self._try_devices(ticket, ranked, hedge=True)
        if self.telemetry is not None:
            # The budget token is burned whether or not a device seated
            # the hedge — meter the spend where it actually landed.
            self.telemetry.note_budget_spend(
                ticket.request.tenant,
                served.device_id if served is not None else None,
            )
        if served is None:
            return
        ticket.hedges += 1
        self.hedges += 1
        self._hedges_total.inc()

    # -- device-down handling ------------------------------------------
    def handle_device_down(self, device: DeviceNode, reason: str = "device-down") -> None:
        """A device crashed: cut its pins loose, drain its queue, relaunch.

        Sessions pinned here lose their parked KV — each owes a re-warm,
        charged (and counted) when its next turn routes elsewhere.
        Queued attempts are cancelled out of the gateway and their
        tickets re-launched on surviving devices immediately; in-flight
        attempts die on their own via :class:`~repro.errors.DeviceLost`
        and take the failover path.
        """
        device.lifecycle.drains += 1
        cut = 0
        for session_id in sorted(self.pins):
            if self.pins[session_id] != device.device_id:
                continue
            del self.pins[session_id]
            self._rewarm_owed[session_id] = device.device_id
            cut += 1
        if cut:
            self.rebalanced_sessions += cut
            self._rebalanced.inc(cut, reason=reason)
        for served in device.gateway.drain_queued(reason=reason):
            self.drained_requests += 1
            self._drained_total.inc(device=device.device_id)
            ticket = served.ticket
            if ticket is None or ticket.state != "pending":
                continue
            ticket.drains += 1
            live = [
                a
                for a in ticket.attempts
                if a.state not in ("done", "failed", "cancelled", "rejected")
            ]
            if live:
                continue  # its hedge still runs elsewhere
            eligible = [
                d
                for d in self.eligible(ticket.request)
                if d.device_id not in ticket.tried
            ]
            relaunched = None
            if eligible:
                ranked = self.policy.rank(eligible, ticket.request, self)
                relaunched = self._try_devices(ticket, ranked)
            if relaunched is None:
                self._fail_ticket(ticket, "drain-no-capacity")
            else:
                self._note_rewarm(ticket)

    def _note_rewarm(self, ticket: FleetTicket) -> None:
        session_id = ticket.request.session_id
        if self._rewarm_owed.pop(session_id, None) is None:
            return
        # The KV the session lost covered its prefix + history; the new
        # device re-prefills those tokens from scratch (minus whatever
        # its own caches happen to discount — the counter reports the
        # debt, the clock charges the truth).
        rewarm = max(0, ticket.request.prompt_tokens - ticket.request.new_tokens)
        ticket.rewarm_tokens = rewarm
        if rewarm:
            self.rewarm_tokens_total += rewarm
            self._rewarm_total.inc(rewarm)

    # -- rebalance -----------------------------------------------------
    def _sick_reason(self, device: Optional[DeviceNode], model_id: Optional[str]) -> Optional[str]:
        """Why a pin on ``device`` should dissolve (None: keep it)."""
        if device is None:
            return "missing-device"
        state = device.lifecycle.state
        if state == "degraded":
            return "quarantined"
        if state != "up":
            return "device-down"
        if model_id is not None:
            if device.breaker_open(model_id):
                return "breaker-open"
        elif any(
            lane.breaker.state == "open"
            for lane in device.gateway.lanes.values()
        ):
            return "breaker-open"
        return None

    def _rebalance_if_pinned_sick(self, request: FleetRequest) -> None:
        pinned = self.pins.get(request.session_id)
        if pinned is None:
            return
        reason = self._sick_reason(self.devices.get(pinned), request.model_id)
        if reason is None:
            return
        del self.pins[request.session_id]
        self.rebalanced_sessions += 1
        self._rebalanced.inc(reason=reason)

    def rebalance(self) -> int:
        """Sweep every pin; dissolve those held by sick devices.

        A pin dissolves when its holder's breaker is open, its lifecycle
        left ``UP`` (down, rebooting, attesting, or prober-quarantined),
        or the device vanished.  Returns the number of sessions cut
        loose.  The router also rebalances lazily per arriving request;
        this sweep is for operators reacting to an alert.
        """
        cut = 0
        for session_id, device_id in list(self.pins.items()):
            reason = self._sick_reason(self.devices.get(device_id), None)
            if reason is None:
                continue
            del self.pins[session_id]
            cut += 1
            self._rebalanced.inc(reason=reason)
        if cut:
            self.rebalanced_sessions += cut
        return cut

    # -- terminal accounting -------------------------------------------
    def _note_shed(self, ticket: FleetTicket, reason: str) -> None:
        ticket.state = "shed"
        ticket.failures.append((self.sim.now, "FleetSaturated", reason))
        self.shed.append(ticket)
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self._shed_total.inc()
        if self.telemetry is not None:
            self.telemetry.note_ticket_shed(ticket)
        if self.recorder is not None:
            self.recorder.record(
                "fleet", "router.shed", reason,
                tenant=ticket.request.tenant,
                model=ticket.request.model_id,
            )
            ticket.postmortem = self.recorder.tail()
        ticket.completion.succeed(ticket)

    def _note_done(self, ticket: FleetTicket) -> None:
        if self.telemetry is not None:
            self.telemetry.note_ticket_done(ticket)
        attained = ticket.slo_attained
        if attained is None:
            return
        self._slo_requests_total.inc()
        self._slo_total.inc(outcome="attained" if attained else "violated")

    # -- observability -------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Fleet rollup of every device's :meth:`ServeGateway.health`."""
        devices = {
            device_id: self.devices[device_id].health()
            for device_id in sorted(self.devices)
        }
        return {
            "at": self.sim.now,
            "devices": devices,
            "queue_depth": sum(d["queue_depth"] for d in devices.values()),
            "completed": sum(d["completed"] for d in devices.values()),
            "failed": sum(d["failed"] for d in devices.values()),
            "shed": len(self.shed),
            "pinned_sessions": len(self.pins),
            "rebalanced_sessions": self.rebalanced_sessions,
            "hedges": self.hedges,
            "failovers": self.failovers,
            "healthy": all(d["healthy"] for d in devices.values()),
        }

    def default_alert_rules(
        self,
        slo_objective: float = 0.9,
        shed_objective: float = 0.95,
        hedge_objective: float = 0.9,
    ) -> List[BurnRateRule]:
        """Multi-window burn-rate rules over the fleet-level counters."""
        return [
            BurnRateRule(
                name="fleet-slo-burn",
                total_metric="fleet_slo_requests_total",
                bad_metric="fleet_slo_total",
                bad_labels=(("outcome", "violated"),),
                objective=slo_objective,
            ),
            BurnRateRule(
                name="fleet-shed-burn",
                total_metric="fleet_requests_total",
                bad_metric="fleet_shed_total",
                objective=shed_objective,
            ),
            # A hedge fires when a device sits on a request past its SLO
            # margin — the earliest fleet-wide symptom of gray failure.
            BurnRateRule(
                name="fleet-hedge-burn",
                total_metric="fleet_requests_total",
                bad_metric="fleet_hedges_total",
                objective=hedge_objective,
            ),
        ]
