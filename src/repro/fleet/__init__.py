"""repro.fleet — a simulated device cluster with a cache-aware routing tier.

The paper deploys one TrustZone device; this package asks the systems
question one level up: given a *fleet* of heterogeneous TZ-LLM devices
on one virtual clock, where should each request run?  Placement interacts
with everything the single-device stack models — cold restores, partial
parameter caching, session KV, admission control, circuit breakers — so
the routing tier reuses those pieces verbatim and adds only placement:

* :class:`DeviceNode` — one device: a per-device system (analytical
  :class:`SurrogateLLM` or full-fidelity TZLLM) behind its own
  :class:`~repro.serve.gateway.ServeGateway`, plus the session-KV and
  prefix caches that make placement matter;
* :class:`FleetRouter` — pluggable placement policies with spillover,
  fleet-level shedding, session pinning, and breaker-driven rebalance;
* :class:`Fleet` — facade wiring N devices + router + one fleet-wide
  metrics registry (per-device children) + burn-rate alerts;
* :class:`FleetLoadGenerator` — replays a
  :func:`~repro.workloads.fleet.generate_fleet_trace` stream and scores
  the run (throughput, TTFT percentiles, SLO attainment, sheds);
* :mod:`~repro.fleet.resilience` — the fault-tolerance tier: device
  lifecycle (``UP → DOWN → REBOOTING → ATTESTING → UP``), seeded
  crash/gray fault driving, active health probes that quarantine gray
  devices, and the per-tenant hedge/failover budget the router's
  :class:`~repro.fleet.router.FleetTicket` machinery draws on.
"""

from .cluster import Fleet
from .device import DeviceNode
from .loadgen import FleetLoadGenerator
from .policies import (
    POLICIES,
    CacheAwarePolicy,
    LeastOutstandingPolicy,
    ModelAwarePolicy,
    PlacementPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SessionAffinityPolicy,
    make_policy,
)
from .resilience import (
    DEVICE_STATES,
    DeviceLifecycle,
    FleetFaultDriver,
    FleetResilience,
    HealthProber,
    HedgeBudget,
    ResilienceConfig,
)
from .router import FleetRouter, FleetSaturated, FleetTicket
from .surrogate import SurrogateConfig, SurrogateLLM, scale_platform

__all__ = [
    "CacheAwarePolicy",
    "DEVICE_STATES",
    "DeviceLifecycle",
    "DeviceNode",
    "Fleet",
    "FleetFaultDriver",
    "FleetLoadGenerator",
    "FleetResilience",
    "FleetRouter",
    "FleetSaturated",
    "FleetTicket",
    "HealthProber",
    "HedgeBudget",
    "LeastOutstandingPolicy",
    "ModelAwarePolicy",
    "POLICIES",
    "PlacementPolicy",
    "RandomPolicy",
    "ResilienceConfig",
    "RoundRobinPolicy",
    "SessionAffinityPolicy",
    "SurrogateConfig",
    "SurrogateLLM",
    "make_policy",
    "scale_platform",
]
