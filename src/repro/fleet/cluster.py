"""One-stop fleet assembly: devices + router + observability on one clock.

:class:`Fleet` is the facade the examples and benchmarks use: give it
``(device_id, PlatformSpec)`` pairs and the model set, and it stands up
one shared :class:`~repro.sim.Simulator`, a fleet-wide
:class:`~repro.obs.MetricsRegistry` (per-device series through child
registries), one :class:`~repro.fleet.device.DeviceNode` per entry, the
:class:`~repro.fleet.router.FleetRouter`, and — on request — an
:class:`~repro.obs.AlertEngine` with the router's default burn-rate
rules and a :class:`~repro.obs.telemetry.FleetTelemetry` pipeline
(:meth:`Fleet.start_telemetry` / :meth:`Fleet.telemetry_snapshot`).
Tests that need finer control wire the pieces directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import PlatformSpec
from ..errors import ConfigurationError
from ..llm.models import ModelSpec
from ..obs import FlightRecorder, MetricsRegistry
from ..obs.alerts import AlertEngine
from ..obs.telemetry import FleetTelemetry, TelemetryConfig
from ..serve.gateway import GatewayConfig
from ..sim import Simulator
from .device import DeviceNode
from .policies import PlacementPolicy
from .resilience import FleetResilience, ResilienceConfig
from .router import FleetRouter
from .surrogate import SurrogateConfig

__all__ = ["Fleet"]


class Fleet:
    """A simulated device cluster behind one routing tier."""

    def __init__(
        self,
        platforms: Sequence[Tuple[str, PlatformSpec]],
        models: Sequence[ModelSpec],
        policy: Union[PlacementPolicy, str] = "cache-aware",
        gateway_config: Optional[GatewayConfig] = None,
        surrogate_config: Optional[SurrogateConfig] = None,
        warm: bool = False,
        sim: Optional[Simulator] = None,
        registry: Optional[MetricsRegistry] = None,
        session_capacity: int = 64,
        prefix_capacity: int = 16,
        resilience: Optional[ResilienceConfig] = None,
        recorder: Optional[FlightRecorder] = None,
    ):
        if not platforms:
            raise ConfigurationError("a fleet needs at least one platform")
        self.sim = sim if sim is not None else Simulator()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        self.models: List[ModelSpec] = list(models)
        self.devices: Dict[str, DeviceNode] = {}
        for device_id, platform in platforms:
            self.devices[device_id] = DeviceNode(
                device_id,
                models=models,
                platform=platform,
                sim=self.sim,
                gateway_config=gateway_config,
                registry=self.registry,
                recorder=recorder,
                surrogate_config=surrogate_config,
                session_capacity=session_capacity,
                prefix_capacity=prefix_capacity,
            )
        if warm:
            for device in self.devices.values():
                for model in models:
                    device.system.warm(model.model_id)
        self.router = FleetRouter(
            list(self.devices.values()),
            policy=policy,
            registry=self.registry,
            resilience=resilience,
            recorder=recorder,
        )
        self.alert_engine: Optional[AlertEngine] = None
        self.resilience: Optional[FleetResilience] = None
        self.telemetry: Optional[FleetTelemetry] = None
        self.memory = None

    # -- conveniences --------------------------------------------------
    def device(self, device_id: str) -> DeviceNode:
        try:
            return self.devices[device_id]
        except KeyError:
            raise ConfigurationError("no device %r in the fleet" % device_id)

    def route(self, request):
        return self.router.route(request)

    def health(self) -> Dict[str, object]:
        info = self.router.health()
        if self.alert_engine is not None:
            info["alerts_firing"] = self.alert_engine.firing()
            info["healthy"] = info["healthy"] and not info["alerts_firing"]
        if self.telemetry is not None:
            # Windowed rates from the time-series store — "how fast is
            # the fleet shedding *now*", not "has it ever shed".
            info["rates"] = self.telemetry.fleet_rates()
        return info

    def start_alerts(
        self, until: float, rules=None, interval: float = 0.25
    ) -> AlertEngine:
        """Attach an alert engine over the fleet registry and start its
        virtual-time ticker (default rules: the router's burn rates).
        When telemetry is already started, the engine also gets the
        time-series store, enabling :class:`~repro.obs.RateRule`\\ s."""
        if self.alert_engine is not None:
            raise ConfigurationError("alert engine already started")
        self.alert_engine = AlertEngine(
            self.sim,
            self.registry,
            rules=list(rules) if rules is not None else self.router.default_alert_rules(),
            interval=interval,
            store=None if self.telemetry is None else self.telemetry.store,
        )
        self.alert_engine.start(until)
        return self.alert_engine

    # -- telemetry ------------------------------------------------------
    def start_telemetry(
        self, until: float, config: Optional[TelemetryConfig] = None
    ) -> FleetTelemetry:
        """Stand up the telemetry pipeline (collector + store + tenant
        accountant + tail sampler) and start the virtual-time scrape
        loop.  Call before ``start_alerts`` to enable rate rules."""
        if self.telemetry is not None:
            raise ConfigurationError("telemetry already started")
        self.telemetry = FleetTelemetry(
            self.router,
            config=config,
            kv_bytes_per_token={
                m.model_id: m.kv_bytes_per_token() for m in self.models
            },
        )
        self.telemetry.start(until)
        return self.telemetry

    def telemetry_snapshot(self, window: Optional[float] = None) -> Dict[str, object]:
        """The operator snapshot (see :meth:`FleetTelemetry.snapshot`)."""
        if self.telemetry is None:
            raise ConfigurationError("telemetry not started (call start_telemetry)")
        return self.telemetry.snapshot(window)

    def start_memory_view(self):
        """Attach the fleet memory observatory (repro.obs.memory).

        Rides the telemetry scrape loop: the view refreshes inside every
        scrape (``pre_scrape``), so its gauges land in the same
        :class:`~repro.obs.telemetry.TimeSeriesStore` samples as the
        serving series.  Requires :meth:`start_telemetry` first.
        """
        if self.telemetry is None:
            raise ConfigurationError(
                "memory view rides the scrape loop (call start_telemetry first)"
            )
        if self.memory is not None:
            raise ConfigurationError("memory view already started")
        from ..obs.memory import FleetMemoryView

        view = FleetMemoryView(self.router, self.models)
        self.memory = view
        self.router.memory_view = view
        self.telemetry.collector.pre_scrape.append(view.refresh)
        return view

    def start_resilience(
        self,
        until: float,
        plan=None,
        config: Optional[ResilienceConfig] = None,
    ) -> FleetResilience:
        """Start the fault-tolerance tier: health probing (always) and
        the fault driver (when a :class:`~repro.faults.plan.FaultPlan`
        with ``fleet.*`` sites is given).  Hedging/failover knobs come
        from the ``resilience`` config the fleet was built with (or
        ``config`` here)."""
        if self.resilience is not None:
            raise ConfigurationError("resilience tier already started")
        self.resilience = FleetResilience(self.router, plan=plan, config=config)
        self.resilience.start(until)
        return self.resilience

    def render_metrics(self) -> str:
        return self.registry.render()
