"""A calibrated analytical device model for fleet-scale experiments.

Full-fidelity :class:`~repro.core.system.TZLLM` simulation walks every
granule restore, NPU job and SMC — tens of milliseconds of host CPU per
simulated request.  At fleet scale (10^5+ requests across many devices)
that fidelity is unaffordable and unnecessary: routing policies care
about the *shape* of device timing (cold restore vs warm hit, prefill
scaling with effective prompt length, bandwidth-bound decode), not about
individual granules.

:class:`SurrogateLLM` computes those times analytically from the same
:class:`~repro.config.PlatformSpec` and :class:`~repro.llm.models.ModelSpec`
that drive the full simulator:

* **cold restore** — framework checkpoint restore plus the model's bytes
  through ``min(flash sequential read, aggregate decrypt bandwidth)``,
  the pipelined restore's steady-state bottleneck (§5);
* **prefill** — prompt FLOPs split between the NPU and the CPU-resident
  fraction (norms, attention glue) per the platform's timing spec;
* **decode** — weight-streaming bandwidth bound per token, the regime
  the paper measures for single-batch decode.

It speaks the gateway's multi-model system protocol (a ``tas`` dict and
a model-id-first ``infer`` generator yielding on the shared clock and
returning an :class:`~repro.core.llm_ta.InferenceRecord`), so
:class:`~repro.serve.gateway.ServeGateway` drives it unchanged — with
admission, priorities, preemption gates, breakers and SLO accounting all
still real.  Determinism: the surrogate holds no RNG at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..config import GiB, PlatformSpec, RK3588
from ..core.llm_ta import InferenceRecord
from ..errors import ConfigurationError, DeviceLost
from ..llm.models import ModelSpec
from ..llm.runtime import DecodeResult

__all__ = ["SurrogateConfig", "SurrogateLLM", "scale_platform"]


def scale_platform(
    base: PlatformSpec,
    name: str,
    cpu: float = 1.0,
    npu: float = 1.0,
    mem: float = 1.0,
    flash: float = 1.0,
) -> PlatformSpec:
    """A heterogeneous fleet member: ``base`` with scaled subsystem rates.

    Scales compute throughput, memory bandwidth and flash read rate —
    the axes that differentiate phone-class, tablet-class and hub-class
    devices — while keeping protocol costs (SMC, TZASC programming)
    identical, since those are architectural, not binned.
    """
    return replace(
        base,
        name=name,
        cpu=replace(
            base.cpu,
            effective_gflops=base.cpu.effective_gflops * cpu,
            mem_bandwidth=base.cpu.mem_bandwidth * mem,
        ),
        npu=replace(
            base.npu,
            effective_gflops=base.npu.effective_gflops * npu,
            mem_bandwidth=base.npu.mem_bandwidth * mem,
        ),
        memory=replace(
            base.memory, total_bytes=int(base.memory.total_bytes * mem)
        ),
        flash=replace(base.flash, seq_read_bw=base.flash.seq_read_bw * flash),
    )


@dataclass
class SurrogateConfig:
    """Knobs of the analytical model (all orthogonal to the platform)."""

    #: memory available for resident model parameters (the rest is OS +
    #: apps + KV); models beyond the budget evict least-recently-used.
    model_budget_bytes: int = 8 * GiB
    #: token-boundary preemption granularity: the decode loop re-checks
    #: the gate every this many tokens (one simulator event each).
    preempt_check_tokens: int = 16
    #: use the framework checkpoint (paper's §5.3) instead of cold init.
    use_checkpoint: bool = True
    use_npu: bool = True


class _SurrogateTA:
    """Per-model slice of the surrogate: residency state + timing."""

    __slots__ = ("model", "resident", "last_used", "serves", "cold_restores")

    def __init__(self, model: ModelSpec):
        self.model = model
        self.resident = False
        self.last_used = -1.0
        self.serves = 0
        self.cold_restores = 0


class SurrogateLLM:
    """N protected models on one analytically-timed device."""

    def __init__(
        self,
        models: Sequence[ModelSpec],
        platform: PlatformSpec = RK3588,
        config: Optional[SurrogateConfig] = None,
        sim=None,
        device_name: str = "",
    ):
        if not models:
            raise ConfigurationError("need at least one model")
        ids = [m.model_id for m in models]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate model ids")
        if sim is None:
            from ..sim import Simulator

            sim = Simulator()
        self.sim = sim
        self.platform = platform
        self.config = config or SurrogateConfig()
        self.device_name = device_name
        self.tas: Dict[str, _SurrogateTA] = {
            m.model_id: _SurrogateTA(m) for m in models
        }
        #: one fault per entry, consumed in order by the next infer on the
        #: model — lets tests and chaos drills open a lane breaker.
        self._faults: Dict[str, List[BaseException]] = {}
        self.records: List[InferenceRecord] = []
        #: gray-failure multiplier on every analytically-priced duration
        #: (restore, prefill, decode, probes).  1.0 = healthy; a gray
        #: device inflates latency without raising a single error.
        self.slowdown = 1.0
        #: crash epoch: bumped by :meth:`crash`; in-flight inferences
        #: compare their birth epoch after every yield and die with
        #: :class:`~repro.errors.DeviceLost` when the device rebooted
        #: beneath them.
        self.epoch = 0
        self.crashes = 0
        #: True between :meth:`crash` and :meth:`restore`: the secure
        #: world is gone, so new inferences die on arrival too.
        self.down = False

    # -- timing model --------------------------------------------------
    def restore_time(self, model: ModelSpec) -> float:
        """Cold path: framework state + parameters through the pipeline
        bottleneck (flash read vs aggregate decrypt, whichever is slower)."""
        spec = self.platform
        framework = (
            spec.timing.checkpoint_restore
            if self.config.use_checkpoint
            else spec.timing.framework_init
        )
        bottleneck = min(
            spec.flash.seq_read_bw,
            spec.crypto.aggregate_decrypt_bw(spec.cpu.big_cores),
        )
        return framework + model.param_bytes / bottleneck

    def prefill_time(self, model: ModelSpec, prompt_tokens: int) -> float:
        spec = self.platform
        flops = model.prefill_flops(max(1, prompt_tokens))
        if self.config.use_npu:
            cpu_frac = spec.timing.cpu_resident_prefill_fraction
            npu_part = flops * (1.0 - cpu_frac) / (spec.npu.effective_gflops * 1e9)
            cpu_part = flops * cpu_frac / (spec.cpu.effective_gflops * 1e9)
            return spec.npu.job_launch_latency + npu_part + cpu_part
        return flops / (spec.cpu.effective_gflops * 1e9)

    def decode_time_per_token(self, model: ModelSpec) -> float:
        """Single-batch decode streams the weights once per token."""
        return model.param_bytes / self.platform.cpu.mem_bandwidth

    # -- residency -----------------------------------------------------
    def warm(self, model_id: str) -> None:
        """Pre-load a model (provisioning-time warm-up, no clock cost)."""
        self._make_resident(self._ta(model_id))

    def resident_models(self) -> List[str]:
        return sorted(m for m, ta in self.tas.items() if ta.resident)

    def _ta(self, model_id: str) -> _SurrogateTA:
        try:
            return self.tas[model_id]
        except KeyError:
            raise ConfigurationError("no TA hosts model %r" % model_id)

    def _make_resident(self, ta: _SurrogateTA) -> None:
        ta.resident = True
        ta.last_used = self.sim.now
        budget = self.config.model_budget_bytes
        used = sum(t.model.param_bytes for t in self.tas.values() if t.resident)
        # Evict least-recently-used models until the newcomer fits.
        while used > budget:
            victims = [t for t in self.tas.values() if t.resident and t is not ta]
            if not victims:
                break  # a single oversized model stays resident
            victim = min(victims, key=lambda t: (t.last_used, t.model.model_id))
            victim.resident = False
            used -= victim.model.param_bytes

    # -- fault injection ----------------------------------------------
    def inject_fault(self, model_id: str, exc: BaseException) -> None:
        """Queue one failure for the next inference on ``model_id``."""
        self._faults.setdefault(model_id, []).append(exc)

    # -- whole-device failure ------------------------------------------
    def crash(self) -> None:
        """The device dies: all secure-world state is lost at once.

        Residency is cleared (parameters must cold-restore after the
        reboot), queued lane faults are dropped with the old world, and
        the epoch bump makes every in-flight inference raise
        :class:`~repro.errors.DeviceLost` at its next clock edge.
        """
        self.epoch += 1
        self.crashes += 1
        self.down = True
        self.slowdown = 1.0  # whatever grayed the old world died with it
        for ta in self.tas.values():
            ta.resident = False
        self._faults.clear()

    def restore(self) -> None:
        """Post-reboot: the rebuilt secure world accepts work again."""
        self.down = False

    def probe_latency(self, probe_tokens: int = 8, clean: bool = False) -> float:
        """An analytic health probe: TA invoke + a tiny prefill.

        The prober compares the live value (gray slowdown included)
        against ``clean=True`` — the healthy baseline — to score EWMA
        degradation without modeling probe traffic through admission.
        """
        model = self.tas[min(self.tas)].model
        base = self.platform.timing.ta_invoke_latency + self.prefill_time(
            model, probe_tokens
        )
        return base if clean else base * self.slowdown

    # -- the serving interface -----------------------------------------
    def infer(
        self,
        model_id: str,
        prompt_tokens: int,
        output_tokens: int = 0,
        preempt=None,
        ctx=None,
    ):
        """Generator: one request on the named model (gateway protocol)."""
        sim = self.sim
        ta = self._ta(model_id)
        model = ta.model
        if self.down:
            # Dispatched in the same instant the device died (or onto a
            # not-yet-restored one): there is no world to run in.
            raise DeviceLost(
                "device %s is down" % (self.device_name or "surrogate")
            )
        epoch = self.epoch
        faults = self._faults.get(model_id)
        if faults:
            raise faults.pop(0)
        record = InferenceRecord(
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            started_at=sim.now,
        )
        ttft = self.platform.timing.ta_invoke_latency
        if not ta.resident:
            restore = self.restore_time(model)
            ttft += restore
            record.init_time = restore
            ta.cold_restores += 1
        else:
            record.cached_bytes = model.param_bytes
        ttft += self.platform.timing.kv_activation_alloc
        ttft += self.prefill_time(model, prompt_tokens)
        yield sim.timeout(ttft * self.slowdown)
        if self.epoch != epoch:
            raise DeviceLost(
                "device %s crashed mid-prefill" % (self.device_name or "surrogate")
            )
        self._make_resident(ta)
        record.ttft = sim.now - record.started_at
        record.first_token_at = sim.now
        tpt = self.decode_time_per_token(model)
        decoded = 0
        preempted = False
        chunk = max(1, self.config.preempt_check_tokens)
        while decoded < output_tokens:
            if preempt is not None and preempt():
                preempted = True
                break
            step = min(chunk, output_tokens - decoded)
            yield sim.timeout(step * tpt * self.slowdown)
            if self.epoch != epoch:
                raise DeviceLost(
                    "device %s crashed mid-decode" % (self.device_name or "surrogate")
                )
            decoded += step
        record.preempted = preempted
        if output_tokens > 0 or decoded:
            record.decode = DecodeResult(
                token_ids=list(range(decoded)),
                step_times=[tpt] * decoded,
                stopped_early=preempted,
            )
        ta.serves += 1
        ta.last_used = sim.now
        self.records.append(record)
        return record
