"""Replay a fleet trace through the router and gather the outcomes.

The fleet analogue of :class:`~repro.serve.loadgen.LoadGenerator`:
arrivals submit on the shared clock through
:meth:`~repro.fleet.router.FleetRouter.route`, fleet-level sheds are
collected (not raised), and ``run_blocking()`` returns once every
admitted request completed.  :meth:`summary` condenses the run into the
numbers the routing benchmark compares: throughput, TTFT percentiles,
SLO attainment, shed/spillover counts, and per-device load spread.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import percentile
from ..serve.errors import AdmissionRejected
from ..workloads.fleet import FleetRequest
from .router import FleetRouter, FleetTicket

__all__ = ["FleetLoadGenerator"]


class FleetLoadGenerator:
    """Drives one fleet trace to completion and summarizes the outcome."""

    def __init__(self, router: FleetRouter, trace: Sequence[FleetRequest]):
        self.router = router
        self.trace = list(trace)
        self.admitted: List[FleetTicket] = []
        self.rejected: List[Tuple[FleetRequest, AdmissionRejected]] = []

    def run(self):
        sim = self.router.sim
        for event in self.trace:
            if sim.now < event.at:
                yield sim.timeout(event.at - sim.now)
            try:
                self.admitted.append(self.router.route(event))
            except AdmissionRejected as exc:
                self.rejected.append((event, exc))
        pending = [r.completion for r in self.admitted if not r.completion.triggered]
        if pending:
            yield sim.all_of(pending)

    def run_blocking(self) -> "FleetLoadGenerator":
        sim = self.router.sim
        proc = sim.process(self.run(), name="fleet-loadgen")
        sim.run_until(proc)
        return self

    # -- outcomes ------------------------------------------------------
    @property
    def completed(self) -> List[FleetTicket]:
        return [r for r in self.admitted if r.done]

    @property
    def offered(self) -> int:
        return len(self.trace)

    def summary(self) -> Dict[str, object]:
        """JSON-stable scorecard of the replay (the benchmark's columns)."""
        done = self.completed
        ttfts = [r.ttft for r in done]
        verdicts = [r.slo_attained for r in done if r.slo_attained is not None]
        per_device: Dict[str, int] = {}
        spilled = 0
        for r in self.admitted:
            if r.device_id is not None:
                per_device[r.device_id] = per_device.get(r.device_id, 0) + 1
            if getattr(r, "spilled_over", False):
                spilled += 1
        sim_time = self.router.sim.now
        return {
            "offered": self.offered,
            "admitted": len(self.admitted),
            "completed": len(done),
            "failed": sum(1 for r in self.admitted if r.failed),
            "shed": len(self.rejected),
            "spillover": spilled,
            "throughput_rps": (len(done) / sim_time) if sim_time > 0 else 0.0,
            "ttft_p50": percentile(ttfts, 50) if ttfts else 0.0,
            "ttft_p99": percentile(ttfts, 99) if ttfts else 0.0,
            "slo_attainment": (
                sum(1 for v in verdicts if v) / len(verdicts) if verdicts else 1.0
            ),
            "rebalanced_sessions": self.router.rebalanced_sessions,
            "per_device": dict(sorted(per_device.items())),
            # -- resilience scorecard (all zero when the tier is off) --
            "availability": (len(done) / self.offered) if self.offered else 1.0,
            "hedges": self.router.hedges,
            "hedge_wins": self.router.hedge_wins,
            "failovers": self.router.failovers,
            "drained": self.router.drained_requests,
            "rewarm_tokens": self.router.rewarm_tokens_total,
        }
