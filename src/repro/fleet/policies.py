"""Placement policies: who serves the next request, in preference order.

A policy ranks the *eligible* devices (those hosting the model with a
closed breaker — the router pre-filters) for one request; the router
then tries them in order, falling through to the next on admission
rejection (spillover).  Returning a ranking rather than a single pick is
what makes spillover natural: the policy's second choice is exactly
where an overflowing request should land.

Every policy is deterministic: :class:`RandomPolicy` owns a seeded RNG,
ties everywhere break on ``device_id``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from ..workloads.fleet import FleetRequest
from .device import DeviceNode

__all__ = [
    "PlacementPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "SessionAffinityPolicy",
    "ModelAwarePolicy",
    "CacheAwarePolicy",
    "POLICIES",
    "make_policy",
]


class PlacementPolicy:
    """Interface: rank eligible devices for a request."""

    name = "abstract"

    def rank(
        self, devices: List[DeviceNode], request: FleetRequest, router
    ) -> List[DeviceNode]:
        raise NotImplementedError


class RandomPolicy(PlacementPolicy):
    """Uniform-random placement — the baseline every comparison needs."""

    name = "random"

    def __init__(self, seed: int = 7):
        self._rng = random.Random(seed)

    def rank(self, devices, request, router):
        order = sorted(devices, key=lambda d: d.device_id)
        self._rng.shuffle(order)
        return order


class RoundRobinPolicy(PlacementPolicy):
    """Rotate through devices in id order, one step per request."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def rank(self, devices, request, router):
        order = sorted(devices, key=lambda d: d.device_id)
        start = self._next % len(order)
        self._next += 1
        return order[start:] + order[:start]


class LeastOutstandingPolicy(PlacementPolicy):
    """Join the shortest queue (queued + running)."""

    name = "least-outstanding"

    def rank(self, devices, request, router):
        return sorted(devices, key=lambda d: (d.outstanding(), d.device_id))


class SessionAffinityPolicy(PlacementPolicy):
    """Return multi-turn sessions to the device holding their KV.

    The router's pin map (session -> device that served the last turn)
    ranks first; everyone else follows the fallback policy's order.
    """

    name = "session-affinity"

    def __init__(self, fallback: PlacementPolicy = None):
        self.fallback = fallback or LeastOutstandingPolicy()

    def rank(self, devices, request, router):
        order = self.fallback.rank(devices, request, router)
        pinned = router.pins.get(request.session_id)
        if pinned is not None:
            order = sorted(
                order, key=lambda d: 0 if d.device_id == pinned else 1
            )  # stable: fallback order within each group
        return order


class ModelAwarePolicy(PlacementPolicy):
    """Prefer devices where the model's TA is warm (no cold restore)."""

    name = "model-aware"

    def __init__(self, fallback: PlacementPolicy = None):
        self.fallback = fallback or LeastOutstandingPolicy()

    def rank(self, devices, request, router):
        order = self.fallback.rank(devices, request, router)
        return sorted(
            order, key=lambda d: 0 if d.model_warm(request.model_id) else 1
        )


class CacheAwarePolicy(PlacementPolicy):
    """Score devices on every cache signal at once, minus load.

    ``score = session-KV tokens reusable + prefix tokens reusable
    + model-warm bonus - outstanding-work penalty`` — the composite the
    fleet benchmark pits against random and least-outstanding routing.
    The warm bonus and load penalty are in token units: a warm model is
    worth roughly the prompt tokens a cold restore would otherwise cost,
    and each outstanding request costs about one average prompt of
    queueing.
    """

    name = "cache-aware"

    def __init__(
        self,
        warm_bonus_tokens: float = 512.0,
        load_penalty_tokens: float = 256.0,
        slow_penalty_tokens: float = 256.0,
    ):
        self.warm_bonus_tokens = warm_bonus_tokens
        self.load_penalty_tokens = load_penalty_tokens
        self.slow_penalty_tokens = slow_penalty_tokens

    def score(self, device: DeviceNode, request: FleetRequest, router) -> float:
        score = float(
            max(
                device.session_hit_tokens(request),
                device.prefix_hit_tokens(request),
            )
        )
        if device.model_warm(request.model_id):
            score += self.warm_bonus_tokens
        score -= self.load_penalty_tokens * device.outstanding()
        # Prober signal: a device whose probe EWMA runs hot relative to
        # its clean baseline is slow *right now* (gray but not yet
        # quarantined) — penalize in proportion.  Devices never probed
        # (no resilience tier running) score exactly as before.
        ewma, baseline = device.probe_ewma, device.probe_baseline
        if ewma is not None and baseline:
            score -= self.slow_penalty_tokens * max(0.0, ewma / baseline - 1.0)
        return score

    def rank(self, devices, request, router):
        return sorted(
            devices,
            key=lambda d: (-self.score(d, request, router), d.device_id),
        )


#: name -> zero-argument factory (policies carry per-run state).
POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "random": RandomPolicy,
    "round-robin": RoundRobinPolicy,
    "least-outstanding": LeastOutstandingPolicy,
    "session-affinity": SessionAffinityPolicy,
    "model-aware": ModelAwarePolicy,
    "cache-aware": CacheAwarePolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by registry name."""
    factory = POLICIES.get(name)
    if factory is None:
        raise ConfigurationError(
            "unknown policy %r (want one of %s)" % (name, "/".join(sorted(POLICIES)))
        )
    return factory()
