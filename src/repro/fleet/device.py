"""One fleet member: a serving gateway plus the caches routing feeds on.

A :class:`DeviceNode` wraps a per-device system (a fleet
:class:`~repro.fleet.surrogate.SurrogateLLM` by default, or a
full-fidelity :class:`~repro.core.system.TZLLM` /
:class:`~repro.core.multi.TZLLMMulti` when the experiment warrants it)
behind its own :class:`~repro.serve.gateway.ServeGateway`, and tracks the
two cache populations that make placement matter:

* **session KV** — a served turn leaves the session's KV resident, so a
  follow-up routed back here prefers prefilling only its *new* tokens;
* **prefix cache** — tenants sharing a system prompt reuse its prefill
  when they land where that prefix was recently computed.

Those caches live at the fleet layer by design: the TA model underneath
(surrogate or full) sees only the *effective* prompt length after cache
discounts, which keeps full-fidelity and surrogate devices routable by
the same policies.  All metrics land on a per-device child of the
fleet-wide registry, labeled ``device=<id>``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from ..config import PlatformSpec, RK3588
from ..errors import ConfigurationError
from ..llm.models import ModelSpec
from ..serve.gateway import GatewayConfig, ServeGateway
from ..serve.request import ServeRequest
from ..workloads.fleet import FleetRequest
from .resilience import UP, DeviceLifecycle
from .surrogate import SurrogateConfig, SurrogateLLM

__all__ = ["DeviceNode"]


class _ObsView:
    """The minimal observability bundle the gateway consumes."""

    __slots__ = ("registry", "recorder")

    def __init__(self, registry, recorder=None):
        self.registry = registry
        self.recorder = recorder


class DeviceNode:
    """A device in the fleet: gateway + platform + routing-relevant caches."""

    def __init__(
        self,
        device_id: str,
        models: Sequence[ModelSpec] = (),
        platform: PlatformSpec = RK3588,
        sim=None,
        system=None,
        gateway_config: Optional[GatewayConfig] = None,
        registry=None,
        recorder=None,
        surrogate_config: Optional[SurrogateConfig] = None,
        session_capacity: int = 64,
        prefix_capacity: int = 16,
    ):
        if not device_id:
            raise ConfigurationError("device_id must be non-empty")
        self.device_id = device_id
        self.platform = platform
        if system is None:
            if not models:
                raise ConfigurationError(
                    "device %r needs models (or a prebuilt system)" % device_id
                )
            system = SurrogateLLM(
                models,
                platform=platform,
                config=surrogate_config,
                sim=sim,
                device_name=device_id,
            )
        self.system = system
        self.sim = system.sim
        #: per-device metrics: a child of the fleet registry when one is
        #: given (series labeled ``device=<id>``), else standalone.
        observability = None
        if registry is not None:
            observability = _ObsView(registry.child(device=device_id), recorder)
        self.gateway = ServeGateway(
            system,
            config=gateway_config,
            observability=observability,
            gateway_id=device_id,
        )
        #: availability state machine (UP/DEGRADED/DOWN/REBOOTING/ATTESTING),
        #: exported as the ``fleet_device_state`` gauge on the parent registry.
        self.lifecycle = DeviceLifecycle(
            self.sim, device_id, registry=registry, recorder=recorder
        )
        #: health-prober scoring (EWMA of probe latency; clean baseline).
        self.probe_ewma: Optional[float] = None
        self.probe_baseline: Optional[float] = None
        self.session_capacity = session_capacity
        self.prefix_capacity = prefix_capacity
        #: session_id -> KV tokens resident here (LRU).
        self.sessions: "OrderedDict[str, int]" = OrderedDict()
        #: session_id -> model_id, parallel to ``sessions`` — the memory
        #: view prices a parked session's KV bytes at that model's rate.
        self.session_model: Dict[str, str] = {}
        #: prefix_id -> prefix tokens computed here (LRU).
        self.prefixes: "OrderedDict[str, int]" = OrderedDict()
        self.served: List[ServeRequest] = []

    # -- routing signals ----------------------------------------------
    @property
    def routable(self) -> bool:
        """Lifecycle says this device may receive new traffic."""
        return self.lifecycle.state == UP

    def hosts(self, model_id: str) -> bool:
        return model_id in self.gateway.lanes

    def breaker_open(self, model_id: str) -> bool:
        lane = self.gateway.lanes.get(model_id)
        return lane is not None and lane.breaker.state == "open"

    def outstanding(self) -> int:
        """Queued plus running — the router's load signal."""
        return self.gateway.queue_depth + sum(
            len(lane.running) for lane in self.gateway.lanes.values()
        )

    def model_warm(self, model_id: str) -> bool:
        """The model's parameters are resident (no cold restore needed)."""
        resident = getattr(self.system, "resident_models", None)
        if resident is not None:
            return model_id in resident()
        # Full-fidelity systems: a TA with cached parameter groups counts.
        tas = getattr(self.system, "tas", None)
        ta = tas.get(model_id) if tas is not None else getattr(self.system, "ta", None)
        return bool(getattr(ta, "cached_groups", 0))

    def session_hit_tokens(self, request: FleetRequest) -> int:
        """KV tokens this device can reuse for the request's session."""
        stored = self.sessions.get(request.session_id)
        if stored is None:
            return 0
        return min(stored, request.prefix_tokens + request.context_tokens)

    def prefix_hit_tokens(self, request: FleetRequest) -> int:
        if not request.prefix_id or request.prefix_id not in self.prefixes:
            return 0
        return min(self.prefixes[request.prefix_id], request.prefix_tokens)

    def effective_prompt_tokens(self, request: FleetRequest) -> int:
        """Prompt length after discounting KV already resident here.

        A session hit subsumes the prefix hit (the session's KV starts
        with the prefix), so the larger of the two applies, never both.
        """
        discount = max(self.session_hit_tokens(request), self.prefix_hit_tokens(request))
        return max(1, request.prompt_tokens - discount)

    # -- submission ----------------------------------------------------
    def submit(self, request: FleetRequest, ctx=None) -> ServeRequest:
        """Admit one fleet request here (may raise AdmissionRejected).

        ``ctx`` is the router's per-attempt trace identity; without one
        the gateway mints its own (device-local) context.
        """
        served = self.gateway.submit(
            prompt_tokens=self.effective_prompt_tokens(request),
            output_tokens=request.output_tokens,
            model_id=request.model_id,
            priority=request.priority,
            tenant=request.tenant,
            ctx=ctx,
        )
        served.fleet_request = request
        served.device_id = self.device_id
        served.completion.callbacks.append(
            lambda _event: self._note_served(request, served)
        )
        return served

    def _note_served(self, request: FleetRequest, served: ServeRequest) -> None:
        if served.failed or served.cancelled:
            return
        self.served.append(served)
        # The turn's full KV (prefix + history + this turn + reply) is now
        # resident here; the session entry refreshes its LRU position.
        self.sessions.pop(request.session_id, None)
        self.sessions[request.session_id] = (
            request.prompt_tokens + request.output_tokens
        )
        self.session_model[request.session_id] = request.model_id
        while len(self.sessions) > self.session_capacity:
            evicted, _tokens = self.sessions.popitem(last=False)
            self.session_model.pop(evicted, None)
        if request.prefix_id:
            self.prefixes.pop(request.prefix_id, None)
            self.prefixes[request.prefix_id] = request.prefix_tokens
            while len(self.prefixes) > self.prefix_capacity:
                self.prefixes.popitem(last=False)

    def drop_session(self, session_id: str) -> None:
        self.sessions.pop(session_id, None)
        self.session_model.pop(session_id, None)

    # -- lifecycle -----------------------------------------------------
    def crash(self) -> None:
        """The device dies: secure-world state is gone, lifecycle → DOWN.

        The session/prefix caches clear because the parked KV they index
        lived in secure memory — that loss *is* the re-warm cost the
        router charges when the sessions land elsewhere.  In-flight
        requests die at their next clock edge via the surrogate's epoch
        bump (:class:`~repro.errors.DeviceLost`).
        """
        self.lifecycle.crashes += 1
        self.lifecycle.to("down", "crash")
        self.sessions.clear()
        self.session_model.clear()
        self.prefixes.clear()
        crash = getattr(self.system, "crash", None)
        if crash is not None:
            crash()

    def restore_up(self, reason: str = "restored") -> None:
        """Post-attestation re-admission: fresh breakers, fresh probe score."""
        restore = getattr(self.system, "restore", None)
        if restore is not None:
            restore()
        self.gateway.reset_lanes()
        self.probe_ewma = None
        self.lifecycle.to(UP, reason)

    def set_slowdown(self, factor: float) -> None:
        """Gray-degrade (or restore, factor=1.0) the device's latencies."""
        system = self.system
        if hasattr(system, "slowdown"):
            system.slowdown = factor

    def probe_latency(self, probe_tokens: int = 8, clean: bool = False) -> float:
        """Analytic latency of a tiny health probe (see the surrogate)."""
        return self.system.probe_latency(probe_tokens, clean=clean)

    # -- health --------------------------------------------------------
    def health(self) -> Dict[str, object]:
        info = self.gateway.health()
        info["device_id"] = self.device_id
        info["platform"] = self.platform.name
        info["state"] = self.lifecycle.state
        info["outstanding"] = self.outstanding()
        info["sessions_resident"] = len(self.sessions)
        info["prefixes_resident"] = len(self.prefixes)
        return info
