"""Contiguous Memory Allocator with real movable-page migration.

A :class:`CMARegion` reserves a contiguous frame range at boot.  The buddy
allocator may place *movable* pages inside it (via :meth:`spill_frames`)
when the rest of memory is full; to hand out a contiguous run the CMA then
migrates those pages out: it takes a destination frame outside the region,
**copies the page's bytes** in simulated physical memory, retargets the
owning allocation, and frees the source frame — exactly the kernel's
sequence described in §2.2.

Timing: migration is charged at the calibrated 1.9 GB/s single-thread
throughput, scaling with ``threads**alpha`` (α=0.5 reproduces the paper's
3.8 GB/s at 4 threads); claiming already-free frames costs only the buddy
fast-path rate.  Busy intervals are logged so the Fig. 16 interference
model can see when migration stole memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..config import MemorySpec
from ..errors import (
    ConfigurationError,
    ContiguityError,
    MemoryError_,
    MigrationError,
    OutOfMemory,
)
from ..hw.memory import PhysicalMemory
from ..sim import Simulator
from .buddy import BuddyAllocator
from .pages import Allocation, FrameDB, FrameState

__all__ = ["CMARegion", "MigrationRecord"]


@dataclass
class MigrationRecord:
    """One timed migration burst (for interference accounting)."""

    start: float
    end: float
    bytes_migrated: int
    threads: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlap(self, window_start: float, window_end: float) -> float:
        return max(0.0, min(self.end, window_end) - max(self.start, window_start))


class CMARegion:
    """One reserved contiguous region: spill, migrate, carve, release."""

    def __init__(
        self,
        sim: Simulator,
        db: FrameDB,
        buddy: BuddyAllocator,
        memory: Optional[PhysicalMemory],
        start_frame: int,
        n_frames: int,
        spec: MemorySpec,
        name: str = "cma",
    ):
        if start_frame < 0 or start_frame + n_frames > db.n_frames:
            raise ConfigurationError("CMA region outside RAM")
        self.sim = sim
        self.db = db
        self.buddy = buddy
        self.memory = memory
        self.spec = spec
        self.name = name
        self.start_frame = start_frame
        self.end_frame = start_frame + n_frames
        self.n_frames = n_frames
        self._free: Set[int] = set(range(start_frame, self.end_frame))
        self.migrations: List[MigrationRecord] = []
        self.total_migrated_bytes = 0
        #: fault site ``cma.migration_fail`` (repro.faults): a movable
        #: page is transiently pinned mid-migration.  The fallback path
        #: backs off and retries the frame; the pin is usually gone.
        self.fault_injector = None
        self.migration_retry_attempts = 3
        self.migration_retry_backoff = 250e-6
        self.migration_failures = 0
        self.migration_retries = 0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None
        buddy.attach_cma(self)

    # ------------------------------------------------------------------
    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def base_addr(self) -> int:
        return self.db.frame_addr(self.start_frame)

    @property
    def size_bytes(self) -> int:
        return self.n_frames * self.db.granule

    def occupied_frames_in(self, start: int, count: int) -> int:
        return sum(
            1
            for frame in range(start, start + count)
            if self.db.state(frame) is not FrameState.FREE
        )

    # ------------------------------------------------------------------
    # buddy spill interface (movable pages parked in the region)
    # ------------------------------------------------------------------
    def spill_frames(self, count: int) -> List[int]:
        """Give the buddy up to ``count`` free frames (highest-index first,
        mirroring the kernel's preference to keep the region head clear)."""
        take = sorted(self._free, reverse=True)[:count]
        for frame in take:
            self._free.discard(frame)
        return take

    def return_frame(self, frame: int) -> None:
        if not self.start_frame <= frame < self.end_frame:
            raise MemoryError_("frame %d outside CMA region %s" % (frame, self.name))
        self._free.add(frame)

    # ------------------------------------------------------------------
    # contiguous allocation (timed generator)
    # ------------------------------------------------------------------
    def allocate_range(self, start_frame: int, n_frames: int, threads: int = 1, tag: str = ""):
        """Carve the *specific* contiguous run ``[start_frame, +n_frames)``.

        Generator: migrates any movable occupants out (copying real bytes,
        charging migration time), claims the run, and returns a contiguous
        :class:`Allocation`.  Raises :class:`ContiguityError` if the run
        lies outside the region and :class:`OutOfMemory` if migration
        destinations run out.
        """
        if n_frames <= 0:
            raise ConfigurationError("n_frames must be positive")
        if start_frame < self.start_frame or start_frame + n_frames > self.end_frame:
            raise ContiguityError(
                "run [%d,%d) outside CMA region [%d,%d)"
                % (start_frame, start_frame + n_frames, self.start_frame, self.end_frame)
            )
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(
                "cma_allocations_total", "Contiguous runs carved from CMA regions"
            ).inc(region=self.name)
        migrated_bytes = 0
        for frame in range(start_frame, start_frame + n_frames):
            state = self.db.state(frame)
            if state is FrameState.FREE:
                continue
            if state is FrameState.UNMOVABLE:
                raise MemoryError_("unmovable page inside CMA region %s" % self.name)
            attempt = 1
            while True:
                try:
                    migrated_bytes += self._migrate_out(frame)
                    break
                except MigrationError:
                    # Fallback: the pin is transient — back off (with the
                    # run's other migrations still batched) and retry the
                    # frame a bounded number of times before surfacing.
                    if attempt >= self.migration_retry_attempts:
                        raise
                    self.migration_retries += 1
                    if metrics is not None:
                        metrics.counter(
                            "cma_migration_retries_total",
                            "Migration retries after transient pins",
                        ).inc(region=self.name)
                    if self.recorder is not None:
                        self.recorder.record(
                            "retry", "cma.migration_fail",
                            "retrying pinned frame", frame=frame, attempt=attempt,
                        )
                    yield self.sim.timeout(
                        self.migration_retry_backoff * (2 ** (attempt - 1))
                    )
                    attempt += 1
        if migrated_bytes:
            start = self.sim.now
            yield self.sim.timeout(self.migration_seconds(migrated_bytes, threads))
            self.migrations.append(
                MigrationRecord(start, self.sim.now, migrated_bytes, threads)
            )
            self.total_migrated_bytes += migrated_bytes
            if metrics is not None:
                metrics.counter(
                    "cma_pages_migrated_total", "Movable granules migrated out"
                ).inc(migrated_bytes // self.db.granule, region=self.name)
                metrics.counter(
                    "cma_migrated_bytes_total", "Bytes copied by CMA migration"
                ).inc(migrated_bytes, region=self.name)
        # Fast-path claim cost for the whole run.
        yield self.sim.timeout(self.buddy.alloc_seconds(n_frames * self.db.granule, self.spec))
        frames = list(range(start_frame, start_frame + n_frames))
        for frame in frames:
            self._free.discard(frame)
        return self.db.claim(frames, movable=False, tag=tag or self.name, contiguous=True)

    def _migrate_out(self, frame: int) -> int:
        """Move one movable granule out of the region. Returns bytes moved."""
        owner = self.db.owner(frame)
        if owner is None:
            raise MemoryError_("occupied frame %d has no owner" % frame)
        if self.fault_injector is not None and self.fault_injector.fires(
            "cma.migration_fail"
        ):
            self.migration_failures += 1
            if self.recorder is not None:
                self.recorder.record(
                    "fault", "cma.migration_fail", "frame transiently pinned",
                    frame=frame, region=self.name,
                )
            raise MigrationError(
                "frame %d transiently pinned during migration out of %s"
                % (frame, self.name)
            )
        dest_alloc = self.buddy.allocate_one_outside()
        dest = next(iter(dest_alloc.frames))
        # The destination granule joins the owner allocation; the
        # placeholder allocation record is dropped.
        self.db.release(dest_alloc)
        if self.memory is not None:
            self.memory.copy_range(
                self.db.frame_addr(frame), self.db.frame_addr(dest), self.db.granule
            )
        self.db.move_frame(owner, frame, dest)
        self._free.add(frame)
        return self.db.granule

    def release(self, alloc: Allocation) -> None:
        """Return a contiguous allocation's frames to the region."""
        frames = list(alloc.frames)
        for frame in frames:
            if not self.start_frame <= frame < self.end_frame:
                raise MemoryError_("allocation %d not inside region %s" % (alloc.alloc_id, self.name))
        self.db.release(alloc)
        self._free.update(frames)

    def release_tail(self, alloc: Allocation, n_frames: int) -> None:
        """Release the last ``n_frames`` granules of a contiguous allocation
        (the shrink path of the extend-and-shrink interface)."""
        if n_frames <= 0 or n_frames > alloc.n_frames:
            raise MemoryError_("cannot release %d of %d frames" % (n_frames, alloc.n_frames))
        tail = alloc.sorted_frames()[-n_frames:]
        self.db.release_frames(alloc, tail)
        self._free.update(tail)

    # cost model --------------------------------------------------------
    def migration_seconds(self, n_bytes: float, threads: int) -> float:
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        aggregate = self.spec.cma_migration_bw * (threads ** self.spec.cma_thread_scaling_alpha)
        return n_bytes / aggregate

    def migrated_bytes_between(self, start: float, end: float) -> float:
        """Bytes of migration traffic overlapping a time window (Fig. 16)."""
        total = 0.0
        for record in self.migrations:
            overlap = record.overlap(start, end)
            if overlap > 0 and record.duration > 0:
                total += record.bytes_migrated * (overlap / record.duration)
        return total
