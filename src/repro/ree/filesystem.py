"""REE filesystem: untrusted, asynchronous I/O over flash.

The TEE has no filesystem; the LLM TA delegates reads to the client
application, which issues asynchronous I/O against this filesystem (§3.2).
Because the REE is untrusted, the filesystem supports an *adversary hook*
that can tamper with or forge read results — the model-loading Iago attack
of §6.  The TA-side checksum verification is what must catch it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import StorageError
from ..hw.flash import Flash
from ..sim import Process, Simulator

__all__ = ["FileSystem"]

TamperHook = Callable[[str, int, bytes], bytes]


class FileSystem:
    """Untrusted REE filesystem over flash, with adversary/fault hooks."""

    def __init__(self, sim: Simulator, flash: Flash):
        self.sim = sim
        self.flash = flash
        self._paths: Dict[str, str] = {}  # path -> flash blob name
        #: adversary hook: (path, offset, data) -> data to return instead.
        self.tamper_hook: Optional[TamperHook] = None
        #: fault-injection hook: (path, offset, size) -> exception or None.
        self.fail_hook = None
        #: everything the REE observes about delegated reads — the §6
        #: size side channel: (path, offset, size, nominal) per request.
        self.request_log: list = []
        self.aio_inflight = 0
        self.aio_peak = 0

    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes) -> None:
        """Provision a file (no simulated time; setup step)."""
        blob = "fs:" + path
        self.flash.provision(blob, data)
        self._paths[path] = blob

    def exists(self, path: str) -> bool:
        return path in self._paths

    def stat(self, path: str) -> int:
        return self.flash.size(self._blob(path))

    def delete(self, path: str) -> None:
        blob = self._paths.pop(path, None)
        if blob:
            self.flash.delete(blob)

    def _blob(self, path: str) -> str:
        blob = self._paths.get(path)
        if blob is None:
            # A missing file at request time is a runtime I/O failure the
            # caller may handle — not a setup mistake.
            raise StorageError("no such file: %r" % path)
        return blob

    # ------------------------------------------------------------------
    def read(self, path: str, offset: int, size: int, nominal: float = None):
        """Timed read (generator). Subject to the adversary hook.

        ``nominal`` optionally charges flash time for a larger byte count
        (scaled model payloads with full-size timing semantics).
        """
        blob = self._blob(path)
        self.request_log.append((path, offset, size, nominal))
        if self.fail_hook is not None:
            failure = self.fail_hook(path, offset, size)
            if failure is not None:
                raise failure
        self.aio_inflight += 1
        self.aio_peak = max(self.aio_peak, self.aio_inflight)
        try:
            data = yield from self.flash.read(blob, offset, size, nominal=nominal)
        finally:
            self.aio_inflight -= 1
        if self.tamper_hook is not None:
            data = self.tamper_hook(path, offset, data)
        return data

    def read_async(self, path: str, offset: int, size: int, nominal: float = None) -> Process:
        """Issue an aio request; returns its completion event immediately."""
        return self.sim.process(
            self.read(path, offset, size, nominal=nominal),
            name="aio:%s@%d" % (path, offset),
        )

    def write(self, path: str, offset: int, data: bytes):
        """Timed write (generator)."""
        blob = self._paths.setdefault(path, "fs:" + path)
        result = yield from self.flash.write(blob, offset, data)
        return result
