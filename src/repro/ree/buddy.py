"""Buddy allocator over the frame database.

Models the Linux page allocator at granule granularity with the two
placement rules the CMA design depends on:

* allocations are served from frames *outside* CMA regions first;
* only *movable* allocations may spill into a CMA region when the rest of
  memory is full (unmovable pages would make the region un-reclaimable),
  and the spill is delegated to the owning :class:`~repro.ree.cma.CMARegion`.

Frame choice is lowest-index-first, which keeps runs deterministic.  The
allocator also provides the Fig. 3 cost model: 4 KiB-page allocation is a
fast path whose time is proportional to bytes (page-table + zeroing work)
and *insensitive to memory pressure* — the contrast with CMA migration.
"""

from __future__ import annotations

import heapq
from typing import List

from ..config import MemorySpec
from ..errors import OutOfMemory
from .pages import Allocation, FrameDB

__all__ = ["BuddyAllocator"]


class BuddyAllocator:
    """The page allocator: free pools, CMA balancing, reclaim."""

    def __init__(self, db: FrameDB):
        self.db = db
        self._cma_regions: List = []  # CMARegion instances, attached later
        self._free_outside: List[int] = []
        self._cma_frames = set()
        #: allocations whose pages may be dropped under memory pressure
        #: (stress-ng pressure pages, clean page cache).
        self._reclaimable: List = []
        self.reclaimed_frames = 0

    def attach_cma(self, region) -> None:
        """Register a CMA region; its frames leave the buddy free pool."""
        self._cma_regions.append(region)
        self._cma_frames.update(range(region.start_frame, region.end_frame))

    def finalize(self) -> None:
        """Build the free pool once all CMA regions are attached."""
        self._free_outside = [
            frame for frame in range(self.db.n_frames) if frame not in self._cma_frames
        ]
        heapq.heapify(self._free_outside)

    # ------------------------------------------------------------------
    @property
    def free_outside_cma(self) -> int:
        return len(self._free_outside)

    @property
    def free_inside_cma(self) -> int:
        return sum(region.free_frames for region in self._cma_regions)

    # ------------------------------------------------------------------
    # reclaim (memory-pressure relief)
    # ------------------------------------------------------------------
    def register_reclaimable(self, alloc: Allocation) -> None:
        self._reclaimable.append(alloc)

    def unregister_reclaimable(self, alloc: Allocation) -> None:
        if alloc in self._reclaimable:
            self._reclaimable.remove(alloc)

    def reclaim_outside(self, n_frames: int) -> int:
        """Drop up to ``n_frames`` reclaimable pages outside CMA regions.

        Returns the number of frames actually freed (they re-enter the
        free pool).  Models the kernel shrinking page cache / pressure
        pages when an allocation cannot otherwise be satisfied.
        """
        freed = 0
        for alloc in list(self._reclaimable):
            if freed >= n_frames:
                break
            victims = [f for f in alloc.frames if f not in self._cma_frames]
            take = victims[: n_frames - freed]
            if not take:
                continue
            self.db.release_frames(alloc, take)
            self.return_frames(take)
            freed += len(take)
            self.reclaimed_frames += len(take)
            if alloc.freed:
                self._reclaimable.remove(alloc)
        return freed

    def allocate(self, n_frames: int, movable: bool, tag: str = "") -> Allocation:
        """Take ``n_frames`` granules (possibly discontiguous).

        Movable allocations spill into CMA regions when the rest of
        memory is exhausted; unmovable ones fail instead.  Reclaimable
        pages are dropped as a last resort before declaring OOM.
        """
        if n_frames <= 0:
            raise OutOfMemory("allocation of %d frames" % n_frames)
        available = self.free_outside_cma + (self.free_inside_cma if movable else 0)
        if n_frames > available:
            self.reclaim_outside(n_frames - available)
            available = self.free_outside_cma + (self.free_inside_cma if movable else 0)
        if n_frames > available:
            raise OutOfMemory(
                "%d frames requested, %d available (movable=%s)" % (n_frames, available, movable)
            )
        frames: List[int] = []
        from_cma = 0
        if movable and self._cma_regions:
            # Linux's utilization heuristic: movable allocations draw from
            # CMA once it holds the majority of free memory, keeping the
            # two pools balanced.  This is what lets a big stress-ng
            # mapping occupy a large CMA region (the Fig. 3 / §7
            # worst-case pressure regime).
            outside = len(self._free_outside)
            inside = self.free_inside_cma
            if outside - n_frames >= inside:
                from_cma = 0
            elif inside - n_frames >= outside:
                from_cma = min(n_frames, inside)
            else:
                balanced = (n_frames - outside + inside + 1) // 2
                from_cma = min(n_frames, inside, max(0, balanced))
        from_outside = min(n_frames - from_cma, len(self._free_outside))
        for _ in range(from_outside):
            frames.append(heapq.heappop(self._free_outside))
        remaining = n_frames - len(frames)
        for region in sorted(self._cma_regions, key=lambda r: -r.free_frames):
            if remaining == 0:
                break
            spilled = region.spill_frames(min(remaining, region.free_frames))
            frames.extend(spilled)
            remaining -= len(spilled)
        return self.db.claim(frames, movable=movable, tag=tag)

    def allocate_one_outside(self, tag: str = "migration-dest") -> Allocation:
        """Migration destination: strictly outside every CMA region.

        Falls back to dropping a reclaimable page when outside memory is
        exhausted — the behaviour that lets CMA allocation proceed under
        full-memory stress (Fig. 3's high-pressure regime).
        """
        if not self._free_outside:
            self.reclaim_outside(1)
        if not self._free_outside:
            raise OutOfMemory("no free frames outside CMA for migration")
        frame = heapq.heappop(self._free_outside)
        return self.db.claim([frame], movable=True, tag=tag)

    def free(self, alloc: Allocation) -> None:
        frames = list(alloc.frames)
        self.db.release(alloc)
        self.return_frames(frames)

    def return_frames(self, frames: List[int]) -> None:
        """Give freed frames back to whichever pool owns them."""
        for frame in frames:
            if frame in self._cma_frames:
                for region in self._cma_regions:
                    if region.start_frame <= frame < region.end_frame:
                        region.return_frame(frame)
                        break
            else:
                heapq.heappush(self._free_outside, frame)

    # cost model --------------------------------------------------------
    def alloc_seconds(self, n_bytes: float, spec: MemorySpec) -> float:
        """Fast-path allocation time for ``n_bytes`` (Fig. 3 buddy line)."""
        return n_bytes / spec.buddy_alloc_bw
