"""The REE TrustZone driver (the +197 LoC the paper adds to Linux).

Bridges three delegations between worlds:

* **CMA ballooning** — handles the TEE's ``ree.cma_alloc`` /
  ``ree.cma_release`` SMCs by carving/releasing contiguous runs from the
  named CMA region.  Being REE code it is *untrusted*: adversary hooks can
  forge the returned address (the CMA Iago attack the TEE's contiguity
  check must catch) or refuse service (DoS, out of scope).
* **TA invocation** — forwards client-application requests into the TEE.
* **Delegated file I/O** — the LLM TA's model reads are issued here as
  asynchronous I/O against the REE filesystem, landing directly in
  allocated-but-unprotected secure-region memory (no bounce buffer, §4.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, MemoryError_
from ..hw.common import World
from ..ree.pages import Allocation
from ..sim import Simulator
from .kernel import REEKernel

__all__ = ["TZDriver"]


class TZDriver:
    """The kernel's TrustZone driver: CMA ballooning + TA invocation."""

    def __init__(self, sim: Simulator, kernel: REEKernel):
        self.sim = sim
        self.kernel = kernel
        self.monitor = kernel.board.monitor
        #: contiguous allocations per CMA region, in allocation order
        #: (released strictly from the tail, matching extend-and-shrink).
        self._allocs: Dict[str, List[Allocation]] = {}
        #: adversary hook: forge the address returned to the TEE.
        self.alloc_result_hook: Optional[Callable[[int], int]] = None
        self.cma_alloc_calls = 0
        self.cma_release_calls = 0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None
        #: everything the REE *observes* about secure-memory scaling:
        #: (region, size) per allocation — the §6 size side channel.
        self.alloc_observations: List[Tuple[str, int]] = []
        self.monitor.register("ree.cma_alloc", self._handle_cma_alloc)
        self.monitor.register("ree.cma_release", self._handle_cma_release)

    # ------------------------------------------------------------------
    # CMA ballooning handlers (called via SMC from the TEE)
    # ------------------------------------------------------------------
    def _region(self, name: str):
        region = self.kernel.cma_regions.get(name)
        if region is None:
            raise ConfigurationError("no CMA region %r" % name)
        return region

    def _handle_cma_alloc(self, region_name: str, expected_addr: int, n_bytes: int, threads: int):
        region = self._region(region_name)
        db = self.kernel.db
        if expected_addr % db.granule != 0 or n_bytes % db.granule != 0:
            raise ConfigurationError("unaligned CMA request")
        start_frame = db.addr_frame(expected_addr)
        n_frames = n_bytes // db.granule
        alloc = yield from region.allocate_range(
            start_frame, n_frames, threads=threads, tag="tee:" + region_name
        )
        self._allocs.setdefault(region_name, []).append(alloc)
        self.cma_alloc_calls += 1
        if self.metrics is not None:
            self.metrics.counter(
                "tz_cma_alloc_calls_total", "CMA balloon extends handled for the TEE"
            ).inc(region=region_name)
        self.alloc_observations.append((region_name, n_bytes))
        addr = db.frame_addr(min(alloc.frames))
        if self.alloc_result_hook is not None:
            addr = self.alloc_result_hook(addr)
        return addr

    def _handle_cma_release(self, region_name: str, n_bytes: int):
        region = self._region(region_name)
        db = self.kernel.db
        if n_bytes % db.granule != 0:
            raise ConfigurationError("unaligned CMA release")
        remaining = n_bytes // db.granule
        allocs = self._allocs.get(region_name, [])
        self.cma_release_calls += 1
        if self.metrics is not None:
            self.metrics.counter(
                "tz_cma_release_calls_total", "CMA balloon shrinks handled for the TEE"
            ).inc(region=region_name)
        while remaining > 0:
            if not allocs:
                raise MemoryError_("TEE released more CMA memory than allocated")
            tail = allocs[-1]
            take = min(remaining, tail.n_frames)
            if take == tail.n_frames:
                region.release(tail)
                allocs.pop()
            else:
                region.release_tail(tail, take)
            remaining -= take
        # Releasing is cheap (page-free fast path).
        yield self.sim.timeout(self.kernel.buddy.alloc_seconds(n_bytes, self.kernel.spec.memory) / 2)
        return None

    # ------------------------------------------------------------------
    # client-application side
    # ------------------------------------------------------------------
    def invoke_ta(self, func: str, *args, **kwargs):
        """A CA invokes a TEE service through the driver (generator)."""
        result = yield from self.monitor.smc(World.NONSECURE, func, *args, **kwargs)
        return result

    def delegated_read_into(
        self, path: str, offset: int, size: int, phys_addr: int, nominal: float = None
    ):
        """Delegated model-file read: aio into physical memory (generator).

        The destination must still be *non-secure* (allocated but not yet
        protected); the write goes through the TZASC as a non-secure CPU
        store, so a protocol bug that protected the memory first really
        faults.
        """
        data = yield from self.kernel.fs.read(path, offset, size, nominal=nominal)
        self.kernel.board.memory.cpu_write(phys_addr, data, World.NONSECURE)
        if self.metrics is not None:
            self.metrics.counter(
                "tz_delegated_read_bytes_total", "Model bytes read on behalf of the TEE"
            ).inc(len(data), path="direct")
        return len(data)

    def delegated_read_bounce(self, path: str, offset: int, size: int, nominal: float = None):
        """Recovery-path read: return the bytes via a bounce buffer.

        The fast path (:meth:`delegated_read_into`) lands aio directly in
        allocated-but-unprotected secure memory — impossible once the
        destination range is TZASC-protected.  The corrupted-chunk
        re-fetch therefore reads into an ordinary REE buffer and hands
        the ciphertext up; the TEE verifies, decrypts, and writes the
        plaintext through its own mapping.  Slower (one extra DRAM copy),
        but only ever taken on the error path.
        """
        data = yield from self.kernel.fs.read(path, offset, size, nominal=nominal)
        charge = size if nominal is None else nominal
        yield self.sim.timeout(charge / self.kernel.spec.memory.bus_bandwidth)
        if self.metrics is not None:
            self.metrics.counter(
                "tz_delegated_read_bytes_total", "Model bytes read on behalf of the TEE"
            ).inc(len(data), path="bounce")
        return data
