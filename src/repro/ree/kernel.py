"""The REE kernel: Linux-like memory management + filesystem wiring.

Owns the frame database, the buddy allocator, the CMA regions, and the
filesystem.  CMA regions are reserved at "boot" from the top of RAM
downwards; a configurable slice of unmovable boot allocations models the
resident kernel/system footprint outside the CMA regions.

Everything here runs in the non-secure world.  The TrustZone driver
(:mod:`repro.ree.tz_driver`) exposes the CMA to the TEE for secure-memory
ballooning.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import GiB, MiB, PlatformSpec
from ..errors import ConfigurationError, OutOfMemory
from ..hw.platform import Board
from ..sim import Simulator
from .buddy import BuddyAllocator
from .cma import CMARegion
from .filesystem import FileSystem
from .pages import Allocation, FrameDB
from .s2pt import S2PTState

__all__ = ["REEKernel"]

#: default simulated resident system footprint (kernel, services, UI).
DEFAULT_OS_FOOTPRINT = 1 * GiB


class REEKernel:
    """The Linux-like kernel: memory management + filesystem wiring."""

    def __init__(
        self,
        sim: Simulator,
        board: Board,
        granule: int = 1 * MiB,
        os_footprint: Optional[int] = None,
    ):
        self.sim = sim
        self.board = board
        self.spec: PlatformSpec = board.spec
        self.db = FrameDB(board.total_memory, granule)
        self.buddy = BuddyAllocator(self.db)
        self.fs = FileSystem(sim, board.flash)
        self.cma_regions: Dict[str, CMARegion] = {}
        self.s2pt = S2PTState(enabled=False)
        self._next_cma_top = self.db.n_frames
        self._finalized = False
        self._os_footprint = (
            DEFAULT_OS_FOOTPRINT if os_footprint is None else os_footprint
        )
        self._os_alloc: Optional[Allocation] = None

    # ------------------------------------------------------------------
    # boot-time layout
    # ------------------------------------------------------------------
    def reserve_cma(self, name: str, n_bytes: int) -> CMARegion:
        """Reserve a CMA region (boot-time; top of RAM, growing down)."""
        if self._finalized:
            raise ConfigurationError("CMA reservation after boot finalization")
        if name in self.cma_regions:
            raise ConfigurationError("CMA region %r already reserved" % name)
        n_frames = -(-n_bytes // self.db.granule)
        start = self._next_cma_top - n_frames
        if start < 0:
            raise OutOfMemory("not enough RAM for CMA region %r" % name)
        region = CMARegion(
            self.sim,
            self.db,
            self.buddy,
            self.board.memory,
            start_frame=start,
            n_frames=n_frames,
            spec=self.spec.memory,
            name=name,
        )
        self.cma_regions[name] = region
        self._next_cma_top = start
        return region

    def boot(self) -> None:
        """Finish boot: build the buddy free pool, charge the OS footprint."""
        if self._finalized:
            raise ConfigurationError("kernel already booted")
        self.buddy.finalize()
        self._finalized = True
        if self._os_footprint:
            frames = -(-self._os_footprint // self.db.granule)
            self._os_alloc = self.buddy.allocate(frames, movable=False, tag="os-resident")

    def _require_booted(self) -> None:
        if not self._finalized:
            raise ConfigurationError("kernel not booted; call boot()")

    # ------------------------------------------------------------------
    # allocation syscalls
    # ------------------------------------------------------------------
    def map_anonymous(self, n_bytes: int, tag: str = "anon") -> Allocation:
        """Untimed movable allocation (application mmap)."""
        self._require_booted()
        frames = -(-n_bytes // self.db.granule)
        return self.buddy.allocate(frames, movable=True, tag=tag)

    def alloc_unmovable(self, n_bytes: int, tag: str = "kernel") -> Allocation:
        self._require_booted()
        frames = -(-n_bytes // self.db.granule)
        return self.buddy.allocate(frames, movable=False, tag=tag)

    def free(self, alloc: Allocation) -> None:
        self.buddy.free(alloc)

    def alloc_timed(self, n_bytes: int, movable: bool = True, tag: str = "anon"):
        """Timed buddy allocation (generator) — the Fig. 3 buddy path.

        Pressure-insensitive except for the cheap reclaim of pressure
        pages when free memory runs out.
        """
        self._require_booted()
        frames = -(-n_bytes // self.db.granule)
        available = self.buddy.free_outside_cma + (
            self.buddy.free_inside_cma if movable else 0
        )
        deficit_bytes = max(0, frames - available) * self.db.granule
        duration = self.buddy.alloc_seconds(n_bytes, self.spec.memory)
        duration += deficit_bytes / self.spec.memory.reclaim_bw
        yield self.sim.timeout(duration)
        return self.buddy.allocate(frames, movable=movable, tag=tag)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return (self.buddy.free_outside_cma + self.buddy.free_inside_cma) * self.db.granule

    @property
    def used_bytes(self) -> int:
        return self.db.used_bytes

    def memory_pressure(self) -> float:
        """Fraction of RAM in use."""
        return self.used_bytes / self.db.total_bytes
