"""Stage-2 page table (S2PT) alternative: the design the paper rejects.

Prior work protects secure memory by running the REE inside a VM and
unmapping secure pages from the stage-2 tables.  The cost is a
two-dimensional page walk on every TLB miss, *continuously*, for every
REE application (§2.4.2).  This model reproduces the Fig. 2 motivation
experiment: each application's slowdown is its memory intensity (TLB-miss
proneness) times the calibrated walk-overhead factor, with 2 MiB huge
mappings much cheaper than the 4 KiB mappings that fragmentation forces.

The model also exposes the design trade-off used in the ablation bench:
S2PT overhead is *continuous* while CMA migration overhead is *transient*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..config import S2PTSpec
from ..errors import AccessDenied, ConfigurationError, DMAViolation
from ..hw.common import AddrRange

__all__ = ["S2PTState", "s2pt_slowdown", "S2PTProtection"]


@dataclass
class S2PTState:
    """Whether stage-2 translation is on, and the mapping granularity."""

    enabled: bool = False
    #: after the LLM's gigabytes are allocated, most stage-2 mappings fall
    #: back to 4 KiB (§2.4.2); fresh systems can still use 2 MiB blocks.
    fragmented: bool = True


def s2pt_slowdown(memory_intensity: float, state: S2PTState, spec: S2PTSpec) -> float:
    """Multiplicative slowdown (>= 1.0) for an app under stage-2 translation.

    ``memory_intensity`` in [0, 1] expresses how TLB-miss-bound the app is
    (1.0 = the paper's worst Geekbench subtest at 9.8%).
    """
    if not 0.0 <= memory_intensity <= 1.0:
        raise ConfigurationError("memory_intensity must be within [0, 1]")
    if not state.enabled:
        return 1.0
    factor = spec.walk_overhead_factor if state.fragmented else spec.huge_page_overhead_factor
    return 1.0 + memory_intensity * factor


class S2PTProtection:
    """The stage-2 protection mechanism itself (page-granular unmapping).

    Protects secure pages from the REE *CPU* by unmapping them from the
    stage-2 tables.  Crucially — and this is the §2.4.2 argument for
    choosing TZASC — **S2PT does not control DMA**: a device programmed
    by the untrusted REE can still reach "protected" pages unless a
    privileged monitor additionally intercepts every IOMMU update
    (``intercept_iommu=True``), which costs a trap per mapping operation
    and grows the EL3 TCB.

    The class exposes the same ``check_cpu`` / ``check_dma`` interface as
    the TZASC so tests can run identical attacks against both designs.
    """

    def __init__(self, spec: S2PTSpec, intercept_iommu: bool = False):
        self.spec = spec
        self.intercept_iommu = intercept_iommu
        self.state = S2PTState(enabled=False)
        self._protected: List[AddrRange] = []
        #: privileged-monitor traps taken for IOMMU interception.
        self.iommu_traps = 0

    def protect(self, rng: AddrRange) -> None:
        """Unmap ``rng`` from the REE's stage-2 tables (page granular —
        no contiguity requirement, unlike the TZASC)."""
        self._protected.append(rng)
        self.state.enabled = True

    def unprotect_all(self) -> None:
        self._protected = []
        self.state.enabled = False

    def check_cpu(self, rng: AddrRange, world) -> None:
        if getattr(world, "is_secure", False):
            return
        for protected in self._protected:
            if protected.overlaps(rng):
                raise AccessDenied("stage-2 fault: REE access to %r" % protected)

    def check_dma(self, rng: AddrRange, device: str) -> None:
        """The gap: device DMA bypasses stage-2 unless the monitor
        intercepts IOMMU programming."""
        if not self.intercept_iommu:
            return  # attack surface: DMA sails through
        for protected in self._protected:
            if protected.overlaps(rng):
                self.iommu_traps += 1
                raise DMAViolation(
                    "intercepted IOMMU mapping: device %r to %r" % (device, protected)
                )
