"""REE CPU scheduler: time-sliced threads on the little cluster.

The evaluation pins REE background applications to the little cores
(§7 "Models and deployment"); this scheduler models them: a round-robin,
time-sliced run queue over ``n_cores`` identical cores.  TA shadow
threads (§3.2) are ordinary REE threads here — when one is dispatched it
"enters" the TEE for its slice, which is exactly why the paper keeps
synchronization state in the TEE: this scheduler is free to run shadow
threads in any order (including maliciously, see
:meth:`REEScheduler.set_malicious_order`).

Threads are generators that yield ``('compute', seconds)`` work items or
simulator events (blocking I/O); the scheduler charges compute against
the thread's core occupancy in slices.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, Generator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim import Event, Simulator

__all__ = ["REEThread", "REEScheduler"]


class REEThread:
    """One schedulable thread."""

    def __init__(self, thread_id: int, name: str, body: Generator):
        self.thread_id = thread_id
        self.name = name
        self.body = body
        self.finished = False
        self.cpu_time = 0.0
        self.wait_time = 0.0
        self.result = None
        self._pending_compute = 0.0
        self._blocked_on: Optional[Event] = None
        self.done = None  # Event, set by the scheduler

    @property
    def runnable(self) -> bool:
        return not self.finished and self._blocked_on is None


class REEScheduler:
    """Round-robin, time-sliced thread scheduler over ``n_cores``."""

    def __init__(self, sim: Simulator, n_cores: int = 4, time_slice: float = 4e-3):
        if n_cores < 1 or time_slice <= 0:
            raise ConfigurationError("bad scheduler geometry")
        self.sim = sim
        self.n_cores = n_cores
        self.time_slice = time_slice
        self._threads: Dict[int, REEThread] = {}
        self._run_queue: Deque[int] = deque()
        self._ids = itertools.count(1)
        self._wake: Optional[Event] = None
        self.context_switches = 0
        #: malicious ordering hook: (run_queue) -> reordered run_queue.
        self._order_hook: Optional[Callable[[List[int]], List[int]]] = None
        for core in range(n_cores):
            sim.process(self._core_loop(core), name="ree-core-%d" % core)

    # ------------------------------------------------------------------
    def spawn(self, body: Generator, name: str = "thread") -> REEThread:
        """Add a thread; returns it (``thread.done`` triggers on exit)."""
        thread = REEThread(next(self._ids), name, body)
        thread.done = self.sim.event()
        self._threads[thread.thread_id] = thread
        self._enqueue(thread)
        return thread

    def set_malicious_order(self, hook: Optional[Callable[[List[int]], List[int]]]) -> None:
        """Let an attacker permute the run queue at every dispatch."""
        self._order_hook = hook

    @property
    def alive_threads(self) -> int:
        return sum(1 for t in self._threads.values() if not t.finished)

    def _enqueue(self, thread: REEThread) -> None:
        self._run_queue.append(thread.thread_id)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _next_thread(self) -> Optional[REEThread]:
        if self._order_hook is not None and len(self._run_queue) > 1:
            reordered = self._order_hook(list(self._run_queue))
            if sorted(reordered) != sorted(self._run_queue):
                raise ConfigurationError("order hook must permute, not edit")
            self._run_queue = deque(reordered)
        while self._run_queue:
            thread = self._threads.get(self._run_queue.popleft())
            if thread is not None and thread.runnable:
                return thread
        return None

    # ------------------------------------------------------------------
    def _core_loop(self, core: int):
        while True:
            thread = self._next_thread()
            if thread is None:
                self._wake = self.sim.event()
                yield self._wake
                self._wake = None
                continue
            self.context_switches += 1
            yield from self._run_slice(thread)

    def _run_slice(self, thread: REEThread):
        """Run one time slice of ``thread`` on the calling core."""
        budget = self.time_slice
        while budget > 0 and not thread.finished:
            if thread._pending_compute > 0:
                step = min(budget, thread._pending_compute)
                yield self.sim.timeout(step)
                thread.cpu_time += step
                thread._pending_compute -= step
                budget -= step
                continue
            # Pull the next item from the thread body.
            try:
                item = thread.body.send(None)
            except StopIteration as stop:
                thread.finished = True
                thread.result = getattr(stop, "value", None)
                thread.done.succeed(thread.result)
                return
            if isinstance(item, tuple) and item and item[0] == "compute":
                thread._pending_compute = float(item[1])
            elif isinstance(item, Event):
                # Blocking wait: the thread leaves the run queue until
                # the event triggers, then re-enters.
                thread._blocked_on = item
                waited_from = self.sim.now

                def unblock(_event, thread=thread, waited_from=waited_from):
                    thread._blocked_on = None
                    thread.wait_time += self.sim.now - waited_from
                    self._enqueue(thread)

                item.add_callback(unblock)
                return
            else:
                raise ConfigurationError(
                    "thread %r yielded %r (need ('compute', s) or Event)"
                    % (thread.name, item)
                )
        if not thread.finished:
            self._enqueue(thread)  # slice expired: back of the queue
