"""The REE (normal-world) software stack: Linux-like kernel and drivers.

Memory management (:mod:`repro.ree.pages`, :mod:`repro.ree.buddy`,
:mod:`repro.ree.cma`), the filesystem (:mod:`repro.ree.filesystem`), the
TrustZone driver (:mod:`repro.ree.tz_driver`), the full NPU control-plane
driver (:mod:`repro.ree.npu_driver`), and the rejected S2PT design
(:mod:`repro.ree.s2pt`).
"""

from .buddy import BuddyAllocator
from .cma import CMARegion, MigrationRecord
from .filesystem import FileSystem
from .kernel import REEKernel
from .npu_driver import REENPUDriver, ShadowJob
from .pages import Allocation, FrameDB, FrameState
from .s2pt import S2PTProtection, S2PTState, s2pt_slowdown
from .scheduler import REEScheduler, REEThread
from .tz_driver import TZDriver

__all__ = [
    "Allocation",
    "BuddyAllocator",
    "CMARegion",
    "FileSystem",
    "FrameDB",
    "FrameState",
    "MigrationRecord",
    "REEKernel",
    "REENPUDriver",
    "REEScheduler",
    "REEThread",
    "S2PTProtection",
    "S2PTState",
    "ShadowJob",
    "TZDriver",
    "s2pt_slowdown",
]
