"""The full-fledged REE NPU driver: the co-driver's control plane.

Owns everything the paper leaves in the REE (§4.3): the unified scheduling
queue for secure and non-secure jobs, device power management, and the
launch path for *non-secure* jobs.  Secure jobs appear here only as
*shadow jobs* — empty execution contexts that reserve a scheduling slot;
when one is scheduled the driver proactively hands the NPU to the TEE
driver with an ``smc`` and blocks until the TEE reports completion.

Being REE code, the driver is untrusted.  The attack helpers
(:meth:`attack_replay_take_over`, :meth:`attack_reorder_queue`,
:meth:`attack_forge_take_over`) let the security tests behave like a
compromised kernel; the TEE driver's checks must stop all of them.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, Optional, Union

from ..errors import DeviceError
from ..hw.common import World
from ..hw.npu import NPU, NPUJob
from ..hw.platform import Board
from ..sim import Event, Simulator

__all__ = ["ShadowJob", "REENPUDriver"]


class ShadowJob:
    """Scheduling placeholder for a secure job (empty execution context)."""

    __slots__ = ("shadow_id", "seq", "completion")

    def __init__(self, shadow_id: int, seq: int, completion: Event):
        self.shadow_id = shadow_id
        self.seq = seq
        self.completion = completion


class REENPUDriver:
    """The full NPU driver: unified queue, power, shadow-job hand-off."""

    #: idle time before the control plane powers the device down, and
    #: the cost of bringing it back up (regulator + clock ramp).
    IDLE_POWER_OFF_AFTER = 50e-3
    POWER_UP_TIME = 1.5e-3

    def __init__(self, sim: Simulator, board: Board, power_management: bool = True):
        self.sim = sim
        self.board = board
        self.npu: NPU = board.npu
        self.monitor = board.monitor
        self._queue: Deque[Union[NPUJob, ShadowJob]] = deque()
        self._completions: Dict[int, Event] = {}  # job_id -> completion
        self._wake: Optional[Event] = None
        self._running_done: Optional[Event] = None
        #: the item the scheduler has popped but not finished running —
        #: the governor must treat this window as activity (the device
        #: looks idle during the SMC hand-off, but a launch is imminent).
        self._in_flight: Optional[Union[NPUJob, ShadowJob]] = None
        self.initialized = False
        self.power_management = power_management
        self.jobs_launched = 0
        self.shadow_jobs_forwarded = 0
        #: fault sites (repro.faults): ``ree.npu_stall`` stalls the
        #: scheduler before it runs an item; ``ree.smc_drop`` loses a
        #: shadow-job hand-off (the TEE watchdog must re-issue).
        self.fault_injector = None
        self.scheduler_stalls = 0
        self.shadow_jobs_dropped = 0
        self.power_cycles = 0
        self.power_up_time_total = 0.0
        #: cumulative wall time spent inside shadow hand-off SMCs (the
        #: REE-side view of the cross-world cost; repro.obs profiling).
        self.smc_handoff_time = 0.0
        #: observability attach points (repro.obs.instrument).
        self.metrics = None
        self.recorder = None
        self._last_activity = sim.now
        self._activity: Optional[Event] = None
        self._shadow_ids = itertools.count(1)
        board.gic.attach_handler(World.NONSECURE, self.npu.irq, self._on_irq)
        self.monitor.register("ree.npu_submit_shadow", self._handle_submit_shadow)
        sim.process(self._scheduler(), name="ree-npu-scheduler")
        if power_management:
            sim.process(self._power_governor(), name="ree-npu-power")
        self.initialized = True

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(self, job: NPUJob) -> Event:
        """Enqueue a non-secure job; returns its completion event."""
        completion = self.sim.event()
        job.tag = job.tag or "ree"
        self._queue.append(job)
        self._completions[id(job)] = completion
        self._kick()
        return completion

    def _handle_submit_shadow(self, shadow_id: int, seq: int) -> int:
        """SMC from the TEE driver: enqueue a shadow job."""
        completion = self.sim.event()
        shadow = ShadowJob(shadow_id, seq, completion)
        self._queue.append(shadow)
        self._kick()
        return shadow_id

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # ------------------------------------------------------------------
    # scheduler (unified queue, §4.3)
    # ------------------------------------------------------------------
    def _scheduler(self):
        while True:
            while not self._queue:
                self._wake = self.sim.event()
                yield self._wake
            yield from self._ensure_powered()
            item = self._queue.popleft()
            self._in_flight = item
            if self.fault_injector is not None:
                stall = self.fault_injector.stall_delay("ree.npu_stall")
                if stall > 0:
                    self.scheduler_stalls += 1
                    yield self.sim.timeout(stall)
            if isinstance(item, ShadowJob):
                yield from self._run_shadow(item)
            else:
                yield from self._run_nonsecure(item)
            self._in_flight = None
            self._last_activity = self.sim.now
            if (
                self.power_management
                and self._activity is not None
                and not self._activity.triggered
            ):
                self._activity.succeed()

    # ------------------------------------------------------------------
    # power management (control plane, §4.3 — stays in the REE)
    # ------------------------------------------------------------------
    def _ensure_powered(self):
        if not self.npu.powered:
            yield self.sim.timeout(self.POWER_UP_TIME)
            self.npu.set_power(True)
            self.power_cycles += 1
            self.power_up_time_total += self.POWER_UP_TIME

    def _power_governor(self):
        """Power the device down after a quiet period (a real driver's
        autosuspend).  The TEE data plane never has to know: shadow jobs
        wake the device through the same scheduler path.

        Activity-driven: between bursts the governor sleeps on an event,
        so an idle system's event queue really drains.
        """
        while True:
            self._activity = self.sim.event()
            yield self._activity
            while self.npu.powered:
                yield self.sim.timeout(self.IDLE_POWER_OFF_AFTER)
                idle_for = self.sim.now - self._last_activity
                if (
                    not self.npu.busy
                    and not self._queue
                    and self._in_flight is None
                    and idle_for >= self.IDLE_POWER_OFF_AFTER * 0.999
                ):
                    self.npu.set_power(False)

    def _run_nonsecure(self, job: NPUJob):
        done = self.sim.event()
        self._running_done = done
        self.npu.launch(World.NONSECURE, job)
        self.jobs_launched += 1
        yield done
        self._running_done = None
        completion = self._completions.pop(id(job), None)
        if completion is not None:
            completion.succeed(job)

    def _run_shadow(self, shadow: ShadowJob):
        """Hand the NPU to the TEE driver and wait for it to come back."""
        if self.fault_injector is not None and self.fault_injector.fires("ree.smc_drop"):
            # The hand-off SMC is lost (crashed driver thread, dropped
            # softirq).  The secure job never launches; the TEE watchdog
            # detects the missing completion and re-issues the shadow.
            self.shadow_jobs_dropped += 1
            if not shadow.completion.triggered:
                shadow.completion.succeed(None)
            return
        self.shadow_jobs_forwarded += 1
        t0 = self.sim.now
        yield from self.monitor.smc(
            World.NONSECURE, "tee.npu_take_over", shadow.shadow_id, shadow.seq
        )
        elapsed = self.sim.now - t0
        self.smc_handoff_time += elapsed
        if self.metrics is not None:
            self.metrics.counter(
                "ree_npu_handoff_seconds_total",
                "Wall time the REE scheduler spent inside take-over SMCs",
            ).inc(elapsed)
        shadow.completion.succeed(shadow.shadow_id)

    def _on_irq(self, irq: int, job: NPUJob) -> None:
        if self._running_done is not None and not self._running_done.triggered:
            self._running_done.succeed(job)

    # ------------------------------------------------------------------
    # control-plane costs
    # ------------------------------------------------------------------
    def reinitialize(self):
        """Full driver re-init (the rejected detach-attach design, 32 ms)."""
        self.initialized = False
        yield self.sim.timeout(self.npu.spec.driver_reinit_time)
        self.initialized = True

    # ------------------------------------------------------------------
    # attacks (compromised REE kernel)
    # ------------------------------------------------------------------
    def attack_replay_take_over(self, shadow_id: int, seq: int):
        """Re-issue a take-over for an already-completed secure job."""
        result = yield from self.monitor.smc(
            World.NONSECURE, "tee.npu_take_over", shadow_id, seq
        )
        return result

    def attack_forge_take_over(self, shadow_id: int, seq: int):
        """Issue a take-over for a job the TEE never initialized."""
        result = yield from self.monitor.smc(
            World.NONSECURE, "tee.npu_take_over", shadow_id, seq
        )
        return result

    def attack_reorder_queue(self) -> None:
        """Reverse the pending queue (violates secure-job ordering)."""
        self._queue.reverse()
