"""Page-frame database for the simulated REE kernel.

Physical RAM is divided into fixed-size *granules* (the bookkeeping unit;
4 KiB in the real kernel, configurable here so 16 GiB platforms stay cheap
to simulate).  Each granule is free or owned by an :class:`Allocation`,
which is either *movable* (page-cache/anonymous pages the CMA may migrate)
or *unmovable* (kernel objects — never placed inside a CMA region, per the
Linux rule the paper relies on).

The database is purely functional bookkeeping; allocators charge simulated
time themselves.  Allocations hold their granules as a set so migration
(retargeting one granule) is O(1) even for multi-GB allocations.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, List, Optional, Set

from ..config import PAGE_SIZE
from ..errors import ConfigurationError, MemoryError_

__all__ = ["FrameState", "Allocation", "FrameDB"]


class FrameState(enum.Enum):
    """Occupancy state of one granule."""

    FREE = "free"
    MOVABLE = "movable"
    UNMOVABLE = "unmovable"


class Allocation:
    """A set of granules owned by one allocation (possibly discontiguous)."""

    __slots__ = ("alloc_id", "frames", "movable", "tag", "contiguous", "freed")

    def __init__(
        self,
        alloc_id: int,
        frames: Iterable[int],
        movable: bool,
        tag: str = "",
        contiguous: bool = False,
    ):
        self.alloc_id = alloc_id
        self.frames: Set[int] = set(frames)
        self.movable = movable
        self.tag = tag
        self.contiguous = contiguous
        self.freed = False

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def sorted_frames(self) -> List[int]:
        return sorted(self.frames)

    def replace_frame(self, old: int, new: int) -> None:
        """Swap one granule for another (migration bookkeeping)."""
        if old not in self.frames:
            raise MemoryError_("frame %d not in allocation %d" % (old, self.alloc_id))
        self.frames.discard(old)
        self.frames.add(new)

    def owns(self, frame: int) -> bool:
        return frame in self.frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Allocation(id=%d, frames=%d, movable=%s, tag=%r)" % (
            self.alloc_id,
            len(self.frames),
            self.movable,
            self.tag,
        )


class FrameDB:
    """Ownership and state of every granule of physical RAM."""

    def __init__(self, total_bytes: int, granule: int = PAGE_SIZE):
        if granule % PAGE_SIZE != 0 or granule <= 0:
            raise ConfigurationError("granule must be a positive multiple of PAGE_SIZE")
        if total_bytes % granule != 0:
            raise ConfigurationError("total_bytes must be a granule multiple")
        self.total_bytes = total_bytes
        self.granule = granule
        self.n_frames = total_bytes // granule
        self._state: List[FrameState] = [FrameState.FREE] * self.n_frames
        self._owner: List[Optional[int]] = [None] * self.n_frames
        self._allocations: Dict[int, Allocation] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def frame_addr(self, frame: int) -> int:
        return frame * self.granule

    def addr_frame(self, addr: int) -> int:
        return addr // self.granule

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state(self, frame: int) -> FrameState:
        return self._state[frame]

    def owner(self, frame: int) -> Optional[Allocation]:
        alloc_id = self._owner[frame]
        return self._allocations.get(alloc_id) if alloc_id is not None else None

    def allocation(self, alloc_id: int) -> Allocation:
        return self._allocations[alloc_id]

    @property
    def free_frames(self) -> int:
        return sum(1 for s in self._state if s is FrameState.FREE)

    @property
    def used_bytes(self) -> int:
        return (self.n_frames - self.free_frames) * self.granule

    # ------------------------------------------------------------------
    # mutation (used by the allocators only)
    # ------------------------------------------------------------------
    def claim(
        self, frames: Iterable[int], movable: bool, tag: str, contiguous: bool = False
    ) -> Allocation:
        frames = list(frames)
        for frame in frames:
            if self._state[frame] is not FrameState.FREE:
                raise MemoryError_("frame %d is not free" % frame)
        alloc = Allocation(
            alloc_id=next(self._ids),
            frames=frames,
            movable=movable,
            tag=tag,
            contiguous=contiguous,
        )
        new_state = FrameState.MOVABLE if movable else FrameState.UNMOVABLE
        for frame in frames:
            self._state[frame] = new_state
            self._owner[frame] = alloc.alloc_id
        self._allocations[alloc.alloc_id] = alloc
        return alloc

    def release(self, alloc: Allocation) -> None:
        if alloc.freed:
            raise MemoryError_("allocation %d already freed" % alloc.alloc_id)
        for frame in alloc.frames:
            if self._owner[frame] != alloc.alloc_id:
                raise MemoryError_(
                    "frame %d not owned by allocation %d" % (frame, alloc.alloc_id)
                )
            self._state[frame] = FrameState.FREE
            self._owner[frame] = None
        alloc.freed = True
        del self._allocations[alloc.alloc_id]

    def release_frames(self, alloc: Allocation, frames: Iterable[int]) -> None:
        """Release a subset of an allocation's granules (CMA shrink path)."""
        frames = set(frames)
        for frame in frames:
            if not alloc.owns(frame):
                raise MemoryError_("frame %d not in allocation %d" % (frame, alloc.alloc_id))
            self._state[frame] = FrameState.FREE
            self._owner[frame] = None
        alloc.frames -= frames
        if not alloc.frames:
            alloc.freed = True
            del self._allocations[alloc.alloc_id]

    def move_frame(self, alloc: Allocation, old: int, new: int) -> None:
        """Retarget one granule of a movable allocation (after a copy)."""
        if not alloc.movable:
            raise MemoryError_("cannot migrate unmovable allocation %d" % alloc.alloc_id)
        if self._state[new] is not FrameState.FREE:
            raise MemoryError_("migration destination %d not free" % new)
        if self._owner[old] != alloc.alloc_id:
            raise MemoryError_("frame %d not owned by allocation %d" % (old, alloc.alloc_id))
        self._state[new] = FrameState.MOVABLE
        self._owner[new] = alloc.alloc_id
        self._state[old] = FrameState.FREE
        self._owner[old] = None
        alloc.replace_frame(old, new)
