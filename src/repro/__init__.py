"""TZ-LLM reproduction: protecting on-device LLMs with Arm TrustZone.

A functional, discrete-event-simulated reproduction of *TZ-LLM:
Protecting On-Device Large Language Models with Arm TrustZone*
(EUROSYS 2026).  See DESIGN.md for the system inventory and README.md for
a tour.

Quick start::

    from repro import TZLLM, TINYLLAMA

    system = TZLLM(TINYLLAMA)
    system.run_infer(8)                 # first request: cold init + checkpoint
    record = system.run_infer(128, 16)  # measured request
    print(record.ttft, record.decode_tokens_per_second)

Sub-packages: :mod:`repro.sim` (discrete-event engine), :mod:`repro.hw`
(TrustZone hardware), :mod:`repro.crypto`, :mod:`repro.ree` /
:mod:`repro.tee` (the two OS worlds), :mod:`repro.llm` (inference
substrate), :mod:`repro.core` (the paper's contribution),
:mod:`repro.serve` (the multi-tenant serving gateway),
:mod:`repro.fleet` (a simulated device cluster with cache-aware routing),
:mod:`repro.faults` (deterministic fault injection + recovery policies),
:mod:`repro.workloads`, and :mod:`repro.analysis`.
"""

from .config import RK3588, PlatformSpec
from .core import (
    PAPER_PRESSURE,
    REELLM,
    TZLLM,
    InferenceRecord,
    PipelineConfig,
    strawman,
)
from .faults import FaultPlan, FaultSpec, RecoveryPolicy
from .llm import LLAMA3_8B, MODELS, PHI3_MINI, QWEN25_3B, TINYLLAMA, ModelSpec, get_model
from .stack import Stack, build_stack

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InferenceRecord",
    "LLAMA3_8B",
    "MODELS",
    "ModelSpec",
    "PAPER_PRESSURE",
    "PHI3_MINI",
    "PipelineConfig",
    "PlatformSpec",
    "QWEN25_3B",
    "REELLM",
    "RK3588",
    "RecoveryPolicy",
    "Stack",
    "TINYLLAMA",
    "TZLLM",
    "build_stack",
    "get_model",
    "strawman",
    "__version__",
]
