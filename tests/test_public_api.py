"""Meta-tests on the public API surface.

Guards the contract a downstream user sees: every name a package exports
in ``__all__`` is importable, documented, and not accidentally removed.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.hw",
    "repro.crypto",
    "repro.ree",
    "repro.tee",
    "repro.llm",
    "repro.core",
    "repro.faults",
    "repro.obs",
    "repro.serve",
    "repro.workloads",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), "%s has no __all__" % package
    for name in module.__all__:
        assert hasattr(module, name), "%s exports missing name %r" % (package, name)


@pytest.mark.parametrize("package", PACKAGES)
def test_packages_have_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 30


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, "%s: undocumented public items: %s" % (package, undocumented)


def test_top_level_quickstart_names():
    import repro

    for name in ("TZLLM", "REELLM", "strawman", "TINYLLAMA", "LLAMA3_8B", "RK3588"):
        assert name in repro.__all__


def test_version_is_a_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1
