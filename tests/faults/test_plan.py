"""Unit tests for the fault-plan / injector machinery itself."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import KNOWN_SITES, FaultInjector, FaultPlan, FaultSpec, RecoveryPolicy
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# spec and plan validation
# ---------------------------------------------------------------------------
def test_unknown_site_rejected():
    with pytest.raises(ConfigurationError):
        FaultSpec(site="flash.read_eror")  # typo must not silently test nothing


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(site="flash.read_error", probability=1.5)
    with pytest.raises(ConfigurationError):
        FaultSpec(site="flash.read_error", window=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        FaultSpec(site="flash.read_error", max_fires=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec(site="ree.npu_stall", delay=-1.0)


def test_duplicate_site_rejected():
    spec = FaultSpec(site="flash.read_error", probability=0.5)
    with pytest.raises(ConfigurationError):
        FaultPlan(1, [spec, spec])


def test_recovery_policy_validation():
    with pytest.raises(ConfigurationError):
        RecoveryPolicy(flash_read_attempts=0)
    with pytest.raises(ConfigurationError):
        RecoveryPolicy(npu_job_timeout=0.0)
    policy = RecoveryPolicy(retry_backoff=1e-3)
    assert policy.backoff(1) == 1e-3
    assert policy.backoff(3) == 4e-3
    hardened = RecoveryPolicy.hardened()
    assert hardened.flash_read_attempts > 1
    assert hardened.npu_job_timeout is not None


# ---------------------------------------------------------------------------
# determinism of the per-site streams
# ---------------------------------------------------------------------------
def _injector(seed, specs):
    return FaultInjector(Simulator(), FaultPlan(seed, specs))


def test_same_seed_same_decisions():
    specs = [FaultSpec(site="flash.read_error", probability=0.3)]
    a = _injector(7, specs)
    b = _injector(7, specs)
    assert [a.fires("flash.read_error") for _ in range(200)] == [
        b.fires("flash.read_error") for _ in range(200)
    ]
    assert a.summary() == b.summary()


def test_different_seed_different_decisions():
    specs = [FaultSpec(site="flash.read_error", probability=0.3)]
    a = _injector(7, specs)
    b = _injector(8, specs)
    assert [a.fires("flash.read_error") for _ in range(200)] != [
        b.fires("flash.read_error") for _ in range(200)
    ]


def test_sites_have_independent_streams():
    """Arming an extra site must not reshuffle an existing site's draws."""
    base = _injector(7, [FaultSpec(site="flash.read_error", probability=0.3)])
    both = _injector(
        7,
        [
            FaultSpec(site="flash.read_error", probability=0.3),
            FaultSpec(site="ree.npu_stall", probability=0.5, delay=1e-3),
        ],
    )
    decisions_base = []
    decisions_both = []
    for _ in range(100):
        decisions_base.append(base.fires("flash.read_error"))
        both.stall_delay("ree.npu_stall")  # interleave the other site
        decisions_both.append(both.fires("flash.read_error"))
    assert decisions_base == decisions_both


def test_unarmed_site_never_fires_and_unknown_site_raises():
    injector = _injector(7, [FaultSpec(site="flash.read_error")])
    assert injector.fires("tee.job_hang") is False
    with pytest.raises(ConfigurationError):
        injector.fires("not.a.site")


# ---------------------------------------------------------------------------
# window / max_fires gating
# ---------------------------------------------------------------------------
def test_window_gates_on_sim_time():
    sim = Simulator()
    plan = FaultPlan(3, [FaultSpec(site="flash.read_error", window=(1.0, 2.0))])
    injector = FaultInjector(sim, plan)
    assert injector.fires("flash.read_error") is False  # now == 0.0

    def advance():
        yield sim.timeout(1.5)

    sim.run_until(sim.process(advance()))
    assert injector.fires("flash.read_error") is True


def test_max_fires_caps_total():
    injector = _injector(3, [FaultSpec(site="flash.read_error", max_fires=2)])
    fired = sum(injector.fires("flash.read_error") for _ in range(50))
    assert fired == 2


def test_stall_delay_range():
    injector = _injector(3, [FaultSpec(site="ree.npu_stall", delay=1e-3, jitter=2e-3)])
    for _ in range(50):
        delay = injector.stall_delay("ree.npu_stall")
        assert 1e-3 <= delay < 3e-3


# ---------------------------------------------------------------------------
# bit-flip corruption
# ---------------------------------------------------------------------------
def test_corrupt_flips_exactly_one_bit_deterministically():
    data = bytes(range(64))
    a = _injector(5, [FaultSpec(site="flash.bit_flip")]).corrupt("flash.bit_flip", data)
    b = _injector(5, [FaultSpec(site="flash.bit_flip")]).corrupt("flash.bit_flip", data)
    assert a == b and a != data
    diff = [(x ^ y) for x, y in zip(a, data)]
    assert sum(bin(d).count("1") for d in diff) == 1


def test_corrupt_identity_when_quiet():
    injector = _injector(5, [FaultSpec(site="flash.bit_flip", probability=0.0)])
    data = b"unchanged"
    assert injector.corrupt("flash.bit_flip", data) is data


# ---------------------------------------------------------------------------
# arming on a real stack
# ---------------------------------------------------------------------------
def test_arm_and_disarm_wire_every_site():
    from repro import TINYLLAMA, TZLLM

    system = TZLLM(TINYLLAMA)
    plan = FaultPlan(1, [FaultSpec(site="flash.read_error", probability=0.0)])
    injector = plan.injector(system.sim).arm(system)
    stack = system.stack
    assert stack.kernel.fs.flash.fault_injector is injector
    assert all(r.fault_injector is injector for r in stack.kernel.cma_regions.values())
    assert stack.ree_npu.fault_injector is injector
    assert stack.tee_npu.fault_injector is injector
    injector.disarm(system)
    assert stack.kernel.fs.flash.fault_injector is None
    assert stack.tee_npu.fault_injector is None


def test_known_sites_cover_all_armed_components():
    assert KNOWN_SITES == {
        "flash.read_error",
        "flash.bit_flip",
        "cma.migration_fail",
        "ree.npu_stall",
        "ree.smc_drop",
        "tee.job_hang",
        # fleet-scope sites, driven by repro.fleet.resilience
        "fleet.device_crash",
        "fleet.reboot_loop",
        "fleet.attest_fail",
        "fleet.gray_slowdown",
    }
